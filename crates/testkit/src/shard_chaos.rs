//! Deterministic crash-schedule explorer for the sharded 2PC commit path.
//!
//! `chaos` sweeps crash points over a *single-proxy* workload; this module
//! does the same for the cross-shard commit protocol of `obladi-shard`.
//! The protocol on each participant of a cross-shard transaction runs, in
//! order:
//!
//! 1. append the `Prepare{txn, epoch, write set}` record to the WAL (the
//!    vote becomes durable),
//! 2. the coordinator decides and permits the transaction,
//! 3. appends the epoch's `Decision` record (committed set + merged
//!    writes) and *acknowledges* the commit to parked clients,
//! 4. the shard writes its epoch's bucket write-back,
//! 5. appends the epoch checkpoint,
//! 6. appends the epoch-commit marker (the epoch's durable tail),
//! 7. publishes the remaining outcomes.
//!
//! A crash between step 1 and step 6 on one participant, with the peers
//! completing step 6, is exactly the window the durable-prepare protocol
//! exists for — and a crash after step 3 is the window the early
//! acknowledgement leans on: the ack has been handed out, so recovery
//! *must* replay the decided epoch from the decision record alone.  [`crash_schedule`] enumerates a [`CrashPoint`] for every
//! interleaving boundary (on either participant), and
//! [`run_shard_crash_case`] drives a 2-of-3-shard transaction into the
//! chosen point using a [`FaultyStore`] trigger, recovers the victim, and
//! checks the three invariants that define correctness here:
//!
//! * **All-or-nothing.**  After recovery the transaction's writes are
//!   visible on *all* of its shards or on *none* — never torn.
//! * **Acknowledged implies durable.**  If the front door acknowledged the
//!   commit, the writes survive the crash.
//! * **Serializability.**  The full recorded history (seeding, every
//!   attempt, post-recovery reads) passes the DSG oracle of [`history`].
//!
//! Each case also re-crashes and re-recovers the victim once more with no
//! faults, asserting the recovered state is stable — recovery idempotence.
//!
//! [`history`]: crate::history

use crate::history::{check_serializable, tag_value, History, TxnRecord};
use obladi_common::config::ShardConfig;
use obladi_common::error::{ObladiError, Result};
use obladi_common::types::{Key, TxnId, Value};
use obladi_shard::ShardedDb;
use obladi_storage::wal::WalRecordKind;
use obladi_storage::{CrashOp, CrashPoint, FaultPlan, FaultyStore, InMemoryStore, UntrustedStore};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// What the schedule expects of the transaction driven into a crash point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Expected {
    /// The crash fires before the victim's vote becomes durable, so the
    /// transaction must abort (and stay invisible everywhere).
    Abort,
    /// The vote was durable on every participant, so the transaction must
    /// commit (and recovery must finish the crashed half).
    Commit,
}

/// One crash case: where the fault lives and when it fires.
#[derive(Debug, Clone)]
pub struct ShardCrashCase {
    /// Human-readable crash-point name (used in assertion messages).
    pub name: &'static str,
    /// `false` = the shard owning the first key of the pair crashes,
    /// `true` = the shard owning the second key.
    pub victim_second: bool,
    /// The deterministic trigger, or `None` to crash the victim explicitly
    /// after the commit is acknowledged (the fully durable point).
    pub trigger: Option<CrashPoint>,
    /// The all-or-nothing side the case must land on.
    pub expected: Expected,
}

/// What one crash case observed; the invariants have already been checked
/// by [`run_shard_crash_case`], this is for reporting and extra assertions.
#[derive(Debug, Clone)]
pub struct ShardCrashReport {
    /// The case name.
    pub name: &'static str,
    /// Whether the front door acknowledged the commit.
    pub acknowledged_commit: bool,
    /// Whether the crash trigger actually fired (always true for explicit
    /// post-acknowledgement crashes).
    pub tripped: bool,
    /// Whether the transaction's writes were visible (on both shards) after
    /// recovery.
    pub committed_visible: bool,
    /// In-doubt prepares the victim's recovery found.
    pub in_doubt: u64,
    /// In-doubt transactions recovery replayed from prepare records.
    pub replayed_commits: u64,
    /// 2PC decisions still pending after recovery settled (waited on with a
    /// timeout; a healthy run drains to 0 — anything else means a decision
    /// was pinned forever).
    pub pending_decisions_after: usize,
}

/// The crash schedule: every prepare/decision/write-back/checkpoint/commit
/// interleaving boundary, on either participant of a 2-of-3-shard
/// transaction, plus the post-durability point.  Sixteen distinct points.
pub fn crash_schedule() -> Vec<ShardCrashCase> {
    let prepare = WalRecordKind::Prepare.tag();
    let decision = WalRecordKind::Decision.tag();
    let epoch_commit = WalRecordKind::EpochCommit.tag();
    let mut cases = Vec::new();
    for victim_second in [false, true] {
        let side = if victim_second { "second" } else { "first" };
        cases.push(ShardCrashCase {
            name: leak_name(format!("prepare-append-fails/{side}")),
            victim_second,
            trigger: Some(CrashPoint::on_log_kind(prepare, 1)),
            expected: Expected::Abort,
        });
        cases.push(ShardCrashCase {
            name: leak_name(format!("voted-before-write-back/{side}")),
            victim_second,
            trigger: Some(CrashPoint::after_log_kind(prepare, CrashOp::BucketWrite, 1)),
            expected: Expected::Commit,
        });
        cases.push(ShardCrashCase {
            name: leak_name(format!("voted-mid-write-back/{side}")),
            victim_second,
            trigger: Some(CrashPoint::after_log_kind(prepare, CrashOp::BucketWrite, 3)),
            expected: Expected::Commit,
        });
        cases.push(ShardCrashCase {
            name: leak_name(format!("voted-before-checkpoint/{side}")),
            victim_second,
            trigger: Some(CrashPoint::after_log_kind(
                prepare,
                CrashOp::AnyLogAppend,
                1,
            )),
            expected: Expected::Commit,
        });
        // The early-acknowledgement windows: the epoch's decision record is
        // durable — the commit has been acknowledged to the client — but
        // the crash eats the write-back (first case) or lands before the
        // checkpoint tail (second case).  Recovery must replay the decided
        // epoch from the decision record so the acked writes survive.
        cases.push(ShardCrashCase {
            name: leak_name(format!("acked-before-write-back/{side}")),
            victim_second,
            trigger: Some(CrashPoint::after_log_kind(
                decision,
                CrashOp::BucketWrite,
                1,
            )),
            expected: Expected::Commit,
        });
        cases.push(ShardCrashCase {
            name: leak_name(format!("acked-before-checkpoint/{side}")),
            victim_second,
            trigger: Some(CrashPoint::after_log_kind(
                decision,
                CrashOp::AnyLogAppend,
                1,
            )),
            expected: Expected::Commit,
        });
        cases.push(ShardCrashCase {
            name: leak_name(format!("commit-record-lost/{side}")),
            victim_second,
            trigger: Some(CrashPoint::after_log_kind(
                prepare,
                CrashOp::LogAppendKind(epoch_commit),
                1,
            )),
            expected: Expected::Commit,
        });
        cases.push(ShardCrashCase {
            name: leak_name(format!("after-durable-commit/{side}")),
            victim_second,
            trigger: None,
            expected: Expected::Commit,
        });
    }
    cases
}

/// Case names live for the program; the schedule is tiny and static.
fn leak_name(name: String) -> &'static str {
    Box::leak(name.into_boxed_str())
}

/// A 3-shard test deployment over [`FaultyStore`]-wrapped backends.
pub struct FaultyDeployment {
    /// The front door.
    pub db: ShardedDb,
    /// Per-shard fault injectors, indexed by shard.
    pub faults: Vec<Arc<FaultyStore>>,
}

/// Builds a 3-shard deployment whose stores can all misbehave on demand.
pub fn open_faulty_deployment(seed: u64) -> Result<FaultyDeployment> {
    let mut config = ShardConfig::small_for_tests(3, 512);
    config.shard.epoch.batch_interval = Duration::from_millis(1);
    config.shard.epoch.checkpoint_every = 3;
    config.shard.seed = seed;
    let faults: Vec<Arc<FaultyStore>> = (0..config.shards)
        .map(|index| {
            Arc::new(FaultyStore::new(
                Arc::new(InMemoryStore::new()),
                FaultPlan::none(),
                seed ^ ((index as u64 + 1) * 0x9E37),
            ))
        })
        .collect();
    let stores: Vec<Arc<dyn UntrustedStore>> = faults
        .iter()
        .map(|f| f.clone() as Arc<dyn UntrustedStore>)
        .collect();
    let db = ShardedDb::open_with_stores(config, stores)?;
    Ok(FaultyDeployment { db, faults })
}

/// Commits `body` through the front door with retries on retryable
/// aborts (jittered so the retry de-phases from the pipelined epoch
/// rhythm), returning the transaction id it committed under.  The shared
/// retry idiom of the sharded tests — a cross-shard commit can abort
/// retryably whenever its shards' pipeline phases are incompatible.
pub fn commit_with_retries<T>(
    db: &ShardedDb,
    mut body: impl FnMut(&mut obladi_shard::ShardedTxn<'_>) -> Result<T>,
) -> Result<TxnId> {
    let mut last_err = None;
    let mut jitter_state = 0x7e57_3a11u64;
    for attempt in 0..100 {
        if attempt > 0 {
            jitter_state = jitter_state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            std::thread::sleep(Duration::from_millis(1 + (jitter_state >> 33) % 7));
        }
        let mut txn = db.begin()?;
        match body(&mut txn) {
            Ok(_) => {}
            Err(err) if err.is_retryable() => {
                last_err = Some(err);
                continue;
            }
            Err(err) => return Err(err),
        }
        let id = txn.id();
        match txn.commit() {
            Ok(outcome) if outcome.is_committed() => return Ok(id),
            Ok(_) => continue,
            Err(err) if err.is_retryable() => {
                last_err = Some(err);
                continue;
            }
            Err(err) => return Err(err),
        }
    }
    Err(last_err.unwrap_or(ObladiError::Internal("commit retries exhausted".into())))
}

/// Finds two keys the deployment routes to different shards.
pub fn cross_shard_pair(db: &ShardedDb) -> (Key, Key) {
    let first = 0u64;
    let home = db.router().route(first);
    for key in 1..10_000u64 {
        if db.router().route(key) != home {
            return (first, key);
        }
    }
    panic!("router sent 10k consecutive keys to one shard");
}

/// Finds a cross-shard pair whose first key lives on `shard` and whose
/// second does not, scanning from `start` (so several disjoint pairs can be
/// carved out of one deployment).
pub fn cross_shard_pair_through(db: &ShardedDb, shard: usize, start: Key) -> (Key, Key) {
    let first = (start..start + 10_000)
        .find(|&key| db.router().route(key) == shard)
        .expect("router sent 10k consecutive keys away from one shard");
    let second = (first + 1..first + 10_000)
        .find(|&key| db.router().route(key) != shard)
        .expect("router sent 10k consecutive keys to one shard");
    (first, second)
}

/// Attempts to commit a transaction writing tagged values to both keys of
/// the pair, recording every attempt in `history`.  Stops on the first
/// acknowledged commit, when `stop()` turns true, or after `max_attempts`.
/// Returns the committed values, if any.
pub fn write_pair_tagged(
    db: &ShardedDb,
    pair: (Key, Key),
    history: &mut History,
    max_attempts: usize,
    stop: &dyn Fn() -> bool,
) -> Option<(Value, Value)> {
    let (a, b) = pair;
    for attempt in 0..max_attempts {
        if attempt > 0 {
            if stop() {
                return None;
            }
            std::thread::sleep(Duration::from_millis(2));
        }
        let Ok(mut txn) = db.begin() else { continue };
        // A virgin transaction may be transparently re-stamped; the first
        // successful operation pins the id the tags must carry.
        let Ok(seen) = txn.read(a) else { continue };
        let id = txn.id();
        let mut record = TxnRecord::new(id);
        record.read(a, seen);
        let value_a = tag_value(id, 0, b"chaos");
        let value_b = tag_value(id, 1, b"chaos");
        record.write(a, value_a.clone());
        if txn.write(a, value_a.clone()).is_err() {
            record.abort();
            history.push(record);
            continue;
        }
        record.write(b, value_b.clone());
        if txn.write(b, value_b.clone()).is_err() {
            record.abort();
            history.push(record);
            continue;
        }
        match txn.commit_reported() {
            // Order committed writers by the id the transaction finally
            // serialized under — a twin rebuild may have re-stamped it.
            Ok((final_id, outcome)) if outcome.is_committed() => {
                record.commit(final_id);
                history.push(record);
                return Some((value_a, value_b));
            }
            Ok(_) | Err(_) => {
                record.abort();
                history.push(record);
            }
        }
    }
    None
}

/// Reads both keys of the pair in one front-door transaction (with retries
/// around epoch-boundary aborts), recording the successful read in
/// `history`.
pub fn read_pair(
    db: &ShardedDb,
    pair: (Key, Key),
    history: &mut History,
) -> Result<(Option<Value>, Option<Value>)> {
    let (a, b) = pair;
    let mut last_err = ObladiError::Internal("no read attempt made".into());
    // Deadline- rather than count-based: under a loaded test machine a
    // pipelined epoch round can stall long enough that a fixed retry count
    // starves while the system is merely slow, not wrong.
    let deadline = Instant::now() + Duration::from_secs(10);
    while Instant::now() < deadline {
        let mut txn = match db.begin() {
            Ok(txn) => txn,
            Err(err) => {
                last_err = err;
                std::thread::sleep(Duration::from_millis(2));
                continue;
            }
        };
        let left = match txn.read(a) {
            Ok(value) => value,
            Err(err) if err.is_retryable() => {
                last_err = err;
                std::thread::sleep(Duration::from_millis(2));
                continue;
            }
            Err(err) => return Err(err),
        };
        let right = match txn.read(b) {
            Ok(value) => value,
            Err(err) if err.is_retryable() => {
                last_err = err;
                std::thread::sleep(Duration::from_millis(2));
                continue;
            }
            Err(err) => return Err(err),
        };
        let id = txn.id();
        let _ = txn.commit();
        let mut record = TxnRecord::new(id);
        record.read(a, left.clone());
        record.read(b, right.clone());
        record.commit(id);
        history.push(record);
        return Ok((left, right));
    }
    Err(last_err)
}

/// Polls `condition` until it holds or `deadline` elapses.
pub fn wait_for(what: &str, deadline: Duration, condition: &dyn Fn() -> bool) -> Result<()> {
    let until = Instant::now() + deadline;
    while !condition() {
        if Instant::now() >= until {
            return Err(ObladiError::Internal(format!(
                "timed out waiting for {what}"
            )));
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    Ok(())
}

/// Classifies a post-recovery observation of the pair against the seeded
/// and transaction values.  `Err` = torn (the invariant violation).
fn classify(
    name: &str,
    observed: (Option<Value>, Option<Value>),
    old: &(Value, Value),
    new: &Option<(Value, Value)>,
) -> std::result::Result<bool, String> {
    let (left, right) = observed;
    if left.as_ref() == Some(&old.0) && right.as_ref() == Some(&old.1) {
        return Ok(false);
    }
    if let Some((new_a, new_b)) = new {
        if left.as_ref() == Some(new_a) && right.as_ref() == Some(new_b) {
            return Ok(true);
        }
    }
    Err(format!(
        "{name}: torn cross-shard state after recovery: left={left:?} right={right:?}"
    ))
}

// ----------------------------------------------------------------------
// Overlapping-epoch crash cases (pipelined epoch barrier)
// ----------------------------------------------------------------------

/// One overlapping-epoch crash case: the victim dies while one epoch is
/// *deciding* (its prepare records are in the WAL, its write-back possibly
/// mid-flight) and the next epoch is *executing* (its read batches are
/// appending path logs behind the decision).  The trigger arms on a
/// decision-path record so the crash is guaranteed to land inside that
/// window.
#[derive(Debug, Clone)]
pub struct OverlapCrashCase {
    /// Human-readable crash-point name (used in assertion messages).
    pub name: &'static str,
    /// `false` = the shard owning the first pair's first key crashes,
    /// `true` = the shard owning its second key.
    pub victim_second: bool,
    /// The deterministic trigger.
    pub trigger: CrashPoint,
}

/// What one overlapping-epoch case observed after the invariants passed.
#[derive(Debug, Clone)]
pub struct OverlapCrashReport {
    /// The case name.
    pub name: &'static str,
    /// In-doubt prepares the victim's recovery found.
    pub in_doubt: u64,
    /// In-doubt transactions recovery replayed from prepare records.
    pub replayed_commits: u64,
    /// Distinct in-doubt epochs whose read paths recovery replayed (2 =
    /// the crash caught both pipeline stages with logged reads).
    pub epochs_replayed: u64,
    /// Acknowledged commits per hammered pair at crash time.
    pub acked: [usize; 2],
    /// Total commit attempts per hammered pair.
    pub attempts: [usize; 2],
}

/// The overlapping-epoch crash schedule: points scattered through the
/// decide/execute overlap window, on either participant.  Every point arms
/// on the first 2PC prepare append (the moment a decision is provably in
/// flight) except the post-decision point, which arms on the epoch-commit
/// marker (the decision is durable, the next epoch's reads are in doubt).
pub fn overlap_crash_schedule() -> Vec<OverlapCrashCase> {
    let prepare = WalRecordKind::Prepare.tag();
    let path_log = WalRecordKind::PathLog.tag();
    let epoch_commit = WalRecordKind::EpochCommit.tag();
    let mut cases = Vec::new();
    for victim_second in [false, true] {
        let side = if victim_second { "second" } else { "first" };
        cases.push(OverlapCrashCase {
            name: leak_name(format!("deciding-while-next-reads/{side}")),
            victim_second,
            trigger: CrashPoint::after_log_kind(prepare, CrashOp::LogAppendKind(path_log), 1),
        });
        cases.push(OverlapCrashCase {
            name: leak_name(format!("deciding-deep-in-next-reads/{side}")),
            victim_second,
            trigger: CrashPoint::after_log_kind(prepare, CrashOp::LogAppendKind(path_log), 3),
        });
        cases.push(OverlapCrashCase {
            name: leak_name(format!("write-back-vs-next-reads/{side}")),
            victim_second,
            trigger: CrashPoint::after_log_kind(prepare, CrashOp::BucketWrite, 4),
        });
        // Split-client write-back overlap points: with the ORAM client's
        // read plane and write-back engine on separate threads, the
        // decider's eviction reads and flush bucket writes run *while* the
        // next epoch's read batches are physically in flight.  The
        // slot-read points land inside an ORAM read phase of the overlap
        // window — the engine's eviction fetches (limbo keys set) or the
        // read plane's batch fetches, whichever the outage hits first —
        // which no log-append or bucket-write trigger can reach; the
        // bucket-write points fault the engine's first and a deep flush
        // write.  All must fate-share into an idempotent two-epoch
        // recovery.
        cases.push(OverlapCrashCase {
            name: leak_name(format!("engine-eviction-reads-vs-next-reads/{side}")),
            victim_second,
            trigger: CrashPoint::after_log_kind(prepare, CrashOp::SlotRead, 3),
        });
        cases.push(OverlapCrashCase {
            name: leak_name(format!("deep-overlap-slot-reads/{side}")),
            victim_second,
            trigger: CrashPoint::after_log_kind(prepare, CrashOp::SlotRead, 40),
        });
        cases.push(OverlapCrashCase {
            name: leak_name(format!("writeback-engine-first-flush-write/{side}")),
            victim_second,
            trigger: CrashPoint::after_log_kind(prepare, CrashOp::BucketWrite, 1),
        });
        cases.push(OverlapCrashCase {
            name: leak_name(format!("writeback-engine-deep-flush/{side}")),
            victim_second,
            trigger: CrashPoint::after_log_kind(prepare, CrashOp::BucketWrite, 9),
        });
        cases.push(OverlapCrashCase {
            name: leak_name(format!("decided-next-epoch-in-doubt/{side}")),
            victim_second,
            trigger: CrashPoint::after_log_kind(epoch_commit, CrashOp::LogAppendKind(path_log), 2),
        });
    }
    cases
}

/// One commit attempt of a hammer thread: the tagged values written to the
/// pair, and whether the front door acknowledged the commit.
#[derive(Debug, Clone)]
pub struct PairAttempt {
    /// Value written to the pair's first key.
    pub value_a: Value,
    /// Value written to the pair's second key.
    pub value_b: Value,
    /// Whether the front door acknowledged the commit.
    pub acked: bool,
}

/// Continuously commits tagged values to `pair` until `stop()` holds,
/// recording *every* attempt (acknowledged or not) — an unacknowledged
/// attempt may still have committed if the crash ate the acknowledgement,
/// and the all-or-nothing classifier must be able to attribute it.
pub fn hammer_pair_tagged(
    db: &ShardedDb,
    pair: (Key, Key),
    tag: &[u8],
    stop: &dyn Fn() -> bool,
) -> (History, Vec<PairAttempt>) {
    hammer_pair_tagged_observed(db, pair, tag, stop, &|_| {})
}

/// [`hammer_pair_tagged`] with an observer called after every attempt —
/// the process-kill chaos harness uses it to trigger the `SIGKILL` after a
/// chosen number of acknowledged commits.
pub fn hammer_pair_tagged_observed(
    db: &ShardedDb,
    pair: (Key, Key),
    tag: &[u8],
    stop: &dyn Fn() -> bool,
    on_attempt: &dyn Fn(&PairAttempt),
) -> (History, Vec<PairAttempt>) {
    let (a, b) = pair;
    let mut history = History::new();
    let mut attempts = Vec::new();
    let mut seq = 0u32;
    while !stop() {
        let Ok(mut txn) = db.begin() else {
            std::thread::sleep(Duration::from_millis(2));
            continue;
        };
        // A virgin transaction may be transparently re-stamped; the first
        // successful operation pins the id the tags must carry.
        let Ok(seen) = txn.read(a) else {
            std::thread::sleep(Duration::from_millis(2));
            continue;
        };
        let id = txn.id();
        let mut record = TxnRecord::new(id);
        record.read(a, seen);
        let value_a = tag_value(id, seq, tag);
        let value_b = tag_value(id, seq + 1, tag);
        seq += 2;
        record.write(a, value_a.clone());
        if txn.write(a, value_a.clone()).is_err() {
            record.abort();
            history.push(record);
            continue;
        }
        record.write(b, value_b.clone());
        if txn.write(b, value_b.clone()).is_err() {
            record.abort();
            history.push(record);
            continue;
        }
        let committed_as = match txn.commit_reported() {
            Ok((final_id, outcome)) if outcome.is_committed() => Some(final_id),
            _ => None,
        };
        let acked = committed_as.is_some();
        if let Some(final_id) = committed_as {
            // The twin-rebuild machinery may have re-stamped the
            // transaction; the final id is its version-order position.
            record.commit(final_id);
        } else {
            record.abort();
        }
        history.push(record);
        let attempt = PairAttempt {
            value_a,
            value_b,
            acked,
        };
        on_attempt(&attempt);
        attempts.push(attempt);
    }
    (history, attempts)
}

/// Classifies a post-recovery observation of one hammered pair: the visible
/// state must be the seed or exactly one attempt's pair (all-or-nothing per
/// epoch), and no acknowledged attempt may be newer than it (acknowledged
/// implies durable, and durability is in epoch order).  Returns the index
/// of the visible attempt (`None` = seed).
pub(crate) fn classify_hammered(
    name: &str,
    pair_name: &str,
    observed: &(Option<Value>, Option<Value>),
    old: &(Value, Value),
    attempts: &[PairAttempt],
) -> std::result::Result<Option<usize>, String> {
    let (left, right) = observed;
    let visible = if left.as_ref() == Some(&old.0) && right.as_ref() == Some(&old.1) {
        None
    } else {
        match attempts.iter().position(|attempt| {
            left.as_ref() == Some(&attempt.value_a) && right.as_ref() == Some(&attempt.value_b)
        }) {
            Some(index) => Some(index),
            None => {
                return Err(format!(
                    "{name}: {pair_name} torn after recovery: left={left:?} right={right:?}"
                ))
            }
        }
    };
    let last_acked = attempts.iter().rposition(|attempt| attempt.acked);
    if let Some(last_acked) = last_acked {
        if visible.is_none_or(|index| index < last_acked) {
            return Err(format!(
                "{name}: {pair_name} lost an acknowledged commit: visible {visible:?}, last \
                 acked {last_acked}"
            ));
        }
    }
    Ok(visible)
}

/// Drives one overlapping-epoch crash case end to end: two hammer threads
/// keep independent cross-shard pairs (both through the victim) hot so the
/// crash lands with one epoch deciding and the next executing, then the
/// victim recovers and the invariants are checked — all-or-nothing per
/// epoch, acknowledged-implies-durable with in-epoch-order durability,
/// recovery idempotence across both in-doubt epochs, serializability of the
/// merged history, and full 2PC decision drain.
pub fn run_overlap_crash_case(case: &OverlapCrashCase, seed: u64) -> Result<OverlapCrashReport> {
    let violation = |msg: String| {
        crate::dump_obs_report(case.name);
        ObladiError::Internal(format!("[{}] {msg}", case.name))
    };
    let deployment = open_faulty_deployment(seed)?;
    let db = &deployment.db;
    let pair1 = cross_shard_pair(db);
    let victim = if case.victim_second {
        db.router().route(pair1.1)
    } else {
        db.router().route(pair1.0)
    };
    let pair2 = cross_shard_pair_through(db, victim, pair1.0.max(pair1.1) + 1);
    let victim_fault = deployment.faults[victim].clone();
    let mut history = History::new();

    // Seed committed values on both pairs (no faults active yet).
    let old1 = write_pair_tagged(db, pair1, &mut history, 200, &|| false)
        .ok_or_else(|| violation("failed to seed pair 1".into()))?;
    let old2 = write_pair_tagged(db, pair2, &mut history, 200, &|| false)
        .ok_or_else(|| violation("failed to seed pair 2".into()))?;

    // Arm the victim, then hammer both pairs concurrently into the crash.
    victim_fault.set_plan(FaultPlan::crash_at(case.trigger));
    let stop_fault = victim_fault.clone();
    let stop = move || stop_fault.has_tripped();
    let ((history1, attempts1), (history2, attempts2)) = std::thread::scope(|scope| {
        let h2 = scope.spawn(|| hammer_pair_tagged(db, pair2, b"ovl2", &stop));
        let r1 = hammer_pair_tagged(db, pair1, b"ovl1", &stop);
        (r1, h2.join().expect("hammer thread panicked"))
    });
    history.extend(history1);
    history.extend(history2);

    wait_for(
        "the victim shard to self-crash",
        Duration::from_secs(20),
        &|| db.is_shard_crashed(victim),
    )?;

    // Recover (faults off) and observe both pairs.
    victim_fault.set_plan(FaultPlan::none());
    let report = db.recover_shard(victim)?;
    let observed1 = read_pair(db, pair1, &mut history)?;
    let observed2 = read_pair(db, pair2, &mut history)?;
    classify_hammered(case.name, "pair 1", &observed1, &old1, &attempts1).map_err(violation)?;
    classify_hammered(case.name, "pair 2", &observed2, &old2, &attempts2).map_err(violation)?;

    // Recovery idempotence across both in-doubt epochs: a second fault-free
    // crash + recovery must land on the same state.
    db.crash_shard(victim);
    db.recover_shard(victim)?;
    let observed1_again = read_pair(db, pair1, &mut history)?;
    let observed2_again = read_pair(db, pair2, &mut history)?;
    if observed1_again != observed1 || observed2_again != observed2 {
        return Err(violation(format!(
            "recovery not idempotent: {observed1:?}/{observed2:?} then \
             {observed1_again:?}/{observed2_again:?}"
        )));
    }

    // The whole observed history must be serializable.
    check_serializable(&history)
        .map_err(|violations| violation(format!("history not serializable: {violations:?}")))?;

    // Every 2PC decision must eventually retire.
    let drain_deadline = Instant::now() + Duration::from_secs(10);
    while db.pending_decisions() != 0 && Instant::now() < drain_deadline {
        std::thread::sleep(Duration::from_millis(5));
    }
    if db.pending_decisions() != 0 {
        return Err(violation(format!(
            "{} 2PC decisions never retired",
            db.pending_decisions()
        )));
    }

    db.shutdown();
    Ok(OverlapCrashReport {
        name: case.name,
        in_doubt: report.in_doubt,
        replayed_commits: report.replayed_commits,
        epochs_replayed: report.epochs_replayed,
        acked: [
            attempts1.iter().filter(|a| a.acked).count(),
            attempts2.iter().filter(|a| a.acked).count(),
        ],
        attempts: [attempts1.len(), attempts2.len()],
    })
}

/// Drives one crash case end to end and checks every invariant (see the
/// module docs).  Returns the observation report for extra assertions.
pub fn run_shard_crash_case(case: &ShardCrashCase, seed: u64) -> Result<ShardCrashReport> {
    let violation = |msg: String| {
        crate::dump_obs_report(case.name);
        ObladiError::Internal(format!("[{}] {msg}", case.name))
    };
    let deployment = open_faulty_deployment(seed)?;
    let db = &deployment.db;
    let pair = cross_shard_pair(db);
    let victim = if case.victim_second {
        db.router().route(pair.1)
    } else {
        db.router().route(pair.0)
    };
    let victim_fault = deployment.faults[victim].clone();
    let mut history = History::new();

    // Seed committed values on both shards (no faults active yet).
    let old = write_pair_tagged(db, pair, &mut history, 100, &|| false)
        .ok_or_else(|| violation("failed to seed the cross-shard pair".into()))?;

    // Arm the victim and drive the transaction into the crash point.
    if let Some(trigger) = case.trigger {
        victim_fault.set_plan(FaultPlan::crash_at(trigger));
    }
    let fault = victim_fault.clone();
    let stop: Box<dyn Fn() -> bool> = match case.trigger {
        Some(_) => Box::new(move || fault.has_tripped()),
        None => Box::new(|| false),
    };
    let new = write_pair_tagged(db, pair, &mut history, 100, stop.as_ref());

    // Reach the crash: triggered cases fate-share into a self-crash once
    // the sticky outage bites the epoch driver; the post-durability case
    // crashes explicitly after the acknowledgement.
    let tripped = match case.trigger {
        Some(_) => {
            wait_for(
                "the victim shard to self-crash",
                Duration::from_secs(20),
                &|| db.is_shard_crashed(victim),
            )?;
            victim_fault.has_tripped()
        }
        None => {
            if new.is_none() {
                return Err(violation("post-durability case never committed".into()));
            }
            // The acknowledgement leads the epoch's durable tail now
            // (decision-durability ack), so "after full durability" has to
            // wait for the tail to drain: once two further global epochs
            // have published, the acked epoch's commit record is durable by
            // WAL order (a later epoch's records are only accepted behind
            // its predecessor's frontier).
            let settled = db.stats().global_epochs + 2;
            wait_for(
                "the acked epoch's durable tail",
                Duration::from_secs(10),
                &|| db.stats().global_epochs >= settled,
            )?;
            db.crash_shard(victim);
            true
        }
    };

    // Recover (faults off) and observe.
    victim_fault.set_plan(FaultPlan::none());
    let report = db.recover_shard(victim)?;
    let observed = read_pair(db, pair, &mut history)?;
    let committed_visible = classify(case.name, observed, &old, &new).map_err(violation)?;

    // --- Invariants. ---
    let acknowledged_commit = new.is_some();
    if acknowledged_commit && !committed_visible {
        return Err(violation(
            "acknowledged commit vanished after recovery".into(),
        ));
    }
    match case.expected {
        Expected::Abort if committed_visible => {
            return Err(violation(
                "crash point precedes the durable vote, yet the commit survived".into(),
            ))
        }
        Expected::Commit if !committed_visible => {
            return Err(violation(
                "vote was durable on every participant, yet the commit was lost".into(),
            ))
        }
        _ => {}
    }

    // Recovery idempotence: a second, fault-free crash + recovery must
    // land on the same state.
    db.crash_shard(victim);
    db.recover_shard(victim)?;
    let observed_again = read_pair(db, pair, &mut history)?;
    let visible_again = classify(case.name, observed_again, &old, &new).map_err(violation)?;
    if visible_again != committed_visible {
        return Err(violation(format!(
            "recovery is not idempotent: visible={committed_visible} then {visible_again}"
        )));
    }

    // The whole observed history must be serializable.
    check_serializable(&history)
        .map_err(|violations| violation(format!("history not serializable: {violations:?}")))?;

    // Every 2PC decision must eventually retire: participants acknowledge
    // on their epoch-driver threads (or during recovery), so wait for the
    // drain rather than sampling a racy instant.
    let drain_deadline = Instant::now() + Duration::from_secs(10);
    while db.pending_decisions() != 0 && Instant::now() < drain_deadline {
        std::thread::sleep(Duration::from_millis(5));
    }
    let pending_decisions_after = db.pending_decisions();
    if pending_decisions_after != 0 {
        return Err(violation(format!(
            "{pending_decisions_after} 2PC decisions never retired"
        )));
    }

    db.shutdown();
    Ok(ShardCrashReport {
        name: case.name,
        acknowledged_commit,
        tripped,
        committed_visible,
        in_doubt: report.in_doubt,
        replayed_commits: report.replayed_commits,
        pending_decisions_after,
    })
}
