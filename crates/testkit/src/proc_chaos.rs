//! Process-kill chaos for out-of-process storage: `kill -9` a shard's
//! `obladi-stored` daemon mid-epoch and prove nothing acknowledged is lost.
//!
//! [`shard_chaos`](crate::shard_chaos) drives *deterministic* crash points
//! with an in-process [`FaultyStore`](obladi_storage::FaultyStore); this
//! module drives the same invariants through a **real process boundary**:
//! the deployment is opened with `StorageBackend::RemoteSpawned`, so each
//! shard's ORAM pipeline talks framed RPC to its own storage daemon, and
//! the "crash" is a genuine `SIGKILL` — no flush, no goodbye, the socket
//! simply dies under the proxy.  The schedule is keyed on *observed
//! acknowledged commits* rather than storage-op counts (a supervisor
//! cannot count ops inside another process deterministically), which
//! still lands every kill inside a hot cross-shard 2PC window because the
//! hammer threads never stop committing through the victim.
//!
//! What one case proves, end to end:
//!
//! 1. the `SIGKILL` surfaces as storage faults on the victim's socket and
//!    the proxy **fate-shares** into a shard crash (the other shards keep
//!    serving);
//! 2. the supervisor **respawns** the daemon over the same data directory
//!    — a *new process* (asserted by pid) that rebuilds acknowledged
//!    state by op-log replay;
//! 3. the shard's existing **WAL recovery** replays over the respawned
//!    daemon: all-or-nothing per epoch, acknowledged-implies-durable,
//!    recovery idempotence, serializability of the whole history, and
//!    full 2PC decision drain — the same oracle battery as the in-process
//!    sweeps.

use crate::history::{check_serializable, History};
use crate::shard_chaos::{
    classify_hammered, cross_shard_pair, cross_shard_pair_through, hammer_pair_tagged_observed,
    read_pair, wait_for, write_pair_tagged, PairAttempt,
};
use obladi_common::config::{ShardConfig, StorageBackend};
use obladi_common::error::{ObladiError, Result};
use obladi_shard::ShardedDb;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::time::{Duration, Instant};

/// One process-kill case: which shard's daemon dies, and after how many
/// acknowledged commits (on the first hammered pair) the kill fires.
#[derive(Debug, Clone)]
pub struct ProcKillCase {
    /// Human-readable case name (used in assertion messages).
    pub name: String,
    /// `false` = the shard owning the first pair's first key loses its
    /// daemon, `true` = the shard owning its second key.
    pub victim_second: bool,
    /// Acknowledged commits observed on pair 1 before the `SIGKILL`.
    pub kill_after_acked: usize,
}

/// What one case observed after every invariant passed.
#[derive(Debug, Clone)]
pub struct ProcKillReport {
    /// The case name.
    pub name: String,
    /// In-doubt prepares the victim's recovery found.
    pub in_doubt: u64,
    /// In-doubt transactions recovery replayed from prepare records.
    pub replayed_commits: u64,
    /// Acknowledged commits per hammered pair at kill time.
    pub acked: [usize; 2],
    /// Total commit attempts per hammered pair.
    pub attempts: [usize; 2],
    /// The daemon's pid before the kill and after the respawn.
    pub pids: (u32, u32),
}

/// The process-kill schedule: kill at increasing depths of committed
/// history, on either side of the cross-shard pair.
pub fn proc_kill_schedule() -> Vec<ProcKillCase> {
    let mut cases = Vec::new();
    for victim_second in [false, true] {
        let side = if victim_second { "second" } else { "first" };
        for kill_after_acked in [0usize, 1, 3] {
            cases.push(ProcKillCase {
                name: format!("stored-kill9-after-{kill_after_acked}-acked/{side}"),
                victim_second,
                kill_after_acked,
            });
        }
    }
    cases
}

/// The deployment configuration every case runs: 3 shards, each against
/// its own spawned `obladi-stored` daemon.
fn proc_kill_config(seed: u64) -> ShardConfig {
    let mut config =
        ShardConfig::small_for_tests(3, 512).with_storage(StorageBackend::RemoteSpawned);
    config.shard.epoch.batch_interval = Duration::from_millis(1);
    config.shard.epoch.checkpoint_every = 3;
    config.shard.seed = seed;
    config
}

/// Drives one process-kill case end to end (see the module docs).
pub fn run_proc_kill_case(case: &ProcKillCase, seed: u64) -> Result<ProcKillReport> {
    let violation = |msg: String| {
        crate::dump_obs_report(&case.name);
        ObladiError::Internal(format!("[{}] {msg}", case.name))
    };
    let db = ShardedDb::open(proc_kill_config(seed))?;
    let pair1 = cross_shard_pair(&db);
    let victim = if case.victim_second {
        db.router().route(pair1.1)
    } else {
        db.router().route(pair1.0)
    };
    let pair2 = cross_shard_pair_through(&db, victim, pair1.0.max(pair1.1) + 1);
    let mut history = History::new();

    // Seed committed values on both pairs (daemons all healthy).
    let old1 = write_pair_tagged(&db, pair1, &mut history, 200, &|| false)
        .ok_or_else(|| violation("failed to seed pair 1".into()))?;
    let old2 = write_pair_tagged(&db, pair2, &mut history, 200, &|| false)
        .ok_or_else(|| violation("failed to seed pair 2".into()))?;

    let pid_before = db
        .storage_daemon_pid(victim)
        .ok_or_else(|| violation("victim daemon has no pid".into()))?;

    // Hammer both pairs through the victim; a watcher thread fires the
    // SIGKILL once pair 1 has accumulated the case's acknowledged commits,
    // and the hammers stop when the proxy-side fate-share lands.
    let acked_count = AtomicUsize::new(0);
    let killed = AtomicBool::new(false);
    // The deadline backstop keeps a failed kill (or a fate-share that
    // never lands) from spinning the hammers forever inside the scope —
    // the post-join checks then fail loudly instead of the case hanging.
    let hammer_deadline = Instant::now() + Duration::from_secs(60);
    let stop = || {
        Instant::now() >= hammer_deadline
            || (killed.load(Ordering::SeqCst) && db.is_shard_crashed(victim))
    };
    let observe = |attempt: &PairAttempt| {
        if attempt.acked {
            acked_count.fetch_add(1, Ordering::SeqCst);
        }
    };
    let (depth_reached, (history1, attempts1), (history2, attempts2)) =
        std::thread::scope(|scope| {
            let watcher = scope.spawn(|| {
                let deadline = Instant::now() + Duration::from_secs(30);
                while acked_count.load(Ordering::SeqCst) < case.kill_after_acked
                    && Instant::now() < deadline
                {
                    std::thread::sleep(Duration::from_millis(1));
                }
                // Kill even on deadline expiry — the hammers only stop once
                // the kill lands — but report whether the case's committed
                // depth was actually reached so the sweep can fail loudly
                // instead of silently testing a shallower history.
                let reached = acked_count.load(Ordering::SeqCst) >= case.kill_after_acked;
                let result = db.kill_shard_storage(victim);
                killed.store(true, Ordering::SeqCst);
                (reached, result)
            });
            let h2 =
                scope.spawn(|| hammer_pair_tagged_observed(&db, pair2, b"pk2", &stop, &|_| {}));
            let r1 = hammer_pair_tagged_observed(&db, pair1, b"pk1", &stop, &observe);
            let (reached, kill_result) = watcher.join().expect("watcher panicked");
            kill_result.expect("kill failed");
            (reached, r1, h2.join().expect("hammer thread panicked"))
        });
    history.extend(history1);
    history.extend(history2);
    if !depth_reached {
        return Err(violation(format!(
            "only {} acknowledged commits before the kill deadline (case needs {})",
            acked_count.load(Ordering::SeqCst),
            case.kill_after_acked
        )));
    }

    // The SIGKILL must surface as storage faults that fate-share into a
    // shard crash; the other shards are untouched.
    wait_for(
        "the victim shard to fate-share the daemon kill into a crash",
        Duration::from_secs(20),
        &|| db.is_shard_crashed(victim),
    )?;
    for shard in 0..db.shards() {
        if shard != victim && db.is_shard_crashed(shard) {
            return Err(violation(format!(
                "shard {shard} crashed but only {victim}'s daemon was killed"
            )));
        }
    }

    // Respawn the daemon (same data dir, new process) and recover the
    // shard through the ordinary WAL recovery path.
    db.respawn_shard_storage(victim)?;
    let pid_after = db
        .storage_daemon_pid(victim)
        .ok_or_else(|| violation("respawned daemon has no pid".into()))?;
    if pid_after == pid_before {
        return Err(violation("respawn did not produce a new process".into()));
    }
    let report = db.recover_shard(victim)?;

    let observed1 = read_pair(&db, pair1, &mut history)?;
    let observed2 = read_pair(&db, pair2, &mut history)?;
    classify_hammered(&case.name, "pair 1", &observed1, &old1, &attempts1).map_err(violation)?;
    classify_hammered(&case.name, "pair 2", &observed2, &old2, &attempts2).map_err(violation)?;

    // Recovery idempotence: crash and recover once more, fault-free.
    db.crash_shard(victim);
    db.recover_shard(victim)?;
    let observed1_again = read_pair(&db, pair1, &mut history)?;
    let observed2_again = read_pair(&db, pair2, &mut history)?;
    if observed1_again != observed1 || observed2_again != observed2 {
        return Err(violation(format!(
            "recovery not idempotent: {observed1:?}/{observed2:?} then \
             {observed1_again:?}/{observed2_again:?}"
        )));
    }

    check_serializable(&history)
        .map_err(|violations| violation(format!("history not serializable: {violations:?}")))?;

    let drain_deadline = Instant::now() + Duration::from_secs(10);
    while db.pending_decisions() != 0 && Instant::now() < drain_deadline {
        std::thread::sleep(Duration::from_millis(5));
    }
    if db.pending_decisions() != 0 {
        return Err(violation(format!(
            "{} 2PC decisions never retired",
            db.pending_decisions()
        )));
    }

    db.shutdown();
    Ok(ProcKillReport {
        name: case.name.clone(),
        in_doubt: report.in_doubt,
        replayed_commits: report.replayed_commits,
        acked: [
            attempts1.iter().filter(|a| a.acked).count(),
            attempts2.iter().filter(|a| a.acked).count(),
        ],
        attempts: [attempts1.len(), attempts2.len()],
        pids: (pid_before, pid_after),
    })
}
