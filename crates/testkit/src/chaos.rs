//! Crash-point injection harness for durability tests (§8).
//!
//! The paper's recovery guarantee is epoch fate sharing: a transaction whose
//! commit was acknowledged is durable, a transaction whose commit was not
//! acknowledged may disappear, and nothing else.  The harness in this module
//! drives a scripted sequence of single-key writes against an [`ObladiDb`],
//! crashes and recovers the proxy at a chosen point in the script, and
//! reports which writes were acknowledged so tests (including property
//! tests over *all* crash points) can verify exactly that guarantee.

use obladi_common::config::ObladiConfig;
use obladi_common::error::{ObladiError, Result};
use obladi_common::types::{Key, Value};
use obladi_core::proxy::ObladiDb;
use std::collections::HashMap;

/// Result of one scripted run with an injected crash.
pub struct CrashRun {
    /// The recovered database, ready for post-crash assertions.
    pub db: ObladiDb,
    /// Writes whose commit was acknowledged before the run ended, in
    /// acknowledgement order.
    pub acknowledged: Vec<(Key, Value)>,
    /// Writes that were attempted but not acknowledged (aborted, failed, or
    /// swallowed by the crash).
    pub unacknowledged: Vec<(Key, Value)>,
    /// Index in the script at which the crash was injected.
    pub crash_point: usize,
}

impl CrashRun {
    /// The last acknowledged value of every key, i.e. what recovery must
    /// preserve.
    pub fn expected_state(&self) -> HashMap<Key, Value> {
        let mut state = HashMap::new();
        for (key, value) in &self.acknowledged {
            state.insert(*key, value.clone());
        }
        state
    }

    /// Verifies that every acknowledged write survived recovery and that no
    /// key whose writes were all unacknowledged has resurfaced with an
    /// unacknowledged value.  A violation dumps the process-wide obs report
    /// so the failing sweep carries its own diagnosis.
    pub fn verify_durability(&self) -> std::result::Result<(), String> {
        let result = self.verify_durability_inner();
        if let Err(msg) = &result {
            crate::dump_obs_report(&format!("crash point {}: {msg}", self.crash_point));
        }
        result
    }

    fn verify_durability_inner(&self) -> std::result::Result<(), String> {
        let expected = self.expected_state();
        for (key, value) in &expected {
            match read_with_retries(&self.db, *key, 20) {
                Ok(Some(found)) if &found == value => {}
                Ok(found) => {
                    return Err(format!(
                        "key {key}: expected acknowledged value {value:?}, found {found:?}"
                    ));
                }
                Err(err) => return Err(format!("key {key}: read failed after recovery: {err}")),
            }
        }
        // Keys that only ever saw unacknowledged writes must either be
        // absent or hold nothing at all (they can never hold a value, since
        // no other writer exists in the script).
        for (key, value) in &self.unacknowledged {
            if expected.contains_key(key) {
                continue;
            }
            match read_with_retries(&self.db, *key, 20) {
                Ok(None) => {}
                Ok(Some(found)) if &found == value => {
                    return Err(format!(
                        "key {key}: unacknowledged write {value:?} resurfaced after recovery"
                    ));
                }
                Ok(Some(_)) | Err(_) => {}
            }
        }
        Ok(())
    }
}

/// Reads `key` in its own transaction, retrying reads that abort because
/// they straddle an epoch boundary.
pub fn read_with_retries(db: &ObladiDb, key: Key, retries: usize) -> Result<Option<Value>> {
    let mut last_err = ObladiError::Internal("no read attempt made".into());
    for attempt in 0..retries.max(1) {
        if attempt > 0 {
            // Reads abort when they straddle an epoch boundary; give the
            // next epoch a moment to open before retrying so a small retry
            // budget is not burned within a single boundary.
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        let mut txn = match db.begin() {
            Ok(txn) => txn,
            Err(err) => {
                last_err = err;
                continue;
            }
        };
        match txn.read(key) {
            Ok(value) => {
                let _ = txn.commit();
                return Ok(value);
            }
            Err(err) if err.is_retryable() => {
                last_err = err;
                continue;
            }
            Err(err) => return Err(err),
        }
    }
    Err(last_err)
}

/// Writes `value` to `key` in its own transaction and reports whether the
/// commit was acknowledged.
pub fn put_acknowledged(db: &ObladiDb, key: Key, value: &[u8]) -> bool {
    let mut txn = match db.begin() {
        Ok(txn) => txn,
        Err(_) => return false,
    };
    if txn.write(key, value.to_vec()).is_err() {
        return false;
    }
    match txn.commit() {
        Ok(outcome) => outcome.is_committed(),
        Err(_) => false,
    }
}

/// Runs `script` (a list of key/value writes, one transaction each) against
/// a fresh database built from `config`, crashing and recovering the proxy
/// after `crash_after` writes have been attempted.
///
/// A `crash_after` at or past the script length crashes after the final
/// write.  The returned [`CrashRun`] still owns the (recovered) database so
/// the caller can perform further assertions; call
/// [`CrashRun::verify_durability`] for the standard epoch-fate-sharing
/// check.
pub fn run_script_with_crash(
    config: ObladiConfig,
    script: &[(Key, Value)],
    crash_after: usize,
) -> Result<CrashRun> {
    let db = ObladiDb::open(config)?;
    let crash_point = crash_after.min(script.len());
    let mut acknowledged = Vec::new();
    let mut unacknowledged = Vec::new();

    let run_slice = |db: &ObladiDb,
                     slice: &[(Key, Value)],
                     acknowledged: &mut Vec<(Key, Value)>,
                     unacknowledged: &mut Vec<(Key, Value)>| {
        for (key, value) in slice {
            if put_acknowledged(db, *key, value) {
                acknowledged.push((*key, value.clone()));
            } else {
                unacknowledged.push((*key, value.clone()));
            }
        }
    };

    run_slice(
        &db,
        &script[..crash_point],
        &mut acknowledged,
        &mut unacknowledged,
    );
    db.crash();
    db.recover()?;
    run_slice(
        &db,
        &script[crash_point..],
        &mut acknowledged,
        &mut unacknowledged,
    );

    Ok(CrashRun {
        db,
        acknowledged,
        unacknowledged,
        crash_point,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn config() -> ObladiConfig {
        let mut config = ObladiConfig::small_for_tests(1_024);
        config.epoch.read_batches = 2;
        config.epoch.read_batch_size = 8;
        config.epoch.write_batch_size = 16;
        config.epoch.batch_interval = Duration::from_millis(1);
        config.epoch.checkpoint_every = 2;
        config
    }

    fn script(len: u64) -> Vec<(Key, Value)> {
        (0..len)
            .map(|i| (i % 7, format!("value-{i}").into_bytes()))
            .collect()
    }

    #[test]
    fn crash_in_the_middle_preserves_acknowledged_writes() {
        let run = run_script_with_crash(config(), &script(12), 6).unwrap();
        assert_eq!(run.crash_point, 6);
        assert_eq!(
            run.acknowledged.len() + run.unacknowledged.len(),
            12,
            "every scripted write must be classified"
        );
        run.verify_durability().unwrap();
        run.db.shutdown();
    }

    #[test]
    fn crash_before_any_write_leaves_an_empty_database() {
        let run = run_script_with_crash(config(), &script(4), 0).unwrap();
        run.verify_durability().unwrap();
        run.db.shutdown();
    }

    #[test]
    fn crash_after_the_last_write_preserves_everything_acknowledged() {
        let run = run_script_with_crash(config(), &script(5), 64).unwrap();
        assert_eq!(run.crash_point, 5);
        run.verify_durability().unwrap();
        run.db.shutdown();
    }

    #[test]
    fn read_with_retries_surfaces_missing_keys_as_none() {
        let db = ObladiDb::open(config()).unwrap();
        assert_eq!(read_with_retries(&db, 999, 5).unwrap(), None);
        assert!(put_acknowledged(&db, 1, b"present"));
        assert_eq!(
            read_with_retries(&db, 1, 5).unwrap(),
            Some(b"present".to_vec())
        );
        db.shutdown();
    }
}
