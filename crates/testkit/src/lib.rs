//! Test oracles and harnesses for the Obladi reproduction.
//!
//! This crate is not part of the system itself; it packages the machinery
//! the integration tests and benchmarks use to *judge* the system:
//!
//! * [`history`] — recorded transaction histories and a black-box
//!   serializability checker (Adya-style direct serialization graph with
//!   cycle detection), plus value-tagging helpers that make every write
//!   attributable to its writer;
//! * [`recorder`] — thread-safe collection of per-transaction traces from
//!   concurrent client threads;
//! * [`trace`] — a [`obladi_oram::client::PathLogger`] that records the
//!   physical access trace the storage server observes, with helpers for
//!   the path-uniformity and bucket-invariant checks of §4/§9;
//! * [`stats`] — chi-square uniformity and total-variation distance used to
//!   compare adversary-visible traces across workloads;
//! * [`audit`] — the obliviousness oracle over `obladi_obs::audit`
//!   adversary-view traces: recording deployments, trace-shape reduction
//!   and the pairwise differential indistinguishability assertion;
//! * [`chaos`] — a crash-point injection harness for the epoch fate-sharing
//!   durability guarantee of §8;
//! * [`shard_chaos`] — a deterministic crash-schedule explorer for the
//!   sharded 2PC commit path: it enumerates every prepare/vote/commit
//!   interleaving crash point of a cross-shard transaction and checks
//!   all-or-nothing visibility plus serializability after recovery.
//!
//! Keeping these oracles in a dedicated crate keeps the system crates free
//! of test-only code while letting every test target (and the benches)
//! share one implementation of the checks.

#![warn(missing_docs)]

pub mod audit;
pub mod chaos;
pub mod history;
pub mod proc_chaos;
pub mod recorder;
pub mod shard_chaos;
pub mod stats;
pub mod trace;

pub use audit::{assert_trace_indistinguishable, cross_check, level_profile, recording_stores};
pub use chaos::{put_acknowledged, read_with_retries, run_script_with_crash, CrashRun};
pub use history::{
    check_serializable, parse_tag, tag_value, History, HistoryOp, SerializabilityReport, TxnRecord,
    Violation, WriteTag,
};
pub use proc_chaos::{proc_kill_schedule, run_proc_kill_case, ProcKillCase, ProcKillReport};
pub use recorder::{HistoryRecorder, TxnTrace};
pub use shard_chaos::{
    crash_schedule, cross_shard_pair, cross_shard_pair_through, hammer_pair_tagged,
    hammer_pair_tagged_observed, open_faulty_deployment, overlap_crash_schedule,
    run_overlap_crash_case, run_shard_crash_case, Expected, FaultyDeployment, OverlapCrashCase,
    OverlapCrashReport, PairAttempt, ShardCrashCase, ShardCrashReport,
};
pub use stats::{
    chi_square_critical, chi_square_uniform, is_plausibly_uniform, total_variation_distance,
};
pub use trace::{leaf_histogram_of, TraceRecorder};

/// Dumps the process-wide observability report to stderr, labelled with the
/// failing case.  The chaos harnesses call this the moment an invariant
/// breaks, so a failing sweep ships its own diagnosis: phase timings,
/// abort-cause counters and the trace tail of the epochs leading into the
/// crash.
pub fn dump_obs_report(context: &str) {
    eprintln!("--- obs report at failure: {context} ---");
    eprintln!("{}", obladi_obs::report());
    // The text report shows only the trace tail's summary; the full ring
    // as JSON makes the failing run's phase sequence machine-grepable.
    eprintln!("--- span trace (json): {context} ---");
    eprintln!(
        "{}",
        obladi_obs::report::render_trace_json(&obladi_obs::trace::global().events(), 0)
    );
}
