//! The obliviousness oracle over adversary-view traces.
//!
//! `obladi_obs::audit` owns the trace format and the differential
//! comparison; this module packages what a *test* needs on top of it:
//! building a deployment whose stores record into one shared ring,
//! reducing recorded runs to [`TraceShape`]s, asserting a whole set of
//! contrasting workloads is pairwise indistinguishable, and the
//! positional check that slot reads spread over the tree identically —
//! a real request in a batch must be placed exactly like a dummy pad
//! (§9's "the adversary sees a fixed sequence of uniformly chosen
//! paths").

use obladi_obs::audit::{compare, AuditKind, AuditOp, AuditRing, AuditTolerances, TraceShape};
use obladi_storage::{InMemoryStore, RecordingStore, UntrustedStore};
use std::sync::Arc;

/// Builds `shards` in-memory stores that all record into one fresh ring
/// (store ids are shard indices), for
/// [`ShardedDb::open_with_stores`](obladi_shard::ShardedDb).
pub fn recording_stores(shards: usize) -> (Vec<Arc<dyn UntrustedStore>>, Arc<AuditRing>) {
    let ring = Arc::new(AuditRing::default());
    let stores = (0..shards)
        .map(|index| {
            Arc::new(RecordingStore::new(
                Arc::new(InMemoryStore::new()),
                ring.clone(),
                index as u32,
            )) as Arc<dyn UntrustedStore>
        })
        .collect();
    (stores, ring)
}

/// Histogram of slot reads over tree levels (root = 0).  Every ORAM read
/// touches one slot per level of a uniformly chosen path, so the level
/// profile is a workload-independent constant — a skipped dummy or a
/// data-dependent path choice bends it.
pub fn level_profile(ops: &[AuditOp]) -> Vec<u64> {
    let mut counts: Vec<u64> = Vec::new();
    for op in ops {
        if op.kind != AuditKind::ReadSlot {
            continue;
        }
        let level = (63 - (op.addr + 1).leading_zeros() as u64) as usize;
        if counts.len() <= level {
            counts.resize(level + 1, 0);
        }
        counts[level] += 1;
    }
    counts
}

/// Pairwise-compares every shape against every other, returning all
/// failure lines (empty means the whole set is indistinguishable).
/// Beyond the shape comparison, the slot-read *level profiles* of each
/// pair must agree in total-variation distance — the positional check
/// that real and dummy reads land on the tree identically.
pub fn cross_check(
    shapes: &[(TraceShape, Vec<u64>)],
    tol: &AuditTolerances,
    max_tvd: f64,
) -> Vec<String> {
    let mut failures = Vec::new();
    for i in 0..shapes.len() {
        for j in i + 1..shapes.len() {
            let (a, profile_a) = &shapes[i];
            let (b, profile_b) = &shapes[j];
            let verdict = compare(a, b, tol);
            for failure in verdict.failures {
                failures.push(format!("{} vs {}: {}", a.label, b.label, failure));
            }
            if !profile_a.is_empty() || !profile_b.is_empty() {
                let tvd = crate::stats::total_variation_distance(profile_a, profile_b);
                if tvd > max_tvd {
                    failures.push(format!(
                        "{} vs {}: slot-read level profiles diverge (tvd {tvd:.3} > \
                         {max_tvd:.3}) — reads are not positionally uniform",
                        a.label, b.label
                    ));
                }
            }
        }
    }
    failures
}

/// Panicking wrapper over [`cross_check`] for direct use in tests.
pub fn assert_trace_indistinguishable(
    shapes: &[(TraceShape, Vec<u64>)],
    tol: &AuditTolerances,
    max_tvd: f64,
) {
    let failures = cross_check(shapes, tol, max_tvd);
    assert!(
        failures.is_empty(),
        "adversary-view traces are distinguishable:\n  {}",
        failures.join("\n  ")
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    fn read_op(bucket: u64) -> AuditOp {
        AuditOp {
            at_us: 0,
            store: 0,
            kind: AuditKind::ReadSlot,
            addr: bucket,
            payload_len: 64,
            req_frame: 26,
            resp_frame: 82,
        }
    }

    #[test]
    fn level_profile_counts_heap_levels() {
        // Root (level 0), both level-1 buckets, one level-2 bucket.
        let ops = vec![read_op(0), read_op(1), read_op(2), read_op(3)];
        let profile = level_profile(&ops);
        assert_eq!(profile, vec![1, 2, 1]);
    }

    #[test]
    fn level_profile_ignores_other_kinds() {
        let mut op = read_op(0);
        op.kind = AuditKind::AppendLog;
        assert!(level_profile(&[op]).is_empty());
    }

    #[test]
    fn cross_check_flags_bent_level_profiles() {
        // Same shape, but one trace reads only the root: positionally
        // distinguishable even though counts and lengths agree.
        let flat: Vec<AuditOp> = (0..300).map(|i| read_op(i % 7)).collect();
        let bent: Vec<AuditOp> = (0..300).map(|_| read_op(0)).collect();
        let shapes = vec![
            (
                TraceShape::from_ops("flat", &flat, 1_000_000, 10),
                level_profile(&flat),
            ),
            (
                TraceShape::from_ops("bent", &bent, 1_000_000, 10),
                level_profile(&bent),
            ),
        ];
        let failures = cross_check(&shapes, &AuditTolerances::default(), 0.1);
        assert!(
            failures.iter().any(|f| f.contains("level profiles")),
            "{failures:?}"
        );
    }

    #[test]
    fn cross_check_accepts_identical_sets() {
        let ops: Vec<AuditOp> = (0..300).map(|i| read_op(i % 7)).collect();
        let shapes: Vec<(TraceShape, Vec<u64>)> = ["a", "b", "c"]
            .iter()
            .map(|label| {
                (
                    TraceShape::from_ops(label, &ops, 1_000_000, 10),
                    level_profile(&ops),
                )
            })
            .collect();
        assert_trace_indistinguishable(&shapes, &AuditTolerances::default(), 0.05);
    }
}
