//! Recording and analysing the physical access trace the storage server sees.
//!
//! Obliviousness tests need to look at the system from the adversary's side:
//! which buckets and slots were read, in which batches, and how often.  The
//! [`TraceRecorder`] plugs into the ORAM executor's [`PathLogger`] hook (the
//! same hook the durability unit uses to log read paths, §8) and keeps the
//! full trace in memory; the analysis helpers then summarise it into the
//! quantities the security argument of §9 talks about: per-batch request
//! counts and the distribution of accessed paths.

use obladi_common::error::Result;
use obladi_oram::client::PathLogger;
use obladi_oram::{SlotRead, TreeGeometry};
use parking_lot::Mutex;
use std::collections::HashMap;

/// A [`PathLogger`] that records every batch of physical reads.
#[derive(Debug, Default)]
pub struct TraceRecorder {
    batches: Mutex<Vec<Vec<SlotRead>>>,
}

impl TraceRecorder {
    /// Creates an empty recorder.
    pub fn new() -> Self {
        TraceRecorder::default()
    }

    /// Number of batches logged so far.
    pub fn batch_count(&self) -> usize {
        self.batches.lock().len()
    }

    /// The physical read count of each logged batch, in order.
    pub fn reads_per_batch(&self) -> Vec<usize> {
        self.batches.lock().iter().map(|b| b.len()).collect()
    }

    /// All recorded reads, flattened in arrival order.
    pub fn all_reads(&self) -> Vec<SlotRead> {
        self.batches.lock().iter().flatten().copied().collect()
    }

    /// The recorded batches themselves, in arrival order.
    ///
    /// Within one `read_batch` call the ORAM logs its access-phase reads
    /// first and any eviction / reshuffle reads in later calls, so tests
    /// that want to reason about the access phase alone (whose paths are
    /// uniform, §4) can take the first batch logged per `read_batch`.
    pub fn batches(&self) -> Vec<Vec<SlotRead>> {
        self.batches.lock().clone()
    }

    /// Total number of physical reads recorded.
    pub fn total_reads(&self) -> usize {
        self.batches.lock().iter().map(|b| b.len()).sum()
    }

    /// Histogram of reads per bucket.
    pub fn bucket_histogram(&self) -> HashMap<u64, u64> {
        let mut histogram = HashMap::new();
        for read in self.all_reads() {
            *histogram.entry(read.bucket).or_insert(0) += 1;
        }
        histogram
    }

    /// Histogram of reads that landed on leaf-level buckets, indexed by leaf
    /// label `0..num_leaves`.
    ///
    /// Under the path invariant the leaf-level accesses of a long trace are
    /// uniform over the leaves regardless of the workload; this is the
    /// histogram the obliviousness tests feed to
    /// [`crate::stats::chi_square_uniform`].
    pub fn leaf_histogram(&self, geometry: &TreeGeometry) -> Vec<u64> {
        leaf_histogram_of(&self.all_reads(), geometry)
    }

    /// The largest share of leaf-level accesses absorbed by a single leaf
    /// (0.0 when no leaf-level access was recorded).
    pub fn max_leaf_share(&self, geometry: &TreeGeometry) -> f64 {
        let histogram = self.leaf_histogram(geometry);
        let total: u64 = histogram.iter().sum();
        if total == 0 {
            return 0.0;
        }
        let max = histogram.iter().copied().max().unwrap_or(0);
        max as f64 / total as f64
    }

    /// Asserts (returning an error string on failure) that no slot of any
    /// bucket version was read more than once — the bucket invariant of §4.
    pub fn check_bucket_invariant(&self) -> std::result::Result<(), String> {
        let mut seen: HashMap<(u64, u64, u32), u64> = HashMap::new();
        for read in self.all_reads() {
            let times = seen
                .entry((read.bucket, read.version, read.slot))
                .or_insert(0);
            *times += 1;
            if *times > 1 {
                return Err(format!(
                    "slot {} of bucket {} (version {}) read {} times between rewrites",
                    read.slot, read.bucket, read.version, times
                ));
            }
        }
        Ok(())
    }

    /// Clears the recorded trace.
    pub fn clear(&self) {
        self.batches.lock().clear();
    }
}

impl PathLogger for TraceRecorder {
    fn log_reads(&self, reads: &[SlotRead]) -> Result<()> {
        self.batches.lock().push(reads.to_vec());
        Ok(())
    }
}

/// Histogram of the reads in `reads` that landed on leaf-level buckets,
/// indexed by leaf label `0..num_leaves`.
pub fn leaf_histogram_of(reads: &[SlotRead], geometry: &TreeGeometry) -> Vec<u64> {
    let num_leaves = geometry.num_leaves();
    let first_leaf_bucket = num_leaves - 1;
    let mut counts = vec![0u64; num_leaves as usize];
    for read in reads {
        if read.bucket >= first_leaf_bucket {
            let leaf = (read.bucket - first_leaf_bucket) as usize;
            if leaf < counts.len() {
                counts[leaf] += 1;
            }
        }
    }
    counts
}

#[cfg(test)]
mod tests {
    use super::*;
    use obladi_common::config::OramConfig;
    use obladi_common::rng::DetRng;
    use obladi_crypto::KeyMaterial;
    use obladi_oram::{ExecOptions, NoopPathLogger, RingOram};
    use obladi_storage::{InMemoryStore, UntrustedStore};
    use std::sync::Arc;

    fn small_oram(seed: u64) -> RingOram {
        let config = OramConfig::small_for_tests(256).with_max_stash(2_048);
        let store: Arc<dyn UntrustedStore> = Arc::new(InMemoryStore::new());
        let keys = KeyMaterial::for_tests(seed);
        RingOram::new(config, &keys, store, ExecOptions::parallel(2), seed).unwrap()
    }

    #[test]
    fn recorder_captures_batches_and_counts() {
        let mut oram = small_oram(1);
        let recorder = TraceRecorder::new();
        for k in 0..32u64 {
            oram.write_batch(&[(k, vec![k as u8; 8])], &NoopPathLogger)
                .unwrap();
        }
        oram.flush_writes(&NoopPathLogger).unwrap();

        let mut rng = DetRng::new(7);
        for _ in 0..4 {
            let batch: Vec<Option<u64>> = (0..8).map(|_| Some(rng.below(32))).collect();
            oram.read_batch(&batch, &recorder).unwrap();
            oram.flush_writes(&NoopPathLogger).unwrap();
        }

        // Each read batch logs its access-phase reads, plus one log per
        // eviction / reshuffle that came due during the batch.
        assert!(recorder.batch_count() >= 4);
        assert_eq!(recorder.reads_per_batch().len(), recorder.batch_count());
        assert_eq!(
            recorder.total_reads(),
            recorder.reads_per_batch().iter().sum::<usize>()
        );
        assert!(!recorder.bucket_histogram().is_empty());
        recorder.check_bucket_invariant().unwrap();

        recorder.clear();
        assert_eq!(recorder.total_reads(), 0);
    }

    #[test]
    fn leaf_histogram_covers_many_leaves_for_uniform_reads() {
        let mut oram = small_oram(2);
        let recorder = TraceRecorder::new();
        for k in 0..64u64 {
            oram.write_batch(&[(k, vec![1; 8])], &NoopPathLogger)
                .unwrap();
        }
        oram.flush_writes(&NoopPathLogger).unwrap();

        let mut rng = DetRng::new(3);
        for _ in 0..16 {
            let batch: Vec<Option<u64>> = (0..8).map(|_| Some(rng.below(64))).collect();
            oram.read_batch(&batch, &recorder).unwrap();
            oram.flush_writes(&NoopPathLogger).unwrap();
        }

        let geometry = oram.geometry();
        let histogram = recorder.leaf_histogram(&geometry);
        assert_eq!(histogram.len(), geometry.num_leaves() as usize);
        let touched = histogram.iter().filter(|c| **c > 0).count();
        assert!(
            touched >= histogram.len() / 3,
            "only {touched} of {} leaves touched",
            histogram.len()
        );
        assert!(recorder.max_leaf_share(&geometry) < 0.5);
    }

    #[test]
    fn bucket_invariant_violation_is_reported() {
        let recorder = TraceRecorder::new();
        let read = SlotRead {
            bucket: 3,
            slot: 1,
            version: 0,
        };
        recorder.log_reads(&[read, read]).unwrap();
        assert!(recorder.check_bucket_invariant().is_err());
    }
}
