//! In-memory reference implementation of [`UntrustedStore`].
//!
//! The paper's `server` backends are remote in-memory hashmaps; this module
//! provides the hashmap.  Latency is added separately by
//! [`crate::latency::LatencyStore`], so this type can also serve directly as
//! the zero-latency `dummy` backend.
//!
//! Buckets are *versioned*: every [`UntrustedStore::write_bucket`] appends a
//! new version instead of overwriting, keeping a bounded history so the
//! recovery logic can revert the ORAM to the state of the last durable epoch
//! (shadow paging, §8).

use crate::traits::{BucketSnapshot, StoreStats, UntrustedStore};
use bytes::Bytes;
use obladi_common::error::{ObladiError, Result};
use obladi_common::types::{BucketId, Version};
use parking_lot::{Mutex, RwLock};
use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};

/// How many historical versions of each bucket are retained.
///
/// Recovery only ever reverts to the previous durable epoch, and a bucket is
/// written at most a handful of times per epoch (once, after write
/// deduplication), so a small history suffices.
const VERSION_HISTORY: usize = 8;

#[derive(Debug, Default)]
struct VersionedBucket {
    /// `(version, slots)` pairs, oldest first, at most [`VERSION_HISTORY`].
    versions: Vec<(Version, Vec<Bytes>)>,
}

impl VersionedBucket {
    fn current(&self) -> Option<&(Version, Vec<Bytes>)> {
        self.versions.last()
    }

    fn push(&mut self, slots: Vec<Bytes>) -> Version {
        let next = self.current().map(|(v, _)| v + 1).unwrap_or(1);
        self.versions.push((next, slots));
        if self.versions.len() > VERSION_HISTORY {
            self.versions.remove(0);
        }
        next
    }

    fn revert_to(&mut self, version: Version) -> Result<()> {
        if version == 0 {
            self.versions.clear();
            return Ok(());
        }
        if let Some(pos) = self.versions.iter().position(|(v, _)| *v == version) {
            self.versions.truncate(pos + 1);
            Ok(())
        } else {
            Err(ObladiError::Storage(format!(
                "cannot revert to version {version}: not in retained history"
            )))
        }
    }
}

/// Thread-safe in-memory storage server.
#[derive(Default)]
pub struct InMemoryStore {
    buckets: RwLock<HashMap<BucketId, VersionedBucket>>,
    meta: RwLock<HashMap<String, Bytes>>,
    log: Mutex<BTreeMap<u64, Bytes>>,
    next_log_seq: AtomicU64,
    slot_reads: AtomicU64,
    bucket_writes: AtomicU64,
    meta_reads: AtomicU64,
    meta_writes: AtomicU64,
    bytes_read: AtomicU64,
    bytes_written: AtomicU64,
}

impl InMemoryStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        InMemoryStore::default()
    }

    /// Number of buckets that have been written at least once.
    pub fn bucket_count(&self) -> usize {
        self.buckets.read().len()
    }

    /// Number of log records currently retained.
    pub fn log_len(&self) -> usize {
        self.log.lock().len()
    }

    /// Serialises the complete store state — buckets *with their retained
    /// version history* (recovery reverts through it), the meta map, the
    /// log with its original sequence numbers, and the sequence counter —
    /// into a deterministic byte string.  [`crate::disk::DurableStore`]
    /// uses this for op-log compaction: a snapshot replaces the replay of
    /// every mutation that preceded it.
    pub fn export_snapshot(&self) -> Vec<u8> {
        let buckets = self.buckets.read();
        let meta = self.meta.read();
        let log = self.log.lock();
        let mut out = Vec::with_capacity(1024);
        let put_bytes = |out: &mut Vec<u8>, data: &[u8]| {
            out.extend_from_slice(&(data.len() as u32).to_le_bytes());
            out.extend_from_slice(data);
        };

        let mut bucket_ids: Vec<BucketId> = buckets.keys().copied().collect();
        bucket_ids.sort_unstable();
        out.extend_from_slice(&(bucket_ids.len() as u64).to_le_bytes());
        for id in bucket_ids {
            let versioned = &buckets[&id];
            out.extend_from_slice(&id.to_le_bytes());
            out.extend_from_slice(&(versioned.versions.len() as u32).to_le_bytes());
            for (version, slots) in &versioned.versions {
                out.extend_from_slice(&version.to_le_bytes());
                out.extend_from_slice(&(slots.len() as u32).to_le_bytes());
                for slot in slots {
                    put_bytes(&mut out, slot);
                }
            }
        }

        let mut meta_keys: Vec<&String> = meta.keys().collect();
        meta_keys.sort();
        out.extend_from_slice(&(meta_keys.len() as u64).to_le_bytes());
        for key in meta_keys {
            put_bytes(&mut out, key.as_bytes());
            put_bytes(&mut out, &meta[key]);
        }

        out.extend_from_slice(&(log.len() as u64).to_le_bytes());
        for (seq, record) in log.iter() {
            out.extend_from_slice(&seq.to_le_bytes());
            put_bytes(&mut out, record);
        }
        out.extend_from_slice(&self.next_log_seq.load(Ordering::SeqCst).to_le_bytes());
        out
    }

    /// Rebuilds a store from the output of
    /// [`InMemoryStore::export_snapshot`].  Statistics start at zero.
    pub fn import_snapshot(bytes: &[u8]) -> Result<InMemoryStore> {
        let corrupt = || ObladiError::Codec("store snapshot truncated".into());
        let mut at = 0usize;
        let mut take = |n: usize| -> Result<&[u8]> {
            let slice = bytes.get(at..at + n).ok_or_else(corrupt)?;
            at += n;
            Ok(slice)
        };
        let store = InMemoryStore::new();
        {
            let mut buckets = store.buckets.write();
            let bucket_count = u64::from_le_bytes(take(8)?.try_into().unwrap()) as usize;
            for _ in 0..bucket_count {
                let id = u64::from_le_bytes(take(8)?.try_into().unwrap());
                let nversions = u32::from_le_bytes(take(4)?.try_into().unwrap()) as usize;
                let mut versioned = VersionedBucket::default();
                for _ in 0..nversions {
                    let version = u64::from_le_bytes(take(8)?.try_into().unwrap());
                    let nslots = u32::from_le_bytes(take(4)?.try_into().unwrap()) as usize;
                    let mut slots = Vec::with_capacity(nslots.min(1 << 16));
                    for _ in 0..nslots {
                        let len = u32::from_le_bytes(take(4)?.try_into().unwrap()) as usize;
                        slots.push(Bytes::copy_from_slice(take(len)?));
                    }
                    versioned.versions.push((version, slots));
                }
                buckets.insert(id, versioned);
            }
        }
        {
            let mut meta = store.meta.write();
            let meta_count = u64::from_le_bytes(take(8)?.try_into().unwrap()) as usize;
            for _ in 0..meta_count {
                let key_len = u32::from_le_bytes(take(4)?.try_into().unwrap()) as usize;
                let key = String::from_utf8(take(key_len)?.to_vec())
                    .map_err(|_| ObladiError::Codec("snapshot meta key not UTF-8".into()))?;
                let value_len = u32::from_le_bytes(take(4)?.try_into().unwrap()) as usize;
                meta.insert(key, Bytes::copy_from_slice(take(value_len)?));
            }
        }
        {
            let mut log = store.log.lock();
            let log_count = u64::from_le_bytes(take(8)?.try_into().unwrap()) as usize;
            for _ in 0..log_count {
                let seq = u64::from_le_bytes(take(8)?.try_into().unwrap());
                let len = u32::from_le_bytes(take(4)?.try_into().unwrap()) as usize;
                log.insert(seq, Bytes::copy_from_slice(take(len)?));
            }
        }
        let next_seq = u64::from_le_bytes(take(8)?.try_into().unwrap());
        store.next_log_seq.store(next_seq, Ordering::SeqCst);
        if at != bytes.len() {
            return Err(ObladiError::Codec(
                "store snapshot has trailing bytes".into(),
            ));
        }
        Ok(store)
    }
}

impl UntrustedStore for InMemoryStore {
    fn read_slot(&self, bucket: BucketId, slot: u32) -> Result<Bytes> {
        self.slot_reads.fetch_add(1, Ordering::Relaxed);
        let buckets = self.buckets.read();
        let versioned = buckets.get(&bucket).ok_or_else(|| {
            ObladiError::Storage(format!("bucket {bucket} has never been written"))
        })?;
        let (_, slots) = versioned
            .current()
            .ok_or_else(|| ObladiError::Storage(format!("bucket {bucket} is empty")))?;
        let data = slots.get(slot as usize).ok_or_else(|| {
            ObladiError::Storage(format!(
                "slot {slot} out of range for bucket {bucket} ({} slots)",
                slots.len()
            ))
        })?;
        self.bytes_read
            .fetch_add(data.len() as u64, Ordering::Relaxed);
        Ok(data.clone())
    }

    fn read_bucket(&self, bucket: BucketId) -> Result<BucketSnapshot> {
        self.meta_reads.fetch_add(1, Ordering::Relaxed);
        let buckets = self.buckets.read();
        match buckets.get(&bucket).and_then(|b| b.current()) {
            Some((version, slots)) => {
                let total: usize = slots.iter().map(|s| s.len()).sum();
                self.bytes_read.fetch_add(total as u64, Ordering::Relaxed);
                Ok(BucketSnapshot {
                    version: *version,
                    slots: slots.clone(),
                })
            }
            None => Ok(BucketSnapshot {
                version: 0,
                slots: Vec::new(),
            }),
        }
    }

    fn write_bucket(&self, bucket: BucketId, slots: Vec<Bytes>) -> Result<Version> {
        self.bucket_writes.fetch_add(1, Ordering::Relaxed);
        let total: usize = slots.iter().map(|s| s.len()).sum();
        self.bytes_written
            .fetch_add(total as u64, Ordering::Relaxed);
        let mut buckets = self.buckets.write();
        Ok(buckets.entry(bucket).or_default().push(slots))
    }

    fn bucket_version(&self, bucket: BucketId) -> Result<Version> {
        let buckets = self.buckets.read();
        Ok(buckets
            .get(&bucket)
            .and_then(|b| b.current())
            .map(|(v, _)| *v)
            .unwrap_or(0))
    }

    fn revert_bucket(&self, bucket: BucketId, version: Version) -> Result<()> {
        let mut buckets = self.buckets.write();
        match buckets.get_mut(&bucket) {
            Some(b) => b.revert_to(version),
            None if version == 0 => Ok(()),
            None => Err(ObladiError::Storage(format!(
                "cannot revert unknown bucket {bucket} to version {version}"
            ))),
        }
    }

    fn put_meta(&self, key: &str, value: Bytes) -> Result<()> {
        self.meta_writes.fetch_add(1, Ordering::Relaxed);
        self.bytes_written
            .fetch_add(value.len() as u64, Ordering::Relaxed);
        self.meta.write().insert(key.to_string(), value);
        Ok(())
    }

    fn get_meta(&self, key: &str) -> Result<Option<Bytes>> {
        self.meta_reads.fetch_add(1, Ordering::Relaxed);
        let value = self.meta.read().get(key).cloned();
        if let Some(v) = &value {
            self.bytes_read.fetch_add(v.len() as u64, Ordering::Relaxed);
        }
        Ok(value)
    }

    fn append_log(&self, record: Bytes) -> Result<u64> {
        self.meta_writes.fetch_add(1, Ordering::Relaxed);
        self.bytes_written
            .fetch_add(record.len() as u64, Ordering::Relaxed);
        let seq = self.next_log_seq.fetch_add(1, Ordering::SeqCst);
        self.log.lock().insert(seq, record);
        Ok(seq)
    }

    fn read_log_from(&self, from: u64) -> Result<Vec<(u64, Bytes)>> {
        self.meta_reads.fetch_add(1, Ordering::Relaxed);
        let log = self.log.lock();
        let records: Vec<(u64, Bytes)> = log
            .range(from..)
            .map(|(seq, data)| (*seq, data.clone()))
            .collect();
        let total: usize = records.iter().map(|(_, d)| d.len()).sum();
        self.bytes_read.fetch_add(total as u64, Ordering::Relaxed);
        Ok(records)
    }

    fn read_log_page(&self, from: u64, max_bytes: usize) -> Result<(Vec<(u64, Bytes)>, bool)> {
        // Bounded scan: clone only the page, not the whole log suffix —
        // paged recovery over the wire stays linear in the log size.
        self.meta_reads.fetch_add(1, Ordering::Relaxed);
        let log = self.log.lock();
        let mut records = Vec::new();
        let mut budget = max_bytes;
        let mut truncated = false;
        for (seq, data) in log.range(from..) {
            let cost = 12 + data.len();
            if !records.is_empty() && cost > budget {
                truncated = true;
                break;
            }
            budget = budget.saturating_sub(cost);
            records.push((*seq, data.clone()));
        }
        let total: usize = records.iter().map(|(_, d)| d.len()).sum();
        self.bytes_read.fetch_add(total as u64, Ordering::Relaxed);
        Ok((records, truncated))
    }

    fn truncate_log(&self, up_to: u64) -> Result<()> {
        let mut log = self.log.lock();
        let keep = log.split_off(&up_to);
        *log = keep;
        Ok(())
    }

    fn truncate_log_tail(&self, from: u64) -> Result<()> {
        self.log.lock().split_off(&from);
        Ok(())
    }

    fn stats(&self) -> StoreStats {
        StoreStats {
            slot_reads: self.slot_reads.load(Ordering::Relaxed),
            bucket_writes: self.bucket_writes.load(Ordering::Relaxed),
            meta_reads: self.meta_reads.load(Ordering::Relaxed),
            meta_writes: self.meta_writes.load(Ordering::Relaxed),
            bytes_read: self.bytes_read.load(Ordering::Relaxed),
            bytes_written: self.bytes_written.load(Ordering::Relaxed),
        }
    }

    fn reset_stats(&self) {
        self.slot_reads.store(0, Ordering::Relaxed);
        self.bucket_writes.store(0, Ordering::Relaxed);
        self.meta_reads.store(0, Ordering::Relaxed);
        self.meta_writes.store(0, Ordering::Relaxed);
        self.bytes_read.store(0, Ordering::Relaxed);
        self.bytes_written.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn slots(tag: u8, n: usize) -> Vec<Bytes> {
        (0..n).map(|i| Bytes::from(vec![tag, i as u8])).collect()
    }

    #[test]
    fn write_then_read_slot() {
        let store = InMemoryStore::new();
        store.write_bucket(5, slots(1, 4)).unwrap();
        assert_eq!(&store.read_slot(5, 2).unwrap()[..], &[1, 2]);
        assert!(store.read_slot(5, 9).is_err());
        assert!(store.read_slot(6, 0).is_err());
    }

    #[test]
    fn versions_increment_and_revert() {
        let store = InMemoryStore::new();
        assert_eq!(store.bucket_version(1).unwrap(), 0);
        let v1 = store.write_bucket(1, slots(1, 2)).unwrap();
        let v2 = store.write_bucket(1, slots(2, 2)).unwrap();
        assert_eq!((v1, v2), (1, 2));
        assert_eq!(&store.read_slot(1, 0).unwrap()[..], &[2, 0]);

        store.revert_bucket(1, v1).unwrap();
        assert_eq!(store.bucket_version(1).unwrap(), v1);
        assert_eq!(&store.read_slot(1, 0).unwrap()[..], &[1, 0]);
    }

    #[test]
    fn revert_to_zero_clears_bucket() {
        let store = InMemoryStore::new();
        store.write_bucket(7, slots(1, 1)).unwrap();
        store.revert_bucket(7, 0).unwrap();
        assert_eq!(store.bucket_version(7).unwrap(), 0);
        assert!(store.read_slot(7, 0).is_err());
    }

    #[test]
    fn revert_to_unknown_version_errors() {
        let store = InMemoryStore::new();
        store.write_bucket(2, slots(1, 1)).unwrap();
        assert!(store.revert_bucket(2, 99).is_err());
        assert!(store.revert_bucket(3, 5).is_err());
    }

    #[test]
    fn version_history_is_bounded() {
        let store = InMemoryStore::new();
        for _ in 0..50 {
            store.write_bucket(4, slots(9, 1)).unwrap();
        }
        // Old versions beyond the retained window cannot be reverted to.
        assert!(store.revert_bucket(4, 1).is_err());
        assert_eq!(store.bucket_version(4).unwrap(), 50);
    }

    #[test]
    fn meta_roundtrip() {
        let store = InMemoryStore::new();
        assert_eq!(store.get_meta("checkpoint").unwrap(), None);
        store
            .put_meta("checkpoint", Bytes::from_static(b"state"))
            .unwrap();
        assert_eq!(
            store.get_meta("checkpoint").unwrap().unwrap(),
            Bytes::from_static(b"state")
        );
    }

    #[test]
    fn log_append_read_truncate() {
        let store = InMemoryStore::new();
        for i in 0..5u8 {
            let seq = store.append_log(Bytes::from(vec![i])).unwrap();
            assert_eq!(seq, i as u64);
        }
        let all = store.read_log_from(0).unwrap();
        assert_eq!(all.len(), 5);
        let tail = store.read_log_from(3).unwrap();
        assert_eq!(tail.len(), 2);
        assert_eq!(tail[0].0, 3);

        store.truncate_log(3).unwrap();
        let after = store.read_log_from(0).unwrap();
        assert_eq!(after.len(), 2);
        assert_eq!(after[0].0, 3);
        // Sequence numbers keep increasing after truncation.
        assert_eq!(store.append_log(Bytes::from_static(b"x")).unwrap(), 5);
    }

    #[test]
    fn stats_track_operations() {
        let store = InMemoryStore::new();
        store.write_bucket(1, slots(1, 3)).unwrap();
        store.read_slot(1, 0).unwrap();
        store.put_meta("k", Bytes::from_static(b"v")).unwrap();
        store.get_meta("k").unwrap();
        store.append_log(Bytes::from_static(b"r")).unwrap();
        let stats = store.stats();
        assert_eq!(stats.slot_reads, 1);
        assert_eq!(stats.bucket_writes, 1);
        assert!(stats.meta_writes >= 2);
        assert!(stats.bytes_written > 0);
        store.reset_stats();
        assert_eq!(store.stats().total_requests(), 0);
    }

    #[test]
    fn never_written_bucket_reads_as_empty_snapshot() {
        let store = InMemoryStore::new();
        let snap = store.read_bucket(42).unwrap();
        assert_eq!(snap.version, 0);
        assert!(snap.slots.is_empty());
    }

    #[test]
    fn snapshot_roundtrip_preserves_everything() {
        let store = InMemoryStore::new();
        store.write_bucket(3, slots(1, 2)).unwrap();
        store.write_bucket(3, slots(2, 2)).unwrap();
        store.write_bucket(9, slots(7, 1)).unwrap();
        store.put_meta("ckpt", Bytes::from_static(b"meta")).unwrap();
        store.append_log(Bytes::from_static(b"r0")).unwrap();
        store.append_log(Bytes::from_static(b"r1")).unwrap();
        store.truncate_log(1).unwrap();

        let restored = InMemoryStore::import_snapshot(&store.export_snapshot()).unwrap();
        assert_eq!(restored.bucket_version(3).unwrap(), 2);
        assert_eq!(&restored.read_slot(3, 0).unwrap()[..], &[2, 0]);
        // Version history survives: reverting still works after restore.
        restored.revert_bucket(3, 1).unwrap();
        assert_eq!(&restored.read_slot(3, 0).unwrap()[..], &[1, 0]);
        assert_eq!(
            restored.get_meta("ckpt").unwrap(),
            Some(Bytes::from_static(b"meta"))
        );
        let log = restored.read_log_from(0).unwrap();
        assert_eq!(log.len(), 1);
        assert_eq!(log[0].0, 1);
        // Sequence numbers continue where the snapshot left off.
        assert_eq!(restored.append_log(Bytes::from_static(b"r2")).unwrap(), 2);
    }

    #[test]
    fn truncated_snapshot_is_rejected() {
        let store = InMemoryStore::new();
        store.write_bucket(1, slots(1, 2)).unwrap();
        let bytes = store.export_snapshot();
        let mut truncated = bytes.clone();
        truncated.truncate(bytes.len() - 3);
        assert!(InMemoryStore::import_snapshot(&truncated).is_err());
        let mut padded = bytes;
        padded.extend_from_slice(&[0; 64]);
        assert!(
            InMemoryStore::import_snapshot(&padded).is_err(),
            "trailing bytes must be rejected"
        );
    }

    #[test]
    fn concurrent_writers_do_not_lose_updates() {
        use std::sync::Arc;
        let store = Arc::new(InMemoryStore::new());
        let mut handles = Vec::new();
        for t in 0..8u64 {
            let store = store.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..100u64 {
                    store
                        .write_bucket(t, vec![Bytes::from(i.to_le_bytes().to_vec())])
                        .unwrap();
                    store.append_log(Bytes::from_static(b"rec")).unwrap();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(store.stats().bucket_writes, 800);
        assert_eq!(store.log_len(), 800);
        for t in 0..8u64 {
            assert_eq!(store.bucket_version(t).unwrap(), 100);
        }
    }
}
