//! Fault-injection wrapper for integrity and recovery testing.
//!
//! Appendix A reduces a malicious storage server to denial of service by
//! MACing every value with a freshness counter.  To test that the proxy
//! really detects substitution, staleness and corruption, [`FaultyStore`]
//! wraps any [`UntrustedStore`] and misbehaves according to a [`FaultPlan`]:
//! it can corrupt read payloads, replay stale bucket versions, or fail
//! operations outright after a configurable number of successes.

use crate::traits::{BucketSnapshot, StoreStats, UntrustedStore};
use bytes::Bytes;
use obladi_common::error::{ObladiError, Result};
use obladi_common::rng::DetRng;
use obladi_common::types::{BucketId, Version};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

/// Operation class a [`CrashPoint`] fires on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CrashOp {
    /// An `append_log` whose framed record starts with this kind byte
    /// (see `WalRecordKind::tag`).
    LogAppendKind(u8),
    /// Any `append_log`.
    AnyLogAppend,
    /// Any `write_bucket`.
    BucketWrite,
    /// Any `read_slot` — the only way to land a crash *inside* an ORAM
    /// read phase (an eviction's path reads, a read batch's fetches),
    /// which issues no log appends or bucket writes of its own.
    SlotRead,
    /// Any fallible storage operation.
    AnyOp,
}

/// A deterministic, sticky crash trigger.
///
/// Crash-schedule tests need to kill a proxy at a *semantic* point in its
/// commit protocol ("after the prepare record is durable but before the
/// epoch-commit record"), which operation counts alone cannot express: how
/// many epochs elapse before the interesting transaction arrives depends on
/// timing.  A `CrashPoint` therefore (optionally) *arms* itself when a log
/// append of a given WAL kind byte is observed, then fires at the `nth`
/// matching operation after arming.  Once fired, every subsequent operation
/// fails too (the storage outage persists until the plan is replaced), so
/// the victim proxy deterministically fate-shares into a crash.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CrashPoint {
    /// Arm only once an `append_log` with this framed kind byte has been
    /// observed (`None` = armed from the start).  The arming append itself
    /// succeeds and does not count towards `nth`.
    pub arm_on_log_kind: Option<u8>,
    /// Which operation class fires the crash once armed.
    pub on: CrashOp,
    /// 1-based count of matching operations (after arming) at which the
    /// crash fires.
    pub nth: u64,
}

impl CrashPoint {
    /// Fires at the `nth` log append of `kind` (armed from the start).
    pub fn on_log_kind(kind: u8, nth: u64) -> Self {
        CrashPoint {
            arm_on_log_kind: None,
            on: CrashOp::LogAppendKind(kind),
            nth,
        }
    }

    /// Fires at the `nth` operation of class `on` after a log append of
    /// `arm_kind` has been observed.
    pub fn after_log_kind(arm_kind: u8, on: CrashOp, nth: u64) -> Self {
        CrashPoint {
            arm_on_log_kind: Some(arm_kind),
            on,
            nth,
        }
    }
}

/// What kind of misbehaviour to inject and how often.
#[derive(Debug, Clone, Copy)]
pub struct FaultPlan {
    /// Probability that a slot read returns corrupted bytes.
    pub corrupt_read_prob: f64,
    /// Probability that a slot read is served from a stale version of the
    /// bucket (if one is retained).
    pub stale_read_prob: f64,
    /// Fail every operation after this many successful ones
    /// (`u64::MAX` = never).
    pub fail_after: u64,
    /// Deterministic sticky crash trigger (see [`CrashPoint`]).
    pub crash_point: Option<CrashPoint>,
}

impl FaultPlan {
    /// A plan that never injects faults.
    pub fn none() -> Self {
        FaultPlan {
            corrupt_read_prob: 0.0,
            stale_read_prob: 0.0,
            fail_after: u64::MAX,
            crash_point: None,
        }
    }

    /// A plan whose only fault is the given deterministic crash point.
    pub fn crash_at(point: CrashPoint) -> Self {
        FaultPlan {
            crash_point: Some(point),
            ..FaultPlan::none()
        }
    }

    /// A plan that corrupts reads with probability `p`.
    pub fn corrupt(p: f64) -> Self {
        FaultPlan {
            corrupt_read_prob: p,
            ..FaultPlan::none()
        }
    }

    /// A plan that serves stale data with probability `p`.
    pub fn stale(p: f64) -> Self {
        FaultPlan {
            stale_read_prob: p,
            ..FaultPlan::none()
        }
    }

    /// A plan that makes every operation fail after `n` successes.
    pub fn fail_after(n: u64) -> Self {
        FaultPlan {
            fail_after: n,
            ..FaultPlan::none()
        }
    }
}

/// An [`UntrustedStore`] wrapper that misbehaves on purpose.
pub struct FaultyStore {
    inner: Arc<dyn UntrustedStore>,
    plan: Mutex<FaultPlan>,
    rng: Mutex<DetRng>,
    ops: AtomicU64,
    injected: AtomicU64,
    stale_cache: Mutex<std::collections::HashMap<BucketId, Vec<Bytes>>>,
    /// Crash-point trigger state (see [`CrashPoint`]).
    armed: AtomicBool,
    trigger_matches: AtomicU64,
    tripped: AtomicBool,
}

/// Internal classification of an operation for crash-point matching.
#[derive(Clone, Copy)]
enum OpClass {
    LogAppend(Option<u8>),
    BucketWrite,
    SlotRead,
    Other,
}

impl FaultyStore {
    /// Wraps `inner` with the given fault plan.
    pub fn new(inner: Arc<dyn UntrustedStore>, plan: FaultPlan, seed: u64) -> Self {
        FaultyStore {
            inner,
            plan: Mutex::new(plan),
            rng: Mutex::new(DetRng::new(seed ^ 0xfa17)),
            ops: AtomicU64::new(0),
            injected: AtomicU64::new(0),
            stale_cache: Mutex::new(std::collections::HashMap::new()),
            armed: AtomicBool::new(false),
            trigger_matches: AtomicU64::new(0),
            tripped: AtomicBool::new(false),
        }
    }

    /// Number of faults injected so far.
    pub fn injected_faults(&self) -> u64 {
        self.injected.load(Ordering::Relaxed)
    }

    /// Whether the plan's [`CrashPoint`] has fired.  Once tripped, every
    /// operation fails until [`FaultyStore::set_plan`] installs a new plan.
    pub fn has_tripped(&self) -> bool {
        self.tripped.load(Ordering::SeqCst)
    }

    /// Replaces the fault plan.
    ///
    /// Tests use this to behave correctly while the database is loaded and
    /// only then start misbehaving — the scenario Appendix A cares about,
    /// where an initially honest server turns malicious.  Resets any
    /// crash-point trigger state, ending a tripped outage.
    pub fn set_plan(&self, plan: FaultPlan) {
        *self.plan.lock() = plan;
        self.armed.store(false, Ordering::SeqCst);
        self.trigger_matches.store(0, Ordering::SeqCst);
        self.tripped.store(false, Ordering::SeqCst);
    }

    /// The currently active fault plan.
    pub fn plan(&self) -> FaultPlan {
        *self.plan.lock()
    }

    fn check_hard_failure(&self) -> Result<()> {
        let fail_after = self.plan.lock().fail_after;
        let n = self.ops.fetch_add(1, Ordering::SeqCst);
        if n >= fail_after {
            self.injected.fetch_add(1, Ordering::Relaxed);
            return Err(ObladiError::Storage(
                "injected hard failure (fail_after reached)".into(),
            ));
        }
        Ok(())
    }

    /// Evaluates the sticky crash trigger against one operation.  The firing
    /// operation fails, as does everything after it, so the deterministic
    /// crash point behaves like the start of a permanent outage.
    fn check_crash_point(&self, op: OpClass) -> Result<()> {
        if self.tripped.load(Ordering::SeqCst) {
            return Err(ObladiError::Storage(
                "injected crash point (outage in effect)".into(),
            ));
        }
        let Some(point) = self.plan.lock().crash_point else {
            return Ok(());
        };
        if let Some(arm_kind) = point.arm_on_log_kind {
            if !self.armed.load(Ordering::SeqCst) {
                if let OpClass::LogAppend(Some(kind)) = op {
                    if kind == arm_kind {
                        self.armed.store(true, Ordering::SeqCst);
                    }
                }
                // The arming append itself succeeds and does not count.
                return Ok(());
            }
        }
        let matches = match point.on {
            CrashOp::LogAppendKind(k) => matches!(op, OpClass::LogAppend(Some(kind)) if kind == k),
            CrashOp::AnyLogAppend => matches!(op, OpClass::LogAppend(_)),
            CrashOp::BucketWrite => matches!(op, OpClass::BucketWrite),
            CrashOp::SlotRead => matches!(op, OpClass::SlotRead),
            CrashOp::AnyOp => true,
        };
        if matches {
            let n = self.trigger_matches.fetch_add(1, Ordering::SeqCst) + 1;
            if n >= point.nth {
                self.tripped.store(true, Ordering::SeqCst);
                self.injected.fetch_add(1, Ordering::Relaxed);
                return Err(ObladiError::Storage(
                    "injected crash point (trigger fired)".into(),
                ));
            }
        }
        Ok(())
    }

    fn maybe_corrupt(&self, data: Bytes) -> Bytes {
        let corrupt = {
            let probability = self.plan.lock().corrupt_read_prob;
            let mut rng = self.rng.lock();
            rng.chance(probability)
        };
        if corrupt && !data.is_empty() {
            self.injected.fetch_add(1, Ordering::Relaxed);
            let mut owned = data.to_vec();
            let mid = owned.len() / 2;
            owned[mid] ^= 0xa5;
            Bytes::from(owned)
        } else {
            data
        }
    }
}

impl UntrustedStore for FaultyStore {
    fn read_slot(&self, bucket: BucketId, slot: u32) -> Result<Bytes> {
        self.check_crash_point(OpClass::SlotRead)?;
        self.check_hard_failure()?;
        let serve_stale = {
            let probability = self.plan.lock().stale_read_prob;
            let mut rng = self.rng.lock();
            rng.chance(probability)
        };
        if serve_stale {
            if let Some(old) = self
                .stale_cache
                .lock()
                .get(&bucket)
                .and_then(|slots| slots.get(slot as usize).cloned())
            {
                self.injected.fetch_add(1, Ordering::Relaxed);
                return Ok(old);
            }
        }
        let data = self.inner.read_slot(bucket, slot)?;
        Ok(self.maybe_corrupt(data))
    }

    fn read_bucket(&self, bucket: BucketId) -> Result<BucketSnapshot> {
        self.check_crash_point(OpClass::Other)?;
        self.check_hard_failure()?;
        self.inner.read_bucket(bucket)
    }

    fn write_bucket(&self, bucket: BucketId, slots: Vec<Bytes>) -> Result<Version> {
        self.check_crash_point(OpClass::BucketWrite)?;
        self.check_hard_failure()?;
        // Remember the previous version so stale reads can replay it later.
        if self.plan.lock().stale_read_prob > 0.0 {
            if let Ok(snapshot) = self.inner.read_bucket(bucket) {
                if !snapshot.slots.is_empty() {
                    self.stale_cache.lock().insert(bucket, snapshot.slots);
                }
            }
        }
        self.inner.write_bucket(bucket, slots)
    }

    fn bucket_version(&self, bucket: BucketId) -> Result<Version> {
        self.inner.bucket_version(bucket)
    }

    fn revert_bucket(&self, bucket: BucketId, version: Version) -> Result<()> {
        self.check_crash_point(OpClass::Other)?;
        self.check_hard_failure()?;
        self.inner.revert_bucket(bucket, version)
    }

    fn put_meta(&self, key: &str, value: Bytes) -> Result<()> {
        self.check_crash_point(OpClass::Other)?;
        self.check_hard_failure()?;
        self.inner.put_meta(key, value)
    }

    fn get_meta(&self, key: &str) -> Result<Option<Bytes>> {
        self.check_crash_point(OpClass::Other)?;
        self.check_hard_failure()?;
        match self.inner.get_meta(key)? {
            Some(v) => Ok(Some(self.maybe_corrupt(v))),
            None => Ok(None),
        }
    }

    fn append_log(&self, record: Bytes) -> Result<u64> {
        self.check_crash_point(OpClass::LogAppend(record.first().copied()))?;
        self.check_hard_failure()?;
        self.inner.append_log(record)
    }

    fn read_log_from(&self, from: u64) -> Result<Vec<(u64, Bytes)>> {
        self.check_crash_point(OpClass::Other)?;
        self.check_hard_failure()?;
        self.inner.read_log_from(from)
    }

    fn truncate_log(&self, up_to: u64) -> Result<()> {
        self.inner.truncate_log(up_to)
    }

    fn truncate_log_tail(&self, from: u64) -> Result<()> {
        self.inner.truncate_log_tail(from)
    }

    fn stats(&self) -> StoreStats {
        self.inner.stats()
    }

    fn reset_stats(&self) {
        self.inner.reset_stats()
    }

    fn daemon_metrics(&self) -> Option<crate::proto::WireMetrics> {
        self.inner.daemon_metrics()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memory::InMemoryStore;

    fn base() -> Arc<InMemoryStore> {
        let store = Arc::new(InMemoryStore::new());
        store
            .write_bucket(0, vec![Bytes::from_static(b"original")])
            .unwrap();
        store
    }

    #[test]
    fn no_faults_is_transparent() {
        let store = FaultyStore::new(base(), FaultPlan::none(), 1);
        for _ in 0..50 {
            assert_eq!(&store.read_slot(0, 0).unwrap()[..], b"original");
        }
        assert_eq!(store.injected_faults(), 0);
    }

    #[test]
    fn corruption_is_injected_at_roughly_the_requested_rate() {
        let store = FaultyStore::new(base(), FaultPlan::corrupt(0.5), 2);
        let mut corrupted = 0;
        for _ in 0..200 {
            if &store.read_slot(0, 0).unwrap()[..] != b"original" {
                corrupted += 1;
            }
        }
        assert!(corrupted > 50 && corrupted < 150, "corrupted {corrupted}");
        assert_eq!(store.injected_faults(), corrupted);
    }

    #[test]
    fn stale_reads_replay_previous_version() {
        let store = FaultyStore::new(base(), FaultPlan::stale(1.0), 3);
        store
            .write_bucket(0, vec![Bytes::from_static(b"updated!")])
            .unwrap();
        // With probability 1.0 every read now replays the stale version.
        assert_eq!(&store.read_slot(0, 0).unwrap()[..], b"original");
        assert!(store.injected_faults() > 0);
    }

    #[test]
    fn plan_can_be_swapped_at_runtime() {
        let store = FaultyStore::new(base(), FaultPlan::none(), 9);
        assert_eq!(&store.read_slot(0, 0).unwrap()[..], b"original");
        store.set_plan(FaultPlan::corrupt(1.0));
        assert_eq!(store.plan().corrupt_read_prob, 1.0);
        assert_ne!(&store.read_slot(0, 0).unwrap()[..], b"original");
        store.set_plan(FaultPlan::none());
        assert_eq!(&store.read_slot(0, 0).unwrap()[..], b"original");
    }

    #[test]
    fn hard_failure_kicks_in_after_n_operations() {
        let store = FaultyStore::new(base(), FaultPlan::fail_after(5), 4);
        let mut failures = 0;
        for _ in 0..10 {
            if store.read_slot(0, 0).is_err() {
                failures += 1;
            }
        }
        assert_eq!(failures, 5);
    }

    #[test]
    fn crash_point_fires_on_the_nth_append_of_a_kind_and_sticks() {
        let store = FaultyStore::new(
            base(),
            FaultPlan::crash_at(CrashPoint::on_log_kind(6, 2)),
            5,
        );
        // Kind 6 appends; the second one fires.
        assert!(store.append_log(Bytes::from_static(&[6, 0, 0])).is_ok());
        assert!(store.append_log(Bytes::from_static(&[4, 0, 0])).is_ok());
        assert!(!store.has_tripped());
        assert!(store.append_log(Bytes::from_static(&[6, 1, 1])).is_err());
        assert!(store.has_tripped());
        // Outage is sticky across every operation class.
        assert!(store.read_slot(0, 0).is_err());
        assert!(store.append_log(Bytes::from_static(&[1])).is_err());
        // Replacing the plan ends the outage.
        store.set_plan(FaultPlan::none());
        assert!(!store.has_tripped());
        assert!(store.read_slot(0, 0).is_ok());
    }

    #[test]
    fn armed_crash_point_ignores_everything_before_the_arming_append() {
        let store = FaultyStore::new(
            base(),
            FaultPlan::crash_at(CrashPoint::after_log_kind(6, CrashOp::BucketWrite, 1)),
            6,
        );
        // Bucket writes before the arming append do not count.
        for _ in 0..5 {
            store
                .write_bucket(0, vec![Bytes::from_static(b"pre")])
                .unwrap();
        }
        // Arming append succeeds...
        assert!(store.append_log(Bytes::from_static(&[6, 9, 9])).is_ok());
        // ...and the next bucket write fires.
        assert!(store
            .write_bucket(0, vec![Bytes::from_static(b"post")])
            .is_err());
        assert!(store.has_tripped());
    }

    #[test]
    fn armed_crash_point_counts_log_appends_after_arming() {
        let store = FaultyStore::new(
            base(),
            FaultPlan::crash_at(CrashPoint::after_log_kind(6, CrashOp::AnyLogAppend, 2)),
            7,
        );
        assert!(store.append_log(Bytes::from_static(&[2, 0])).is_ok());
        assert!(store.append_log(Bytes::from_static(&[6, 0])).is_ok()); // arms
        assert!(store.append_log(Bytes::from_static(&[2, 0])).is_ok()); // 1st after arming
        assert!(store.append_log(Bytes::from_static(&[4, 0])).is_err()); // 2nd fires
    }
}
