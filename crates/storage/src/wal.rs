//! Write-ahead log wrapper over the recovery unit (§5, §8).
//!
//! The proxy writes three kinds of durable records before an epoch is
//! declared committed: the read paths and slot indices accessed by each
//! batch (replayed after a crash so recovery is deterministic), metadata
//! checkpoints (position map / permutation map / valid map deltas plus the
//! padded stash), and epoch-commit markers.  This module provides the
//! sequencing and framing; the *contents* of each record are opaque,
//! already-encrypted bytes supplied by `obladi-core::durability`.
//!
//! # Epoch ordering rule (pipelined epochs)
//!
//! With the pipelined epoch barrier, two epochs write to the log
//! concurrently: epoch `N` (deciding — prepares, checkpoint, commit marker,
//! on the decider thread) and epoch `N+1` (executing — path logs, on the
//! executor thread).  The log enforces that epoch `N+1`'s records are never
//! *acknowledged ahead of `N`'s decision*: once the commit frontier is
//! known, a commit-path record (checkpoint, commit marker, prepare) is
//! accepted only for the epoch immediately above the frontier, and a path
//! record at most **two** epochs above it (the bounded pipeline depth).  An
//! append that would run ahead of the frontier is refused — never durably
//! acknowledged — so recovery can rely on finding at most two in-doubt
//! epochs, in order, above a contiguous durable prefix.

use crate::traits::UntrustedStore;
use bytes::{Bytes, BytesMut};
use obladi_common::error::{ObladiError, Result};
use parking_lot::Mutex;
use std::sync::Arc;

/// Record types stored in the write-ahead log.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WalRecordKind {
    /// Physical read paths + slot indices of one read batch (logged before
    /// the batch executes, replayed during recovery).
    PathLog,
    /// A delta checkpoint of proxy metadata for one epoch.
    CheckpointDelta,
    /// A full checkpoint of proxy metadata.
    CheckpointFull,
    /// Marker declaring an epoch durable (written after its checkpoint).
    EpochCommit,
    /// An early-reshuffle event (needed to recompute bucket versions).
    EarlyReshuffle,
    /// A 2PC prepare record for a cross-shard transaction: logged *before*
    /// the shard's commit vote counts at the epoch coordinator, so recovery
    /// can finish (or presume aborted) a voted transaction whose epoch never
    /// became durable.
    Prepare,
    /// The epoch's commit decision — committed transaction ids plus the
    /// merged committed write set — logged *before* write-back and the
    /// checkpoint so write transactions can be acknowledged at decision
    /// durability rather than at the checkpoint tail.  Recovery replays a
    /// decided epoch's writes from this record alone.
    Decision,
}

impl WalRecordKind {
    fn to_byte(self) -> u8 {
        match self {
            WalRecordKind::PathLog => 1,
            WalRecordKind::CheckpointDelta => 2,
            WalRecordKind::CheckpointFull => 3,
            WalRecordKind::EpochCommit => 4,
            WalRecordKind::EarlyReshuffle => 5,
            WalRecordKind::Prepare => 6,
            WalRecordKind::Decision => 7,
        }
    }

    /// The on-storage tag byte of this kind (the first byte of every framed
    /// record; fault-injection harnesses key crash triggers on it).
    pub fn tag(self) -> u8 {
        self.to_byte()
    }

    fn from_byte(b: u8) -> Result<Self> {
        Ok(match b {
            1 => WalRecordKind::PathLog,
            2 => WalRecordKind::CheckpointDelta,
            3 => WalRecordKind::CheckpointFull,
            4 => WalRecordKind::EpochCommit,
            5 => WalRecordKind::EarlyReshuffle,
            6 => WalRecordKind::Prepare,
            7 => WalRecordKind::Decision,
            other => {
                return Err(ObladiError::Codec(format!(
                    "unknown WAL record kind {other}"
                )))
            }
        })
    }
}

/// A decoded WAL record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WalRecord {
    /// Sequence number assigned by the log.
    pub seq: u64,
    /// Record type.
    pub kind: WalRecordKind,
    /// Epoch the record belongs to.
    pub epoch: u64,
    /// Opaque payload (usually an encrypted envelope).
    pub payload: Bytes,
}

/// What [`WriteAheadLog::check_order`] decided about one append.
enum Admission {
    /// The record is in order and may be appended.
    Append,
    /// A stale path artifact (path log / early reshuffle) for an epoch at
    /// or below the durable frontier: semantically a no-op, silently
    /// dropped rather than refused.
    DropStale,
}

/// Sequenced, typed write-ahead log on top of an [`UntrustedStore`].
pub struct WriteAheadLog {
    store: Arc<dyn UntrustedStore>,
    /// Highest epoch whose `EpochCommit` marker went through this instance
    /// (`None` until [`WriteAheadLog::set_commit_frontier`] or the first
    /// commit marker establishes it; ordering is unenforced while unknown).
    commit_frontier: Mutex<Option<u64>>,
}

impl WriteAheadLog {
    /// Creates a WAL over `store`.
    pub fn new(store: Arc<dyn UntrustedStore>) -> Self {
        WriteAheadLog {
            store,
            commit_frontier: Mutex::new(None),
        }
    }

    /// Seeds the epoch-ordering frontier (normally from the trusted
    /// counter's durable epoch), enabling the ordering rule from the first
    /// append.
    pub fn set_commit_frontier(&self, epoch: u64) {
        *self.commit_frontier.lock() = Some(epoch);
    }

    /// The current commit frontier, if known.
    pub fn commit_frontier(&self) -> Option<u64> {
        *self.commit_frontier.lock()
    }

    /// Checks the epoch-ordering rule for one append.  The frontier itself
    /// only advances after the commit marker's append *succeeds* (a refused
    /// or failed append must leave the retry path open), in
    /// [`WriteAheadLog::append`].
    fn check_order(&self, kind: WalRecordKind, epoch: u64) -> Result<Admission> {
        let frontier = self.commit_frontier.lock();
        let Some(durable) = *frontier else {
            // Unknown frontier (raw WAL uses, adversarial test harnesses):
            // it is learned from the first successful commit marker, and
            // nothing is enforced until then.
            return Ok(Admission::Append);
        };
        let refuse = |why: &str| {
            Err(ObladiError::Storage(format!(
                "WAL ordering violation: {kind:?} for epoch {epoch} {why} (durable frontier \
                 {durable})"
            )))
        };
        match kind {
            // The commit path is strictly sequential: epoch N+1's decision
            // artifacts may not be acknowledged ahead of N's decision.
            WalRecordKind::EpochCommit => {
                if epoch != durable + 1 {
                    return refuse("is not the epoch immediately above the frontier");
                }
            }
            WalRecordKind::CheckpointDelta
            | WalRecordKind::CheckpointFull
            | WalRecordKind::Prepare
            | WalRecordKind::Decision => {
                if epoch != durable + 1 {
                    return refuse("is not the epoch immediately above the frontier");
                }
            }
            // Path logs may run one epoch ahead of the deciding epoch (the
            // executing epoch of the bounded pipeline), never further.
            WalRecordKind::PathLog | WalRecordKind::EarlyReshuffle => {
                if epoch <= durable {
                    // A path artifact for an epoch at or below the frontier
                    // is a straggler: a read-batch thread from a previous
                    // proxy life racing a recovery that already committed
                    // its epoch (Decision-first replay advances the
                    // frontier past epochs whose decision record was
                    // durable at crash time).  The epoch is durably
                    // committed and recovery never replays a committed
                    // epoch's paths, so the record is dead weight either
                    // way — drop it instead of erroring, which would crash
                    // the healthy new life sharing this store.
                    return Ok(Admission::DropStale);
                }
                if epoch > durable + 2 {
                    return refuse("runs more than the pipeline depth ahead of the frontier");
                }
            }
        }
        Ok(Admission::Append)
    }

    /// Sequence number reported for appends that were silently dropped as
    /// stale (a path artifact for an epoch at or below the durable
    /// frontier); no record with this sequence number ever exists.
    pub const DROPPED_SEQ: u64 = u64::MAX;

    /// Appends a record, returning its sequence number.  Refuses appends
    /// that violate the epoch ordering rule (see the module docs) — the
    /// record is never acknowledged, so the caller must treat the epoch as
    /// failed rather than assume durability.  One exception: a path log or
    /// early-reshuffle record for an epoch *at or below* the durable
    /// frontier is a harmless straggler (the epoch is durably committed
    /// and its paths are never replayed), so it is dropped without error
    /// and [`WriteAheadLog::DROPPED_SEQ`] is returned.
    pub fn append(&self, kind: WalRecordKind, epoch: u64, payload: &[u8]) -> Result<u64> {
        match self.check_order(kind, epoch)? {
            Admission::Append => {}
            Admission::DropStale => return Ok(Self::DROPPED_SEQ),
        }
        let mut framed = BytesMut::with_capacity(1 + 8 + payload.len());
        framed.extend_from_slice(&[kind.to_byte()]);
        framed.extend_from_slice(&epoch.to_le_bytes());
        framed.extend_from_slice(payload);
        let seq = self.store.append_log(framed.freeze())?;
        if kind == WalRecordKind::EpochCommit {
            let mut frontier = self.commit_frontier.lock();
            match *frontier {
                Some(durable) if epoch <= durable => {}
                _ => *frontier = Some(epoch),
            }
        }
        Ok(seq)
    }

    fn decode(seq: u64, data: Bytes) -> Result<WalRecord> {
        if data.len() < 9 {
            return Err(ObladiError::Codec(format!(
                "WAL record {seq} too short ({} bytes)",
                data.len()
            )));
        }
        let kind = WalRecordKind::from_byte(data[0])?;
        let mut epoch_bytes = [0u8; 8];
        epoch_bytes.copy_from_slice(&data[1..9]);
        Ok(WalRecord {
            seq,
            kind,
            epoch: u64::from_le_bytes(epoch_bytes),
            payload: data.slice(9..),
        })
    }

    /// Reads and decodes all records with `seq >= from`.
    pub fn read_from(&self, from: u64) -> Result<Vec<WalRecord>> {
        let raw = self.store.read_log_from(from)?;
        let mut records = Vec::with_capacity(raw.len());
        for (seq, data) in raw {
            records.push(Self::decode(seq, data)?);
        }
        Ok(records)
    }

    /// Reads all records with `seq >= from`, tolerating a torn *tail*: a
    /// crash can leave the final append truncated or garbled, and recovery
    /// must treat that record as never written rather than refuse to start.
    /// A malformed record in the *middle* of the log (valid records follow
    /// it) cannot be a torn append and is still an error.
    ///
    /// Returns the decoded records and the sequence number of the dropped
    /// tail record, if one was dropped.  The caller is expected to erase
    /// the fragment with [`WriteAheadLog::truncate_tail`] before appending
    /// anything: once fresh records sit behind it, the fragment reads as
    /// unexplained mid-log corruption and poisons every later recovery.
    pub fn read_from_tolerant(&self, from: u64) -> Result<(Vec<WalRecord>, Option<u64>)> {
        let raw = self.store.read_log_from(from)?;
        let last_seq = raw.last().map(|(seq, _)| *seq);
        let mut records = Vec::with_capacity(raw.len());
        let mut dropped = None;
        for (seq, data) in raw {
            match Self::decode(seq, data) {
                Ok(record) => records.push(record),
                Err(_) if Some(seq) == last_seq => dropped = Some(seq),
                Err(err) => return Err(err),
            }
        }
        Ok((records, dropped))
    }

    /// Physically erases records with sequence numbers at or above `from`
    /// (torn-tail retirement; see [`WriteAheadLog::read_from_tolerant`]).
    pub fn truncate_tail(&self, from: u64) -> Result<()> {
        self.store.truncate_log_tail(from)
    }

    /// Reads all records belonging to `epoch`.
    pub fn read_epoch(&self, epoch: u64) -> Result<Vec<WalRecord>> {
        Ok(self
            .read_from(0)?
            .into_iter()
            .filter(|r| r.epoch == epoch)
            .collect())
    }

    /// Returns the most recent record of the given kind, if any.
    pub fn latest_of_kind(&self, kind: WalRecordKind) -> Result<Option<WalRecord>> {
        Ok(self.read_from(0)?.into_iter().rfind(|r| r.kind == kind))
    }

    /// Drops records with sequence numbers below `up_to`.
    pub fn truncate(&self, up_to: u64) -> Result<()> {
        self.store.truncate_log(up_to)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memory::InMemoryStore;

    fn wal() -> WriteAheadLog {
        WriteAheadLog::new(Arc::new(InMemoryStore::new()))
    }

    #[test]
    fn append_and_read_roundtrip() {
        let wal = wal();
        let s0 = wal.append(WalRecordKind::PathLog, 3, b"paths").unwrap();
        let s1 = wal
            .append(WalRecordKind::CheckpointDelta, 3, b"delta")
            .unwrap();
        assert!(s1 > s0);

        let records = wal.read_from(0).unwrap();
        assert_eq!(records.len(), 2);
        assert_eq!(records[0].kind, WalRecordKind::PathLog);
        assert_eq!(records[0].epoch, 3);
        assert_eq!(&records[0].payload[..], b"paths");
        assert_eq!(records[1].kind, WalRecordKind::CheckpointDelta);
    }

    #[test]
    fn read_epoch_filters() {
        let wal = wal();
        wal.append(WalRecordKind::PathLog, 1, b"a").unwrap();
        wal.append(WalRecordKind::PathLog, 2, b"b").unwrap();
        wal.append(WalRecordKind::EpochCommit, 2, b"").unwrap();
        let epoch2 = wal.read_epoch(2).unwrap();
        assert_eq!(epoch2.len(), 2);
        assert!(epoch2.iter().all(|r| r.epoch == 2));
    }

    #[test]
    fn latest_of_kind_returns_newest() {
        let wal = wal();
        wal.append(WalRecordKind::CheckpointFull, 1, b"old")
            .unwrap();
        wal.append(WalRecordKind::PathLog, 2, b"x").unwrap();
        wal.append(WalRecordKind::CheckpointFull, 5, b"new")
            .unwrap();
        let latest = wal
            .latest_of_kind(WalRecordKind::CheckpointFull)
            .unwrap()
            .unwrap();
        assert_eq!(latest.epoch, 5);
        assert_eq!(&latest.payload[..], b"new");
        assert!(wal
            .latest_of_kind(WalRecordKind::EarlyReshuffle)
            .unwrap()
            .is_none());
    }

    #[test]
    fn truncation_drops_old_records() {
        let wal = wal();
        for epoch in 0..5 {
            wal.append(WalRecordKind::EpochCommit, epoch, b"").unwrap();
        }
        wal.truncate(3).unwrap();
        let remaining = wal.read_from(0).unwrap();
        assert_eq!(remaining.len(), 2);
        assert_eq!(remaining[0].epoch, 3);
    }

    #[test]
    fn all_record_kinds_roundtrip() {
        // The commit marker goes last: once it lands the ordering rule is
        // live and arbitrary epochs would be refused.
        let kinds = [
            WalRecordKind::PathLog,
            WalRecordKind::CheckpointDelta,
            WalRecordKind::CheckpointFull,
            WalRecordKind::EarlyReshuffle,
            WalRecordKind::Prepare,
            WalRecordKind::Decision,
            WalRecordKind::EpochCommit,
        ];
        let wal = wal();
        for (i, kind) in kinds.iter().enumerate() {
            wal.append(*kind, i as u64, &[i as u8]).unwrap();
        }
        let records = wal.read_from(0).unwrap();
        for (record, kind) in records.iter().zip(kinds.iter()) {
            assert_eq!(record.kind, *kind);
        }
    }

    #[test]
    fn prepare_records_roundtrip_with_payload() {
        let wal = wal();
        wal.append(WalRecordKind::Prepare, 9, b"txn+writeset")
            .unwrap();
        let records = wal.read_from(0).unwrap();
        assert_eq!(records.len(), 1);
        assert_eq!(records[0].kind, WalRecordKind::Prepare);
        assert_eq!(records[0].epoch, 9);
        assert_eq!(&records[0].payload[..], b"txn+writeset");
        assert_eq!(WalRecordKind::Prepare.tag(), 6);
    }

    #[test]
    fn tolerant_read_drops_a_truncated_tail_record() {
        let store: Arc<dyn UntrustedStore> = Arc::new(InMemoryStore::new());
        let wal = WriteAheadLog::new(store.clone());
        wal.append(WalRecordKind::Prepare, 3, b"good").unwrap();
        wal.append(WalRecordKind::EpochCommit, 3, b"").unwrap();
        // A torn append: fewer bytes than the fixed frame header.
        let torn_seq = store.append_log(Bytes::from_static(&[6, 1, 2])).unwrap();

        let (records, dropped) = wal.read_from_tolerant(0).unwrap();
        assert_eq!(
            dropped,
            Some(torn_seq),
            "the torn tail must be dropped, not fatal"
        );
        assert_eq!(records.len(), 2);
        assert_eq!(records[0].kind, WalRecordKind::Prepare);
        assert_eq!(&records[0].payload[..], b"good");
        assert_eq!(records[1].kind, WalRecordKind::EpochCommit);
        // The strict reader still refuses the same log.
        assert!(wal.read_from(0).is_err());

        // Retiring the fragment makes the log clean again — even for the
        // strict reader, and even after fresh appends land behind it.
        wal.truncate_tail(torn_seq).unwrap();
        wal.append(WalRecordKind::PathLog, 4, b"fresh").unwrap();
        let records = wal.read_from(0).unwrap();
        assert_eq!(records.len(), 3);
        assert_eq!(records[2].kind, WalRecordKind::PathLog);
    }

    #[test]
    fn tolerant_read_drops_an_unknown_kind_tail_record() {
        let store: Arc<dyn UntrustedStore> = Arc::new(InMemoryStore::new());
        let wal = WriteAheadLog::new(store.clone());
        wal.append(WalRecordKind::PathLog, 1, b"paths").unwrap();
        // Garbage with a valid length but an unassigned kind byte.
        store.append_log(Bytes::from(vec![0xEEu8; 16])).unwrap();
        let (records, dropped) = wal.read_from_tolerant(0).unwrap();
        assert!(dropped.is_some());
        assert_eq!(records.len(), 1);
        assert_eq!(records[0].kind, WalRecordKind::PathLog);
    }

    #[test]
    fn ordering_refuses_commit_path_records_ahead_of_the_frontier() {
        let wal = wal();
        wal.set_commit_frontier(3);
        // Epoch 5's decision artifacts may not be acknowledged ahead of
        // epoch 4's decision.
        assert!(wal.append(WalRecordKind::Prepare, 5, b"early").is_err());
        assert!(wal.append(WalRecordKind::Decision, 5, b"early").is_err());
        assert!(wal
            .append(WalRecordKind::CheckpointDelta, 5, b"early")
            .is_err());
        assert!(wal.append(WalRecordKind::EpochCommit, 5, b"").is_err());
        // Stale commit-path records are refused too.
        assert!(wal.append(WalRecordKind::EpochCommit, 3, b"").is_err());
        // The deciding epoch (frontier + 1) is exactly what is allowed.
        assert!(wal.append(WalRecordKind::Prepare, 4, b"vote").is_ok());
        assert!(wal.append(WalRecordKind::Decision, 4, b"decided").is_ok());
        assert!(wal
            .append(WalRecordKind::CheckpointDelta, 4, b"ckpt")
            .is_ok());
        assert!(wal.append(WalRecordKind::EpochCommit, 4, b"").is_ok());
        assert_eq!(wal.commit_frontier(), Some(4));
        // ...after which epoch 5 opens up.
        assert!(wal.append(WalRecordKind::Prepare, 5, b"vote").is_ok());
    }

    #[test]
    fn ordering_bounds_path_logs_to_the_pipeline_depth() {
        let wal = wal();
        wal.set_commit_frontier(10);
        // Executing epoch (frontier + 2) may log paths while the deciding
        // epoch (frontier + 1) is still in flight...
        assert!(wal.append(WalRecordKind::PathLog, 11, b"deciding").is_ok());
        assert!(wal.append(WalRecordKind::PathLog, 12, b"executing").is_ok());
        // ...but nothing may run further ahead; stale path artifacts (at or
        // below the frontier) are dropped rather than refused.
        assert!(wal.append(WalRecordKind::PathLog, 13, b"too far").is_err());
        assert_eq!(
            wal.append(WalRecordKind::PathLog, 10, b"stale").unwrap(),
            WriteAheadLog::DROPPED_SEQ
        );
        assert!(wal
            .append(WalRecordKind::EarlyReshuffle, 13, b"too far")
            .is_err());
    }

    #[test]
    fn stale_path_log_after_commit_marker_is_dropped_not_refused() {
        // A straggler read batch from a pre-crash proxy life can append a
        // path log for an epoch the new life already recovered as durably
        // committed.  The append must succeed without landing in the log —
        // erroring would crash the healthy new life.
        let wal = wal();
        wal.append(WalRecordKind::PathLog, 1, b"live").unwrap();
        wal.append(WalRecordKind::EpochCommit, 1, b"").unwrap();
        let before = wal.read_from(0).unwrap().len();
        assert_eq!(
            wal.append(WalRecordKind::PathLog, 1, b"straggler").unwrap(),
            WriteAheadLog::DROPPED_SEQ
        );
        assert_eq!(
            wal.append(WalRecordKind::EarlyReshuffle, 1, b"straggler")
                .unwrap(),
            WriteAheadLog::DROPPED_SEQ
        );
        let records = wal.read_from(0).unwrap();
        assert_eq!(records.len(), before, "dropped records must not be written");
        assert!(records
            .iter()
            .all(|r| r.payload.as_ref() != b"straggler".as_slice()));
    }

    #[test]
    fn ordering_frontier_only_advances_on_a_successful_append() {
        // A commit append the store refuses must not advance the frontier:
        // the epoch is retried after recovery and the retry must still pass
        // the ordering check.
        use crate::faulty::{FaultPlan, FaultyStore};
        let store = Arc::new(FaultyStore::new(
            Arc::new(InMemoryStore::new()),
            FaultPlan::none(),
            1,
        ));
        let wal = WriteAheadLog::new(store.clone());
        wal.set_commit_frontier(0);
        store.set_plan(FaultPlan::fail_after(0));
        assert!(wal.append(WalRecordKind::EpochCommit, 1, b"").is_err());
        assert_eq!(
            wal.commit_frontier(),
            Some(0),
            "failed append must not advance"
        );
        store.set_plan(FaultPlan::none());
        assert!(wal.append(WalRecordKind::EpochCommit, 1, b"").is_ok());
        assert_eq!(wal.commit_frontier(), Some(1));
    }

    #[test]
    fn tolerant_read_still_rejects_mid_log_corruption() {
        // A malformed record *followed by* valid appends cannot be a torn
        // tail; silently skipping it could hide real log damage.
        let store: Arc<dyn UntrustedStore> = Arc::new(InMemoryStore::new());
        let wal = WriteAheadLog::new(store.clone());
        wal.append(WalRecordKind::Prepare, 2, b"good").unwrap();
        store.append_log(Bytes::from_static(&[0xEE, 0])).unwrap();
        wal.append(WalRecordKind::EpochCommit, 2, b"").unwrap();
        assert!(wal.read_from_tolerant(0).is_err());
    }
}
