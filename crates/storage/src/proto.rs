//! Wire schema of the untrusted-storage RPC: every [`UntrustedStore`]
//! operation as a self-describing message.
//!
//! The paper's proxy talks to cloud storage over a network; this module
//! defines *what* crosses that wire.  `obladi-transport` frames these
//! messages onto sockets, and the `obladi-stored` daemon's durable op-log
//! persists the mutating subset verbatim — one encoding, three uses.
//!
//! The encoding is deliberately hand-rolled (the workspace's serde is a
//! vendored no-op shim) and versioned at the *connection* level by the
//! transport handshake, not per message: a connection only ever carries one
//! protocol version.  All integers are little-endian; byte strings and
//! lists are length-prefixed.  Decoding is strict — trailing garbage,
//! truncated fields and unknown tags are `Codec` errors, never silently
//! tolerated, because a desynchronised stream to an *untrusted* server must
//! fail loudly rather than deliver attacker-shaped frames.

use crate::traits::{BucketSnapshot, StoreStats};
use bytes::Bytes;
use obladi_common::error::{ObladiError, Result};
use obladi_common::types::{BucketId, Version};

/// Upper bound on any single length field (64 MiB): a malicious or corrupt
/// peer must not be able to make the decoder allocate unbounded memory.
pub const MAX_WIRE_LEN: usize = 64 << 20;

/// One request against the untrusted store, mirroring
/// [`UntrustedStore`](crate::UntrustedStore) method for method, plus the
/// connection-management operations the daemon needs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StoreRequest {
    /// `read_slot(bucket, slot)`.
    ReadSlot {
        /// Bucket to read.
        bucket: BucketId,
        /// Slot index within the bucket.
        slot: u32,
    },
    /// `read_bucket(bucket)`.
    ReadBucket {
        /// Bucket to read.
        bucket: BucketId,
    },
    /// `write_bucket(bucket, slots)`.
    WriteBucket {
        /// Bucket to replace.
        bucket: BucketId,
        /// New sealed slot payloads.
        slots: Vec<Bytes>,
    },
    /// `bucket_version(bucket)`.
    BucketVersion {
        /// Bucket to query.
        bucket: BucketId,
    },
    /// `revert_bucket(bucket, version)` (shadow paging).
    RevertBucket {
        /// Bucket to revert.
        bucket: BucketId,
        /// Version to revert to.
        version: Version,
    },
    /// `put_meta(key, value)`.
    PutMeta {
        /// Metadata key.
        key: String,
        /// Metadata value.
        value: Bytes,
    },
    /// `get_meta(key)`.
    GetMeta {
        /// Metadata key.
        key: String,
    },
    /// `append_log(record)` (WAL append).
    AppendLog {
        /// Record payload.
        record: Bytes,
    },
    /// `read_log_from(from)` (WAL read).
    ReadLogFrom {
        /// First sequence number to return.
        from: u64,
    },
    /// `truncate_log(up_to)` (WAL checkpoint truncation).
    TruncateLog {
        /// Records below this sequence number are dropped.
        up_to: u64,
    },
    /// `truncate_log_tail(from)` (torn-tail retirement).
    TruncateLogTail {
        /// Records at or above this sequence number are dropped.
        from: u64,
    },
    /// `stats()`.
    Stats,
    /// `reset_stats()`.
    ResetStats,
    /// Liveness / readiness probe; the daemon answers with its protocol
    /// version.
    Ping,
    /// Graceful daemon shutdown: the server acknowledges, flushes its
    /// durable state and exits.
    Shutdown,
    /// Scrape of the daemon's own telemetry (`daemon.*` metrics), so
    /// remote-profile `--metrics-out` dumps can merge what each storage
    /// process observed instead of silently omitting it.
    MetricsSnapshot,
}

impl StoreRequest {
    /// The request's opcode tag (also carried in the transport frame
    /// header so the two can be cross-checked against desync).
    pub fn opcode(&self) -> u8 {
        match self {
            StoreRequest::ReadSlot { .. } => 0x01,
            StoreRequest::ReadBucket { .. } => 0x02,
            StoreRequest::WriteBucket { .. } => 0x03,
            StoreRequest::BucketVersion { .. } => 0x04,
            StoreRequest::RevertBucket { .. } => 0x05,
            StoreRequest::PutMeta { .. } => 0x06,
            StoreRequest::GetMeta { .. } => 0x07,
            StoreRequest::AppendLog { .. } => 0x08,
            StoreRequest::ReadLogFrom { .. } => 0x09,
            StoreRequest::TruncateLog { .. } => 0x0A,
            StoreRequest::TruncateLogTail { .. } => 0x0B,
            StoreRequest::Stats => 0x0C,
            StoreRequest::ResetStats => 0x0D,
            StoreRequest::Ping => 0x0E,
            StoreRequest::Shutdown => 0x0F,
            StoreRequest::MetricsSnapshot => 0x10,
        }
    }

    /// Whether the operation changes state the daemon must make durable
    /// before acknowledging (the op-log persistence criterion).
    pub fn is_mutation(&self) -> bool {
        matches!(
            self,
            StoreRequest::WriteBucket { .. }
                | StoreRequest::RevertBucket { .. }
                | StoreRequest::PutMeta { .. }
                | StoreRequest::AppendLog { .. }
                | StoreRequest::TruncateLog { .. }
                | StoreRequest::TruncateLogTail { .. }
        )
    }

    /// Encodes the request (opcode byte followed by its fields).
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::with_capacity(16);
        buf.push(self.opcode());
        match self {
            StoreRequest::ReadSlot { bucket, slot } => {
                put_u64(&mut buf, *bucket);
                put_u32(&mut buf, *slot);
            }
            StoreRequest::ReadBucket { bucket } => put_u64(&mut buf, *bucket),
            StoreRequest::WriteBucket { bucket, slots } => {
                put_u64(&mut buf, *bucket);
                put_u32(&mut buf, slots.len() as u32);
                for slot in slots {
                    put_bytes(&mut buf, slot);
                }
            }
            StoreRequest::BucketVersion { bucket } => put_u64(&mut buf, *bucket),
            StoreRequest::RevertBucket { bucket, version } => {
                put_u64(&mut buf, *bucket);
                put_u64(&mut buf, *version);
            }
            StoreRequest::PutMeta { key, value } => {
                put_bytes(&mut buf, key.as_bytes());
                put_bytes(&mut buf, value);
            }
            StoreRequest::GetMeta { key } => put_bytes(&mut buf, key.as_bytes()),
            StoreRequest::AppendLog { record } => put_bytes(&mut buf, record),
            StoreRequest::ReadLogFrom { from } => put_u64(&mut buf, *from),
            StoreRequest::TruncateLog { up_to } => put_u64(&mut buf, *up_to),
            StoreRequest::TruncateLogTail { from } => put_u64(&mut buf, *from),
            StoreRequest::Stats
            | StoreRequest::ResetStats
            | StoreRequest::Ping
            | StoreRequest::Shutdown
            | StoreRequest::MetricsSnapshot => {}
        }
        buf
    }

    /// Decodes a request; the whole buffer must be consumed.
    pub fn decode(data: &[u8]) -> Result<StoreRequest> {
        let mut reader = Reader::new(data);
        let opcode = reader.u8()?;
        let request = match opcode {
            0x01 => StoreRequest::ReadSlot {
                bucket: reader.u64()?,
                slot: reader.u32()?,
            },
            0x02 => StoreRequest::ReadBucket {
                bucket: reader.u64()?,
            },
            0x03 => {
                let bucket = reader.u64()?;
                let count = reader.list_len(4)?;
                let mut slots = Vec::with_capacity(count);
                for _ in 0..count {
                    slots.push(reader.bytes()?);
                }
                StoreRequest::WriteBucket { bucket, slots }
            }
            0x04 => StoreRequest::BucketVersion {
                bucket: reader.u64()?,
            },
            0x05 => StoreRequest::RevertBucket {
                bucket: reader.u64()?,
                version: reader.u64()?,
            },
            0x06 => StoreRequest::PutMeta {
                key: reader.string()?,
                value: reader.bytes()?,
            },
            0x07 => StoreRequest::GetMeta {
                key: reader.string()?,
            },
            0x08 => StoreRequest::AppendLog {
                record: reader.bytes()?,
            },
            0x09 => StoreRequest::ReadLogFrom {
                from: reader.u64()?,
            },
            0x0A => StoreRequest::TruncateLog {
                up_to: reader.u64()?,
            },
            0x0B => StoreRequest::TruncateLogTail {
                from: reader.u64()?,
            },
            0x0C => StoreRequest::Stats,
            0x0D => StoreRequest::ResetStats,
            0x0E => StoreRequest::Ping,
            0x0F => StoreRequest::Shutdown,
            0x10 => StoreRequest::MetricsSnapshot,
            other => {
                return Err(ObladiError::Codec(format!(
                    "unknown store request opcode 0x{other:02X}"
                )))
            }
        };
        reader.finish()?;
        Ok(request)
    }
}

/// One response from the untrusted store.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StoreResponse {
    /// Slot payload (`read_slot`).
    Slot(Bytes),
    /// Bucket snapshot (`read_bucket`).
    Bucket(BucketSnapshot),
    /// A version number (`write_bucket`, `bucket_version`).
    Version(Version),
    /// Success with no payload (`revert_bucket`, `put_meta`, truncations,
    /// `reset_stats`, `shutdown`).
    Unit,
    /// Metadata value, if present (`get_meta`).
    MetaValue(Option<Bytes>),
    /// Assigned log sequence number (`append_log`).
    LogSeq(u64),
    /// Log records (`read_log_from`).  `truncated` means the server hit
    /// its per-response byte budget and the client must re-issue the read
    /// from the last returned sequence number + 1 — a WAL that outgrew a
    /// single frame must page, not collapse the connection against the
    /// decoder's frame-size bound.
    LogRecords {
        /// The records, in sequence order.
        records: Vec<(u64, Bytes)>,
        /// Whether more records exist beyond this page.
        truncated: bool,
    },
    /// Operation counters (`stats`).
    Stats(StoreStats),
    /// Liveness reply carrying the daemon's protocol version (`ping`).
    Pong(u16),
    /// The daemon's own telemetry (`metrics_snapshot`).
    Metrics(WireMetrics),
    /// The operation failed on the server; carries the re-hydratable error.
    Err(WireError),
}

/// A flattened histogram for the wire: the summary fields of the obs
/// crate's histogram snapshot, without the bucket layout (which is an
/// implementation detail of the recording process).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WireHistogram {
    /// Number of recorded values.
    pub count: u64,
    /// Sum of recorded values.
    pub sum: u64,
    /// Largest recorded value.
    pub max: u64,
}

/// A daemon's telemetry, flattened for the wire.  Name/value lists rather
/// than a fixed struct so the daemon can grow metrics without a protocol
/// bump; the proxy namespaces them per shard on arrival.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct WireMetrics {
    /// `(name, total)` counter pairs.
    pub counters: Vec<(String, u64)>,
    /// `(name, level)` gauge pairs.
    pub gauges: Vec<(String, i64)>,
    /// `(name, summary)` histogram pairs.
    pub histograms: Vec<(String, WireHistogram)>,
}

/// A storage-server error flattened for the wire and re-hydrated client
/// side into the matching [`ObladiError`] variant.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireError {
    /// Which [`ObladiError`] variant this maps to.
    pub kind: WireErrorKind,
    /// Human-readable context.
    pub message: String,
}

/// Error variants that can legitimately originate on the storage server.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireErrorKind {
    /// Maps to [`ObladiError::Storage`].
    Storage,
    /// Maps to [`ObladiError::Codec`].
    Codec,
    /// Maps to [`ObladiError::Internal`].
    Internal,
}

impl WireError {
    /// Flattens an error for the wire.  Everything that is not obviously a
    /// codec or internal fault is reported as a storage fault — from the
    /// proxy's point of view the daemon *is* the storage.
    pub fn from_error(err: &ObladiError) -> WireError {
        let (kind, message) = match err {
            ObladiError::Storage(msg) => (WireErrorKind::Storage, msg.clone()),
            ObladiError::Codec(msg) => (WireErrorKind::Codec, msg.clone()),
            ObladiError::Internal(msg) => (WireErrorKind::Internal, msg.clone()),
            other => (WireErrorKind::Storage, other.to_string()),
        };
        WireError { kind, message }
    }

    /// Re-hydrates the error client side.
    pub fn into_error(self) -> ObladiError {
        match self.kind {
            WireErrorKind::Storage => ObladiError::Storage(self.message),
            WireErrorKind::Codec => ObladiError::Codec(self.message),
            WireErrorKind::Internal => ObladiError::Internal(self.message),
        }
    }

    fn kind_tag(&self) -> u8 {
        match self.kind {
            WireErrorKind::Storage => 0,
            WireErrorKind::Codec => 1,
            WireErrorKind::Internal => 2,
        }
    }

    fn kind_from_tag(tag: u8) -> Result<WireErrorKind> {
        match tag {
            0 => Ok(WireErrorKind::Storage),
            1 => Ok(WireErrorKind::Codec),
            2 => Ok(WireErrorKind::Internal),
            other => Err(ObladiError::Codec(format!(
                "unknown wire error kind {other}"
            ))),
        }
    }
}

impl StoreResponse {
    /// The response's tag byte.
    pub fn opcode(&self) -> u8 {
        match self {
            StoreResponse::Slot(_) => 0x81,
            StoreResponse::Bucket(_) => 0x82,
            StoreResponse::Version(_) => 0x83,
            StoreResponse::Unit => 0x84,
            StoreResponse::MetaValue(_) => 0x85,
            StoreResponse::LogSeq(_) => 0x86,
            StoreResponse::LogRecords { .. } => 0x87,
            StoreResponse::Stats(_) => 0x88,
            StoreResponse::Pong(_) => 0x89,
            StoreResponse::Metrics(_) => 0x8A,
            StoreResponse::Err(_) => 0xFF,
        }
    }

    /// Encodes the response (tag byte followed by its fields).
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::with_capacity(16);
        buf.push(self.opcode());
        match self {
            StoreResponse::Slot(data) => put_bytes(&mut buf, data),
            StoreResponse::Bucket(snapshot) => {
                put_u64(&mut buf, snapshot.version);
                put_u32(&mut buf, snapshot.slots.len() as u32);
                for slot in &snapshot.slots {
                    put_bytes(&mut buf, slot);
                }
            }
            StoreResponse::Version(version) => put_u64(&mut buf, *version),
            StoreResponse::Unit => {}
            StoreResponse::MetaValue(value) => match value {
                Some(value) => {
                    buf.push(1);
                    put_bytes(&mut buf, value);
                }
                None => buf.push(0),
            },
            StoreResponse::LogSeq(seq) => put_u64(&mut buf, *seq),
            StoreResponse::LogRecords { records, truncated } => {
                buf.push(u8::from(*truncated));
                put_u32(&mut buf, records.len() as u32);
                for (seq, data) in records {
                    put_u64(&mut buf, *seq);
                    put_bytes(&mut buf, data);
                }
            }
            StoreResponse::Stats(stats) => {
                put_u64(&mut buf, stats.slot_reads);
                put_u64(&mut buf, stats.bucket_writes);
                put_u64(&mut buf, stats.meta_reads);
                put_u64(&mut buf, stats.meta_writes);
                put_u64(&mut buf, stats.bytes_read);
                put_u64(&mut buf, stats.bytes_written);
            }
            StoreResponse::Pong(version) => {
                buf.extend_from_slice(&version.to_le_bytes());
            }
            StoreResponse::Metrics(metrics) => {
                put_u32(&mut buf, metrics.counters.len() as u32);
                for (name, total) in &metrics.counters {
                    put_bytes(&mut buf, name.as_bytes());
                    put_u64(&mut buf, *total);
                }
                put_u32(&mut buf, metrics.gauges.len() as u32);
                for (name, level) in &metrics.gauges {
                    put_bytes(&mut buf, name.as_bytes());
                    put_u64(&mut buf, *level as u64);
                }
                put_u32(&mut buf, metrics.histograms.len() as u32);
                for (name, histogram) in &metrics.histograms {
                    put_bytes(&mut buf, name.as_bytes());
                    put_u64(&mut buf, histogram.count);
                    put_u64(&mut buf, histogram.sum);
                    put_u64(&mut buf, histogram.max);
                }
            }
            StoreResponse::Err(err) => {
                buf.push(err.kind_tag());
                put_bytes(&mut buf, err.message.as_bytes());
            }
        }
        buf
    }

    /// Decodes a response; the whole buffer must be consumed.
    pub fn decode(data: &[u8]) -> Result<StoreResponse> {
        let mut reader = Reader::new(data);
        let opcode = reader.u8()?;
        let response = match opcode {
            0x81 => StoreResponse::Slot(reader.bytes()?),
            0x82 => {
                let version = reader.u64()?;
                let count = reader.list_len(4)?;
                let mut slots = Vec::with_capacity(count);
                for _ in 0..count {
                    slots.push(reader.bytes()?);
                }
                StoreResponse::Bucket(BucketSnapshot { version, slots })
            }
            0x83 => StoreResponse::Version(reader.u64()?),
            0x84 => StoreResponse::Unit,
            0x85 => match reader.u8()? {
                0 => StoreResponse::MetaValue(None),
                1 => StoreResponse::MetaValue(Some(reader.bytes()?)),
                other => {
                    return Err(ObladiError::Codec(format!(
                        "invalid option tag {other} in meta value"
                    )))
                }
            },
            0x86 => StoreResponse::LogSeq(reader.u64()?),
            0x87 => {
                let truncated = match reader.u8()? {
                    0 => false,
                    1 => true,
                    other => {
                        return Err(ObladiError::Codec(format!(
                            "invalid truncation flag {other} in log records"
                        )))
                    }
                };
                let count = reader.list_len(12)?;
                let mut records = Vec::with_capacity(count);
                for _ in 0..count {
                    let seq = reader.u64()?;
                    records.push((seq, reader.bytes()?));
                }
                StoreResponse::LogRecords { records, truncated }
            }
            0x88 => StoreResponse::Stats(StoreStats {
                slot_reads: reader.u64()?,
                bucket_writes: reader.u64()?,
                meta_reads: reader.u64()?,
                meta_writes: reader.u64()?,
                bytes_read: reader.u64()?,
                bytes_written: reader.u64()?,
            }),
            0x89 => StoreResponse::Pong(reader.u16()?),
            0x8A => {
                let count = reader.list_len(12)?;
                let mut counters = Vec::with_capacity(count);
                for _ in 0..count {
                    let name = reader.string()?;
                    counters.push((name, reader.u64()?));
                }
                let count = reader.list_len(12)?;
                let mut gauges = Vec::with_capacity(count);
                for _ in 0..count {
                    let name = reader.string()?;
                    gauges.push((name, reader.u64()? as i64));
                }
                let count = reader.list_len(28)?;
                let mut histograms = Vec::with_capacity(count);
                for _ in 0..count {
                    let name = reader.string()?;
                    histograms.push((
                        name,
                        WireHistogram {
                            count: reader.u64()?,
                            sum: reader.u64()?,
                            max: reader.u64()?,
                        },
                    ));
                }
                StoreResponse::Metrics(WireMetrics {
                    counters,
                    gauges,
                    histograms,
                })
            }
            0xFF => {
                let kind = WireError::kind_from_tag(reader.u8()?)?;
                let message = reader.string()?;
                StoreResponse::Err(WireError { kind, message })
            }
            other => {
                return Err(ObladiError::Codec(format!(
                    "unknown store response opcode 0x{other:02X}"
                )))
            }
        };
        reader.finish()?;
        Ok(response)
    }

    /// Convenience: turns an error response into `Err`, anything else into
    /// `Ok(self)`.
    pub fn into_result(self) -> Result<StoreResponse> {
        match self {
            StoreResponse::Err(err) => Err(err.into_error()),
            other => Ok(other),
        }
    }
}

// ---------------------------------------------------------------------
// Encoding primitives
// ---------------------------------------------------------------------

fn put_u32(buf: &mut Vec<u8>, value: u32) {
    buf.extend_from_slice(&value.to_le_bytes());
}

fn put_u64(buf: &mut Vec<u8>, value: u64) {
    buf.extend_from_slice(&value.to_le_bytes());
}

fn put_bytes(buf: &mut Vec<u8>, data: &[u8]) {
    put_u32(buf, data.len() as u32);
    buf.extend_from_slice(data);
}

/// Strict, bounds-checked cursor over an immutable buffer.
struct Reader<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(data: &'a [u8]) -> Self {
        Reader { data, pos: 0 }
    }

    fn take(&mut self, len: usize) -> Result<&'a [u8]> {
        let end = self
            .pos
            .checked_add(len)
            .ok_or_else(|| ObladiError::Codec("length overflow while decoding".into()))?;
        if end > self.data.len() {
            return Err(ObladiError::Codec(format!(
                "truncated message: wanted {len} bytes at offset {}, have {}",
                self.pos,
                self.data.len() - self.pos
            )));
        }
        let slice = &self.data[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    fn u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    fn u32(&mut self) -> Result<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// A list length, bounded so hostile lengths cannot drive allocation:
    /// a claimed count of elements (each at least `min_element` encoded
    /// bytes) can never exceed what the remaining buffer could hold, so
    /// `Vec::with_capacity(count)` is bounded by the frame size the
    /// framing layer already capped.
    fn list_len(&mut self, min_element: usize) -> Result<usize> {
        let len = self.u32()? as usize;
        let remaining = self.data.len() - self.pos;
        if len > MAX_WIRE_LEN || len.saturating_mul(min_element.max(1)) > remaining {
            return Err(ObladiError::Codec(format!(
                "list length {len} cannot fit in {remaining} remaining bytes"
            )));
        }
        Ok(len)
    }

    fn bytes(&mut self) -> Result<Bytes> {
        let len = self.u32()? as usize;
        if len > MAX_WIRE_LEN {
            return Err(ObladiError::Codec(format!(
                "byte string length {len} exceeds wire maximum"
            )));
        }
        Ok(Bytes::from(self.take(len)?.to_vec()))
    }

    fn string(&mut self) -> Result<String> {
        let raw = self.bytes()?;
        String::from_utf8(raw.to_vec())
            .map_err(|_| ObladiError::Codec("non-UTF-8 string on the wire".into()))
    }

    fn finish(self) -> Result<()> {
        if self.pos != self.data.len() {
            return Err(ObladiError::Codec(format!(
                "{} trailing bytes after message",
                self.data.len() - self.pos
            )));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_requests() -> Vec<StoreRequest> {
        vec![
            StoreRequest::ReadSlot { bucket: 7, slot: 3 },
            StoreRequest::ReadBucket { bucket: u64::MAX },
            StoreRequest::WriteBucket {
                bucket: 1,
                slots: vec![
                    Bytes::from_static(b"a"),
                    Bytes::new(),
                    Bytes::from_static(b"bc"),
                ],
            },
            StoreRequest::BucketVersion { bucket: 0 },
            StoreRequest::RevertBucket {
                bucket: 9,
                version: 4,
            },
            StoreRequest::PutMeta {
                key: "checkpoint/δ".into(),
                value: Bytes::from_static(b"state"),
            },
            StoreRequest::GetMeta { key: String::new() },
            StoreRequest::AppendLog {
                record: Bytes::from_static(b"wal record"),
            },
            StoreRequest::ReadLogFrom { from: 42 },
            StoreRequest::TruncateLog { up_to: 17 },
            StoreRequest::TruncateLogTail { from: 99 },
            StoreRequest::Stats,
            StoreRequest::ResetStats,
            StoreRequest::Ping,
            StoreRequest::Shutdown,
            StoreRequest::MetricsSnapshot,
        ]
    }

    fn all_responses() -> Vec<StoreResponse> {
        vec![
            StoreResponse::Slot(Bytes::from_static(b"sealed")),
            StoreResponse::Bucket(BucketSnapshot {
                version: 12,
                slots: vec![Bytes::from_static(b"x"), Bytes::new()],
            }),
            StoreResponse::Version(3),
            StoreResponse::Unit,
            StoreResponse::MetaValue(None),
            StoreResponse::MetaValue(Some(Bytes::from_static(b"v"))),
            StoreResponse::LogSeq(1000),
            StoreResponse::LogRecords {
                records: vec![(0, Bytes::from_static(b"r0")), (5, Bytes::new())],
                truncated: true,
            },
            StoreResponse::Stats(StoreStats {
                slot_reads: 1,
                bucket_writes: 2,
                meta_reads: 3,
                meta_writes: 4,
                bytes_read: 5,
                bytes_written: 6,
            }),
            StoreResponse::Pong(1),
            StoreResponse::Metrics(WireMetrics {
                counters: vec![
                    ("daemon.oplog.appends".into(), 17),
                    ("daemon.wedges".into(), 0),
                ],
                gauges: vec![("daemon.oplog.bytes".into(), -3)],
                histograms: vec![(
                    "daemon.compaction.pause_us".into(),
                    WireHistogram {
                        count: 2,
                        sum: 900,
                        max: 750,
                    },
                )],
            }),
            StoreResponse::Metrics(WireMetrics::default()),
            StoreResponse::Err(WireError {
                kind: WireErrorKind::Storage,
                message: "bucket 3 has never been written".into(),
            }),
        ]
    }

    #[test]
    fn requests_round_trip() {
        for request in all_requests() {
            let encoded = request.encode();
            assert_eq!(encoded[0], request.opcode());
            let decoded = StoreRequest::decode(&encoded).unwrap();
            assert_eq!(decoded, request, "round trip of {request:?}");
        }
    }

    #[test]
    fn responses_round_trip() {
        for response in all_responses() {
            let encoded = response.encode();
            let decoded = StoreResponse::decode(&encoded).unwrap();
            assert_eq!(decoded, response, "round trip of {response:?}");
        }
    }

    #[test]
    fn opcodes_are_unique() {
        let mut seen = std::collections::HashSet::new();
        for request in all_requests() {
            assert!(seen.insert(request.opcode()), "duplicate request opcode");
        }
        let mut seen = std::collections::HashSet::new();
        for response in all_responses() {
            seen.insert(response.opcode());
        }
        // MetaValue and Metrics each appear twice in the fixture list.
        assert_eq!(seen.len(), all_responses().len() - 2);
    }

    #[test]
    fn truncated_and_trailing_inputs_are_rejected() {
        let encoded = StoreRequest::ReadSlot { bucket: 7, slot: 3 }.encode();
        for cut in 0..encoded.len() {
            assert!(
                StoreRequest::decode(&encoded[..cut]).is_err(),
                "truncation at {cut} must fail"
            );
        }
        let mut padded = encoded.clone();
        padded.push(0);
        assert!(StoreRequest::decode(&padded).is_err(), "trailing byte");
    }

    #[test]
    fn unknown_opcodes_are_rejected() {
        assert!(StoreRequest::decode(&[0x7E]).is_err());
        assert!(StoreResponse::decode(&[0x10]).is_err());
        assert!(StoreRequest::decode(&[]).is_err());
    }

    #[test]
    fn hostile_lengths_do_not_allocate() {
        // A WriteBucket claiming u32::MAX slots must fail fast on the
        // bounded list length, not attempt the allocation.
        let mut buf = vec![0x03];
        buf.extend_from_slice(&1u64.to_le_bytes());
        buf.extend_from_slice(&u32::MAX.to_le_bytes());
        assert!(StoreRequest::decode(&buf).is_err());
    }

    #[test]
    fn wire_errors_re_hydrate() {
        let original = ObladiError::Storage("slot 9 out of range".into());
        let wire = WireError::from_error(&original);
        assert_eq!(wire.clone().into_error(), original);

        let codec = WireError::from_error(&ObladiError::Codec("bad".into()));
        assert_eq!(codec.kind, WireErrorKind::Codec);

        // Non-storage server-side faults flatten to Storage with context.
        let flattened = WireError::from_error(&ObladiError::KeyNotFound(3));
        assert_eq!(flattened.kind, WireErrorKind::Storage);
        assert!(flattened.message.contains("key not found"));
    }

    #[test]
    fn mutation_classification_matches_durability_needs() {
        let mutating = all_requests()
            .into_iter()
            .filter(StoreRequest::is_mutation)
            .count();
        assert_eq!(mutating, 6);
        assert!(!StoreRequest::Stats.is_mutation());
        assert!(!StoreRequest::Ping.is_mutation());
        assert!(!StoreRequest::MetricsSnapshot.is_mutation());
    }
}
