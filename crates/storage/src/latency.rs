//! Latency-injecting wrapper emulating the storage backends of §11.2.
//!
//! [`LatencyStore`] delegates every operation to an inner store after
//! sleeping for a latency drawn from the backend's [`LatencyProfile`].  The
//! DynamoDB profile additionally caps the number of in-flight requests to
//! model the blocking HTTP client the paper calls out as the reason Dynamo
//! "peaks early" in Figure 10b.

use crate::traits::{BucketSnapshot, StoreStats, UntrustedStore};
use bytes::Bytes;
use obladi_common::error::Result;
use obladi_common::latency::LatencyProfile;
use obladi_common::rng::DetRng;
use obladi_common::types::{BucketId, Version};
use parking_lot::{Condvar, Mutex};
use std::sync::Arc;

/// Counting semaphore used to bound in-flight requests.
struct Semaphore {
    permits: Mutex<usize>,
    available: Condvar,
}

impl Semaphore {
    fn new(permits: usize) -> Self {
        Semaphore {
            permits: Mutex::new(permits),
            available: Condvar::new(),
        }
    }

    fn acquire(&self) {
        let mut permits = self.permits.lock();
        while *permits == 0 {
            self.available.wait(&mut permits);
        }
        *permits -= 1;
    }

    fn release(&self) {
        let mut permits = self.permits.lock();
        *permits += 1;
        self.available.notify_one();
    }
}

/// RAII guard for a semaphore permit.
struct Permit<'a> {
    sem: Option<&'a Semaphore>,
}

impl Drop for Permit<'_> {
    fn drop(&mut self) {
        if let Some(sem) = self.sem {
            sem.release();
        }
    }
}

/// Wraps an [`UntrustedStore`] and injects per-operation latency.
pub struct LatencyStore {
    inner: Arc<dyn UntrustedStore>,
    profile: LatencyProfile,
    rng: Mutex<DetRng>,
    limiter: Option<Semaphore>,
}

impl LatencyStore {
    /// Creates a latency-injecting wrapper around `inner`.
    pub fn new(inner: Arc<dyn UntrustedStore>, profile: LatencyProfile, seed: u64) -> Self {
        let limiter = profile.max_in_flight.map(Semaphore::new);
        LatencyStore {
            inner,
            profile,
            rng: Mutex::new(DetRng::new(seed ^ 0x1a7e_9c11)),
            limiter,
        }
    }

    /// The latency profile in effect.
    pub fn profile(&self) -> &LatencyProfile {
        &self.profile
    }

    fn charge_read(&self) -> Permit<'_> {
        let permit = self.acquire_permit();
        let delay = {
            let mut rng = self.rng.lock();
            self.profile.read.sample(&mut rng)
        };
        if !delay.is_zero() {
            std::thread::sleep(delay);
        }
        permit
    }

    fn charge_write(&self) -> Permit<'_> {
        let permit = self.acquire_permit();
        let delay = {
            let mut rng = self.rng.lock();
            self.profile.write.sample(&mut rng)
        };
        if !delay.is_zero() {
            std::thread::sleep(delay);
        }
        permit
    }

    fn acquire_permit(&self) -> Permit<'_> {
        match &self.limiter {
            Some(sem) => {
                sem.acquire();
                Permit { sem: Some(sem) }
            }
            None => Permit { sem: None },
        }
    }
}

impl UntrustedStore for LatencyStore {
    fn read_slot(&self, bucket: BucketId, slot: u32) -> Result<Bytes> {
        let _permit = self.charge_read();
        self.inner.read_slot(bucket, slot)
    }

    fn read_bucket(&self, bucket: BucketId) -> Result<BucketSnapshot> {
        let _permit = self.charge_read();
        self.inner.read_bucket(bucket)
    }

    fn write_bucket(&self, bucket: BucketId, slots: Vec<Bytes>) -> Result<Version> {
        let _permit = self.charge_write();
        self.inner.write_bucket(bucket, slots)
    }

    fn bucket_version(&self, bucket: BucketId) -> Result<Version> {
        self.inner.bucket_version(bucket)
    }

    fn revert_bucket(&self, bucket: BucketId, version: Version) -> Result<()> {
        let _permit = self.charge_write();
        self.inner.revert_bucket(bucket, version)
    }

    fn put_meta(&self, key: &str, value: Bytes) -> Result<()> {
        let _permit = self.charge_write();
        self.inner.put_meta(key, value)
    }

    fn get_meta(&self, key: &str) -> Result<Option<Bytes>> {
        let _permit = self.charge_read();
        self.inner.get_meta(key)
    }

    fn append_log(&self, record: Bytes) -> Result<u64> {
        let _permit = self.charge_write();
        self.inner.append_log(record)
    }

    fn read_log_from(&self, from: u64) -> Result<Vec<(u64, Bytes)>> {
        let _permit = self.charge_read();
        self.inner.read_log_from(from)
    }

    fn truncate_log(&self, up_to: u64) -> Result<()> {
        self.inner.truncate_log(up_to)
    }

    fn truncate_log_tail(&self, from: u64) -> Result<()> {
        self.inner.truncate_log_tail(from)
    }

    fn stats(&self) -> StoreStats {
        self.inner.stats()
    }

    fn reset_stats(&self) {
        self.inner.reset_stats()
    }

    fn daemon_metrics(&self) -> Option<crate::proto::WireMetrics> {
        self.inner.daemon_metrics()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memory::InMemoryStore;
    use obladi_common::config::BackendKind;
    use std::time::{Duration, Instant};

    fn wrapped(profile: LatencyProfile) -> LatencyStore {
        LatencyStore::new(Arc::new(InMemoryStore::new()), profile, 7)
    }

    #[test]
    fn zero_latency_profile_is_fast() {
        let store = wrapped(LatencyProfile::for_backend(BackendKind::Dummy));
        let start = Instant::now();
        for i in 0..100 {
            store
                .write_bucket(i, vec![Bytes::from_static(b"x")])
                .unwrap();
            store.read_slot(i, 0).unwrap();
        }
        assert!(start.elapsed() < Duration::from_millis(200));
    }

    #[test]
    fn latency_is_actually_injected() {
        // 2 ms reads: 20 sequential reads must take at least ~30 ms.
        let mut profile = LatencyProfile::for_backend(BackendKind::Server);
        profile.read = obladi_common::latency::LatencyModel::with_mean(Duration::from_millis(2));
        let store = wrapped(profile);
        store
            .write_bucket(0, vec![Bytes::from_static(b"x")])
            .unwrap();
        let start = Instant::now();
        for _ in 0..20 {
            store.read_slot(0, 0).unwrap();
        }
        assert!(
            start.elapsed() >= Duration::from_millis(30),
            "elapsed {:?}",
            start.elapsed()
        );
    }

    #[test]
    fn in_flight_limit_serialises_requests() {
        // A profile with a single permit forces sequential execution even
        // when called from many threads.
        let mut profile = LatencyProfile::for_backend(BackendKind::Dynamo).scaled(0.0);
        profile.max_in_flight = Some(1);
        profile.read = obladi_common::latency::LatencyModel::with_mean(Duration::from_millis(2));
        let store = Arc::new(wrapped(profile));
        store
            .write_bucket(0, vec![Bytes::from_static(b"x")])
            .unwrap();

        let start = Instant::now();
        let mut handles = Vec::new();
        for _ in 0..4 {
            let store = store.clone();
            handles.push(std::thread::spawn(move || {
                for _ in 0..5 {
                    store.read_slot(0, 0).unwrap();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        // 20 reads * 2 ms each, fully serialised, is at least ~30 ms.
        assert!(
            start.elapsed() >= Duration::from_millis(30),
            "elapsed {:?}",
            start.elapsed()
        );
    }

    #[test]
    fn delegates_functionality_to_inner() {
        let store = wrapped(LatencyProfile::for_backend(BackendKind::Dummy));
        store.put_meta("k", Bytes::from_static(b"v")).unwrap();
        assert!(store.get_meta("k").unwrap().is_some());
        store.append_log(Bytes::from_static(b"r")).unwrap();
        assert_eq!(store.read_log_from(0).unwrap().len(), 1);
        assert!(store.stats().total_requests() > 0);
    }
}
