//! The adversary-view tap at the [`UntrustedStore`] boundary.
//!
//! [`RecordingStore`] wraps any store and records, for every operation,
//! exactly what an adversary co-located with the storage server observes:
//! the operation kind, the physical address, the sealed payload *length*
//! (never plaintext — everything below this boundary is already sealed by
//! the proxy), and the wire frame sizes the operation would occupy on the
//! `obladi-transport` framing.  Frame sizes are computed analytically from
//! the `proto` encoding, so an in-process store produces the same trace
//! shape a real socket would carry — the whole point is comparing traces
//! across workloads, not across transports.
//!
//! [`record_server_op`] is the other half of the tap: the transport
//! server loop calls it per decoded frame, so an `obladi-stored` daemon
//! records what *its* socket actually showed the network into the
//! process-global [`obladi_obs::audit`] ring.

use crate::proto::WireMetrics;
use crate::traits::{BucketSnapshot, StoreStats, UntrustedStore};
use bytes::Bytes;
use obladi_common::error::Result;
use obladi_common::types::{BucketId, Version};
use obladi_obs::audit::{AuditKind, AuditRing};
use std::sync::Arc;

/// Bytes the transport adds around a proto payload: the 4-byte length
/// prefix plus the 9-byte frame header (`id:u64 | op:u8`).
const FRAME_OVERHEAD: usize = 13;

/// Total on-the-wire size of a frame carrying `payload_len` proto bytes.
fn wire_frame(payload_len: usize) -> u32 {
    (FRAME_OVERHEAD + payload_len) as u32
}

/// FNV-1a over a metadata key: a stable physical address for the trace
/// (the adversary sees the key bytes; the auditor only needs identity).
fn meta_addr(key: &str) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in key.as_bytes() {
        hash ^= u64::from(*byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Maps a request opcode to the trace kind (the adversary reads the tag
/// byte off the frame header).
pub fn kind_for_request_opcode(opcode: u8) -> AuditKind {
    match opcode {
        0x01 => AuditKind::ReadSlot,
        0x02 => AuditKind::ReadBucket,
        0x03 => AuditKind::WriteBucket,
        0x04 => AuditKind::BucketVersion,
        0x05 => AuditKind::RevertBucket,
        0x06 => AuditKind::PutMeta,
        0x07 => AuditKind::GetMeta,
        0x08 => AuditKind::AppendLog,
        0x09 => AuditKind::ReadLog,
        0x0A | 0x0B => AuditKind::TruncateLog,
        _ => AuditKind::Control,
    }
}

/// Records one executed request into the process-global audit ring — the
/// `obladi-stored` server loop's tap.  `req_payload` is the decoded frame
/// payload (opcode byte included); `resp_payload_len` the encoded
/// response payload length.  The payload-length column strips only the
/// tag byte of whichever direction carries the data, so it is a
/// deterministic function of what crossed the socket.
pub fn record_server_op(opcode: u8, req_payload: &[u8], resp_payload_len: usize) {
    let kind = kind_for_request_opcode(opcode);
    // Requests whose first field is a u64 address (bucket or sequence).
    let addr = match opcode {
        0x01..=0x05 | 0x09..=0x0B if req_payload.len() >= 9 => {
            u64::from_le_bytes(req_payload[1..9].try_into().unwrap())
        }
        _ => 0,
    };
    let payload_len = match kind {
        AuditKind::WriteBucket | AuditKind::PutMeta | AuditKind::AppendLog => {
            req_payload.len().saturating_sub(1)
        }
        _ => resp_payload_len.saturating_sub(1),
    };
    obladi_obs::audit::global().record(
        0,
        kind,
        addr,
        payload_len as u32,
        wire_frame(req_payload.len()),
        wire_frame(resp_payload_len),
    );
}

/// A store wrapper recording the adversary-visible trace of every
/// operation into an [`AuditRing`] shared with the harness.
pub struct RecordingStore {
    inner: Arc<dyn UntrustedStore>,
    ring: Arc<AuditRing>,
    store_id: u32,
}

impl RecordingStore {
    /// Wraps `inner`, tagging every recorded operation with `store_id`
    /// (the shard index in multi-store harnesses).
    pub fn new(inner: Arc<dyn UntrustedStore>, ring: Arc<AuditRing>, store_id: u32) -> Self {
        RecordingStore {
            inner,
            ring,
            store_id,
        }
    }

    /// The ring this store records into.
    pub fn ring(&self) -> &Arc<AuditRing> {
        &self.ring
    }

    #[inline]
    fn record(
        &self,
        kind: AuditKind,
        addr: u64,
        payload_len: usize,
        req_payload: usize,
        resp_payload: usize,
    ) {
        self.ring.record(
            self.store_id,
            kind,
            addr,
            payload_len as u32,
            wire_frame(req_payload),
            wire_frame(resp_payload),
        );
    }
}

impl UntrustedStore for RecordingStore {
    fn read_slot(&self, bucket: BucketId, slot: u32) -> Result<Bytes> {
        let data = self.inner.read_slot(bucket, slot)?;
        // req: tag + bucket + slot; resp: tag + len-prefixed payload.
        self.record(AuditKind::ReadSlot, bucket, data.len(), 13, 5 + data.len());
        Ok(data)
    }

    fn read_bucket(&self, bucket: BucketId) -> Result<BucketSnapshot> {
        let snapshot = self.inner.read_bucket(bucket)?;
        let sealed: usize = snapshot.slots.iter().map(Bytes::len).sum();
        let resp = 13 + 4 * snapshot.slots.len() + sealed;
        self.record(AuditKind::ReadBucket, bucket, sealed, 9, resp);
        Ok(snapshot)
    }

    fn write_bucket(&self, bucket: BucketId, slots: Vec<Bytes>) -> Result<Version> {
        let sealed: usize = slots.iter().map(Bytes::len).sum();
        let req = 13 + 4 * slots.len() + sealed;
        let version = self.inner.write_bucket(bucket, slots)?;
        self.record(AuditKind::WriteBucket, bucket, sealed, req, 9);
        Ok(version)
    }

    fn bucket_version(&self, bucket: BucketId) -> Result<Version> {
        let version = self.inner.bucket_version(bucket)?;
        self.record(AuditKind::BucketVersion, bucket, 0, 9, 9);
        Ok(version)
    }

    fn revert_bucket(&self, bucket: BucketId, version: Version) -> Result<()> {
        self.inner.revert_bucket(bucket, version)?;
        self.record(AuditKind::RevertBucket, bucket, 0, 17, 1);
        Ok(())
    }

    fn put_meta(&self, key: &str, value: Bytes) -> Result<()> {
        let req = 9 + key.len() + value.len();
        let sealed = value.len();
        self.inner.put_meta(key, value)?;
        self.record(AuditKind::PutMeta, meta_addr(key), sealed, req, 1);
        Ok(())
    }

    fn get_meta(&self, key: &str) -> Result<Option<Bytes>> {
        let value = self.inner.get_meta(key)?;
        let sealed = value.as_ref().map_or(0, Bytes::len);
        let resp = match &value {
            Some(value) => 6 + value.len(),
            None => 2,
        };
        self.record(
            AuditKind::GetMeta,
            meta_addr(key),
            sealed,
            5 + key.len(),
            resp,
        );
        Ok(value)
    }

    fn append_log(&self, record: Bytes) -> Result<u64> {
        let sealed = record.len();
        let seq = self.inner.append_log(record)?;
        self.record(AuditKind::AppendLog, seq, sealed, 5 + sealed, 9);
        Ok(seq)
    }

    fn read_log_from(&self, from: u64) -> Result<Vec<(u64, Bytes)>> {
        let records = self.inner.read_log_from(from)?;
        let sealed: usize = records.iter().map(|(_, data)| data.len()).sum();
        let resp = 6 + 12 * records.len() + sealed;
        self.record(AuditKind::ReadLog, from, sealed, 9, resp);
        Ok(records)
    }

    fn read_log_page(&self, from: u64, max_bytes: usize) -> Result<(Vec<(u64, Bytes)>, bool)> {
        let (records, truncated) = self.inner.read_log_page(from, max_bytes)?;
        let sealed: usize = records.iter().map(|(_, data)| data.len()).sum();
        let resp = 6 + 12 * records.len() + sealed;
        self.record(AuditKind::ReadLog, from, sealed, 9, resp);
        Ok((records, truncated))
    }

    fn truncate_log(&self, up_to: u64) -> Result<()> {
        self.inner.truncate_log(up_to)?;
        self.record(AuditKind::TruncateLog, up_to, 0, 9, 1);
        Ok(())
    }

    fn truncate_log_tail(&self, from: u64) -> Result<()> {
        self.inner.truncate_log_tail(from)?;
        self.record(AuditKind::TruncateLog, from, 0, 9, 1);
        Ok(())
    }

    fn stats(&self) -> StoreStats {
        self.record(AuditKind::Control, 0, 0, 1, 49);
        self.inner.stats()
    }

    fn reset_stats(&self) {
        self.record(AuditKind::Control, 0, 0, 1, 1);
        self.inner.reset_stats();
    }

    fn daemon_metrics(&self) -> Option<WireMetrics> {
        self.inner.daemon_metrics()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memory::InMemoryStore;

    fn recorded() -> (Arc<RecordingStore>, Arc<AuditRing>) {
        let ring = Arc::new(AuditRing::new(1024));
        let store = Arc::new(RecordingStore::new(
            Arc::new(InMemoryStore::new()),
            ring.clone(),
            3,
        ));
        (store, ring)
    }

    #[test]
    fn slot_reads_record_length_not_contents() {
        let (store, ring) = recorded();
        store
            .write_bucket(7, vec![Bytes::from_static(b"sealedsealed")])
            .unwrap();
        store.read_slot(7, 0).unwrap();
        let ops = ring.ops();
        assert_eq!(ops.len(), 2);
        let read = ops[1];
        assert_eq!(read.kind, AuditKind::ReadSlot);
        assert_eq!(read.store, 3);
        assert_eq!(read.addr, 7);
        assert_eq!(read.payload_len, 12);
        // req: 13 framing + tag + bucket + slot; resp: 13 + tag + 4 + 12.
        assert_eq!(read.req_frame, 26);
        assert_eq!(read.resp_frame, 30);
    }

    #[test]
    fn equal_length_slots_are_trace_identical() {
        // The recorder must not leak contents: two buckets holding
        // different sealed bytes of equal length produce identical ops up
        // to address and time.
        let (store, ring) = recorded();
        store
            .write_bucket(1, vec![Bytes::from_static(b"aaaaaaaa")])
            .unwrap();
        store
            .write_bucket(2, vec![Bytes::from_static(b"zzzzzzzz")])
            .unwrap();
        ring.reset();
        store.read_slot(1, 0).unwrap();
        store.read_slot(2, 0).unwrap();
        let ops = ring.ops();
        assert_eq!(
            (
                ops[0].kind,
                ops[0].payload_len,
                ops[0].req_frame,
                ops[0].resp_frame
            ),
            (
                ops[1].kind,
                ops[1].payload_len,
                ops[1].req_frame,
                ops[1].resp_frame
            ),
        );
    }

    #[test]
    fn meta_and_log_ops_map_to_their_kinds() {
        let (store, ring) = recorded();
        store
            .put_meta("ckpt/1", Bytes::from_static(b"state"))
            .unwrap();
        store.get_meta("ckpt/1").unwrap();
        store.get_meta("absent").unwrap();
        store.append_log(Bytes::from_static(b"wal")).unwrap();
        store.read_log_from(0).unwrap();
        store.truncate_log(1).unwrap();
        let kinds: Vec<AuditKind> = ring.ops().iter().map(|op| op.kind).collect();
        assert_eq!(
            kinds,
            vec![
                AuditKind::PutMeta,
                AuditKind::GetMeta,
                AuditKind::GetMeta,
                AuditKind::AppendLog,
                AuditKind::ReadLog,
                AuditKind::TruncateLog,
            ]
        );
        let ops = ring.ops();
        assert_eq!(ops[0].addr, ops[1].addr, "same key, same address");
        assert_ne!(
            ops[1].addr, ops[2].addr,
            "distinct keys, distinct addresses"
        );
        assert_eq!(ops[0].payload_len, 5);
        assert_eq!(ops[2].payload_len, 0, "absent meta reads as empty");
    }

    #[test]
    fn server_tap_mirrors_the_frame_sizes() {
        use crate::proto::{StoreRequest, StoreResponse};
        obladi_obs::audit::global().reset();
        let request = StoreRequest::ReadSlot { bucket: 9, slot: 1 };
        let response = StoreResponse::Slot(Bytes::from_static(b"sealed!!"));
        let req_payload = request.encode();
        let resp_payload = response.encode();
        record_server_op(request.opcode(), &req_payload, resp_payload.len());
        let ops = obladi_obs::audit::global().ops();
        let op = *ops.last().expect("tap recorded");
        assert_eq!(op.kind, AuditKind::ReadSlot);
        assert_eq!(op.addr, 9);
        assert_eq!(op.req_frame, 26);
        assert_eq!(op.resp_frame, 26);
        assert_eq!(op.payload_len, 12, "tag stripped from the data direction");
        obladi_obs::audit::global().reset();
    }

    #[test]
    fn unknown_opcodes_fall_back_to_control() {
        assert_eq!(kind_for_request_opcode(0x0C), AuditKind::Control);
        assert_eq!(kind_for_request_opcode(0x7E), AuditKind::Control);
    }
}
