//! The trusted epoch / read-batch counter `F_epc` (Appendix A & B).
//!
//! To guarantee freshness against a malicious storage server the proxy needs
//! a small amount of trustworthy state that survives crashes: the current
//! epoch counter and the index of the read batch within that epoch.  The
//! paper abstracts this as the ideal functionality `F_epc`; deployments
//! would implement it with a few bytes of local non-volatile storage.
//!
//! [`TrustedCounter`] models exactly that: a tiny piece of state that is
//! *not* wiped when the proxy's volatile state is dropped during a simulated
//! crash.  The proxy increments the batch counter before issuing the reads
//! of a batch and the epoch counter after an epoch's write batch has been
//! applied, which is the update ordering Appendix A requires for integrity.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Persistent, trusted `(epoch, read-batch)` counter.
#[derive(Debug, Default)]
pub struct TrustedCounter {
    epoch: AtomicU64,
    batch: AtomicU64,
}

impl TrustedCounter {
    /// Creates a counter starting at epoch 0, batch 0.
    pub fn new() -> Arc<Self> {
        Arc::new(TrustedCounter::default())
    }

    /// Current epoch counter.
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::SeqCst)
    }

    /// Current read-batch counter within the epoch.
    pub fn batch(&self) -> u64 {
        self.batch.load(Ordering::SeqCst)
    }

    /// Records that a new read batch is about to execute; returns the batch
    /// counter value that must be bound into that batch's MACs.
    pub fn advance_batch(&self) -> u64 {
        self.batch.fetch_add(1, Ordering::SeqCst) + 1
    }

    /// Records that the current epoch has become durable: bumps the epoch
    /// counter and resets the batch counter.
    pub fn advance_epoch(&self) -> u64 {
        self.batch.store(0, Ordering::SeqCst);
        self.epoch.fetch_add(1, Ordering::SeqCst) + 1
    }

    /// Records that epoch `epoch` has become durable.
    ///
    /// Epoch *identifiers* can skip numbers (a storage failure aborts an
    /// epoch without committing it), so the durable marker must track the
    /// identifier rather than a commit count — recovery interprets
    /// [`TrustedCounter::epoch`] as "the id of the last durable epoch" when
    /// it selects which checkpoints to apply and which path logs to replay.
    /// The counter never moves backwards.
    pub fn advance_epoch_to(&self, epoch: u64) -> u64 {
        self.batch.store(0, Ordering::SeqCst);
        self.epoch.fetch_max(epoch, Ordering::SeqCst).max(epoch)
    }

    /// Restores an explicit value (used when bootstrapping a proxy from an
    /// existing deployment's counter; tests use it to model counter loss).
    pub fn restore(&self, epoch: u64, batch: u64) {
        self.epoch.store(epoch, Ordering::SeqCst);
        self.batch.store(batch, Ordering::SeqCst);
    }

    /// A combined freshness tag `(epoch << 20) | batch` suitable for binding
    /// into MACs; read batches per epoch are far below 2^20.
    pub fn freshness_tag(&self) -> u64 {
        (self.epoch() << 20) | (self.batch() & 0xF_FFFF)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_at_zero() {
        let c = TrustedCounter::new();
        assert_eq!(c.epoch(), 0);
        assert_eq!(c.batch(), 0);
    }

    #[test]
    fn batch_and_epoch_advance() {
        let c = TrustedCounter::new();
        assert_eq!(c.advance_batch(), 1);
        assert_eq!(c.advance_batch(), 2);
        assert_eq!(c.batch(), 2);
        assert_eq!(c.advance_epoch(), 1);
        assert_eq!(c.epoch(), 1);
        assert_eq!(c.batch(), 0, "epoch advance resets the batch counter");
    }

    #[test]
    fn freshness_tag_changes_with_either_counter() {
        let c = TrustedCounter::new();
        let t0 = c.freshness_tag();
        c.advance_batch();
        let t1 = c.freshness_tag();
        c.advance_epoch();
        let t2 = c.freshness_tag();
        assert_ne!(t0, t1);
        assert_ne!(t1, t2);
        assert_ne!(t0, t2);
    }

    #[test]
    fn restore_overrides_counters() {
        let c = TrustedCounter::new();
        c.restore(7, 3);
        assert_eq!(c.epoch(), 7);
        assert_eq!(c.batch(), 3);
    }

    #[test]
    fn counter_survives_being_shared_across_threads() {
        let c = TrustedCounter::new();
        let mut handles = Vec::new();
        for _ in 0..4 {
            let c = c.clone();
            handles.push(std::thread::spawn(move || {
                for _ in 0..100 {
                    c.advance_batch();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(c.batch(), 400);
    }
}
