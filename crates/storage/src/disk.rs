//! Durable storage for the `obladi-stored` daemon: an [`InMemoryStore`]
//! made crash-safe by a replayed operation log.
//!
//! The paper assumes the untrusted cloud store is itself *fault-tolerant*
//! (§5: crashes of the storage tier are the provider's problem) — so when
//! the reproduction moves storage into a separate process that can be
//! `kill -9`ed, that process must honour the assumption: **any operation it
//! acknowledged must survive its own death**.  [`DurableStore`] delivers
//! that with the simplest correct design:
//!
//! * every *mutating* [`StoreRequest`] is appended to an on-disk op-log
//!   (length + checksum framed, encoded with the same wire schema the RPC
//!   uses) *before* the operation is acknowledged;
//! * on start-up the log is replayed in order against a fresh
//!   [`InMemoryStore`], rebuilding exactly the acknowledged state;
//! * a torn trailing record — a write the crash cut short, necessarily
//!   unacknowledged — is detected by its checksum/length and physically
//!   truncated away, so it can never be mistaken for data.
//!
//! Reads are served from memory and never touch the log.  A `SIGKILL` only
//! discards process-buffered state, and the log is written straight through
//! to the kernel before each acknowledgement, so the durability contract
//! holds for process kills (machine-level durability would additionally
//! need fsync, which the reproduction deliberately skips — the chaos
//! harness kills processes, not the host).  If an op-log append itself
//! fails (disk full), the store *wedges*: memory would be ahead of disk,
//! so every subsequent operation fail-stops until a restart replays the
//! logged prefix — an unacknowledgeable state can never be served.
//!
//! Known limitation: the op-log is append-only and never compacted, so a
//! long-lived daemon's boot replay costs O(total mutations ever served).
//! Periodic state snapshots + log truncation are the designated follow-up
//! (see the ROADMAP); the chaos tiers and benchmarks run well inside the
//! uncompacted regime.

use crate::memory::InMemoryStore;
use crate::proto::StoreRequest;
use crate::traits::{BucketSnapshot, StoreStats, UntrustedStore};
use bytes::Bytes;
use obladi_common::error::{ObladiError, Result};
use obladi_common::types::{BucketId, Version};
use parking_lot::RwLock;
use std::fs::{File, OpenOptions};
use std::io::{Read, Write};
use std::path::{Path, PathBuf};

/// Name of the op-log file inside the store's data directory.
pub const OPLOG_FILE: &str = "store.oplog";

/// Per-record framing overhead: u32 length + u32 FNV-1a checksum.
const RECORD_HEADER: usize = 8;

/// Upper bound on a single op-log record; matches the wire maximum plus
/// bucket-level overhead, and rejects absurd lengths from corrupt headers.
const MAX_RECORD: usize = crate::proto::MAX_WIRE_LEN + (1 << 16);

/// A crash-safe [`UntrustedStore`]: in-memory state plus a replayed op-log.
pub struct DurableStore {
    inner: InMemoryStore,
    /// The op-log file, doubling as the state lock: mutations hold the
    /// write half across apply-to-memory *and* append-to-disk, and readers
    /// hold the read half, so no reader can observe a mutation that is
    /// applied in memory but not yet durable (a kill in that window would
    /// erase what the reader saw).
    oplog: RwLock<File>,
    path: PathBuf,
    /// Set when an op-log append fails after its mutation was applied in
    /// memory: the two are now divergent, and serving *anything* from the
    /// divergent state could acknowledge data a restart will not rebuild.
    /// A wedged store fail-stops every operation until the process
    /// restarts and replays the log (losing only unacknowledged work).
    wedged: std::sync::atomic::AtomicBool,
}

/// What [`DurableStore::open`] found on disk.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReplaySummary {
    /// Complete records replayed.
    pub records: u64,
    /// Bytes of torn trailing data truncated away (0 = clean shutdown).
    pub torn_bytes: u64,
}

impl DurableStore {
    /// Opens (or creates) the store rooted at `dir`, replaying any existing
    /// op-log.
    pub fn open(dir: &Path) -> Result<(DurableStore, ReplaySummary)> {
        std::fs::create_dir_all(dir).map_err(|err| {
            ObladiError::Storage(format!("cannot create data dir {}: {err}", dir.display()))
        })?;
        let path = dir.join(OPLOG_FILE);
        let inner = InMemoryStore::new();
        let mut summary = ReplaySummary {
            records: 0,
            torn_bytes: 0,
        };

        let mut raw = Vec::new();
        match File::open(&path) {
            Ok(mut file) => {
                file.read_to_end(&mut raw)
                    .map_err(|err| ObladiError::Storage(format!("cannot read op-log: {err}")))?;
            }
            Err(err) if err.kind() == std::io::ErrorKind::NotFound => {}
            Err(err) => {
                return Err(ObladiError::Storage(format!(
                    "cannot open op-log {}: {err}",
                    path.display()
                )))
            }
        }

        let mut offset = 0usize;
        while raw.len() - offset >= RECORD_HEADER {
            let len = u32::from_le_bytes(raw[offset..offset + 4].try_into().unwrap()) as usize;
            let sum = u32::from_le_bytes(raw[offset + 4..offset + 8].try_into().unwrap());
            let body_start = offset + RECORD_HEADER;
            if len > MAX_RECORD || body_start + len > raw.len() {
                break; // torn or garbled tail
            }
            let body = &raw[body_start..body_start + len];
            if fnv1a(body) != sum {
                break; // torn tail: the crash garbled the last write
            }
            let request = match StoreRequest::decode(body) {
                Ok(request) => request,
                Err(_) => break,
            };
            apply_mutation(&inner, &request)?;
            summary.records += 1;
            offset = body_start + len;
        }
        summary.torn_bytes = (raw.len() - offset) as u64;
        drop(raw);

        let file = OpenOptions::new()
            .create(true)
            .truncate(false)
            .read(true)
            .write(true)
            .open(&path)
            .map_err(|err| ObladiError::Storage(format!("cannot open op-log for append: {err}")))?;
        // Physically retire the torn tail: leaving the fragment in place
        // would turn into unexplained mid-log corruption once fresh records
        // are appended behind it.
        file.set_len(offset as u64).map_err(|err| {
            ObladiError::Storage(format!("cannot truncate torn op-log tail: {err}"))
        })?;
        use std::io::Seek;
        let mut file = file;
        file.seek(std::io::SeekFrom::End(0))
            .map_err(|err| ObladiError::Storage(format!("cannot seek op-log: {err}")))?;

        Ok((
            DurableStore {
                inner,
                oplog: RwLock::new(file),
                path,
                wedged: std::sync::atomic::AtomicBool::new(false),
            },
            summary,
        ))
    }

    /// Path of the op-log file (diagnostics).
    pub fn oplog_path(&self) -> &Path {
        &self.path
    }

    /// Applies a mutation and makes it durable before returning; the op-log
    /// lock serialises mutations so the log order equals the applied order.
    fn log_mutation<T>(
        &self,
        request: &StoreRequest,
        apply: impl FnOnce(&InMemoryStore) -> Result<T>,
    ) -> Result<T> {
        debug_assert!(request.is_mutation());
        // The wedge check runs *inside* the lock: a mutation that queued
        // behind the one that wedged must not append past the gap.
        let mut file = self.oplog.write();
        self.check_wedged()?;
        // Apply in memory *first*: some mutations — a revert to a
        // garbage-collected version — legitimately fail, and a failing op
        // must never enter the log or replay would refuse to boot.
        let value = apply(&self.inner)?;
        let body = request.encode();
        let mut framed = Vec::with_capacity(RECORD_HEADER + body.len());
        framed.extend_from_slice(&(body.len() as u32).to_le_bytes());
        framed.extend_from_slice(&fnv1a(&body).to_le_bytes());
        framed.extend_from_slice(&body);
        // `File` is unbuffered in user space: write_all hands the bytes to
        // the kernel, which is exactly the durability a process kill tests.
        let written = file
            .write_all(&framed)
            .and_then(|()| file.flush())
            .map_err(|err| ObladiError::Storage(format!("op-log append failed: {err}")));
        if let Err(err) = written {
            // Memory is now ahead of disk; wedge so the divergent state can
            // never be observed or acknowledged (see the `wedged` field).
            self.wedged.store(true, std::sync::atomic::Ordering::SeqCst);
            return Err(err);
        }
        Ok(value)
    }

    /// Fails if the store has wedged (see the `wedged` field).
    fn check_wedged(&self) -> Result<()> {
        if self.wedged.load(std::sync::atomic::Ordering::SeqCst) {
            return Err(ObladiError::Storage(
                "durable store is wedged after an op-log write failure; restart the daemon \
                 to replay the log"
                    .into(),
            ));
        }
        Ok(())
    }
}

/// Replays one logged mutation against the rebuilding store.
fn apply_mutation(inner: &InMemoryStore, request: &StoreRequest) -> Result<()> {
    match request {
        StoreRequest::WriteBucket { bucket, slots } => {
            inner.write_bucket(*bucket, slots.clone())?;
        }
        StoreRequest::RevertBucket { bucket, version } => {
            inner.revert_bucket(*bucket, *version)?;
        }
        StoreRequest::PutMeta { key, value } => inner.put_meta(key, value.clone())?,
        StoreRequest::AppendLog { record } => {
            inner.append_log(record.clone())?;
        }
        StoreRequest::TruncateLog { up_to } => inner.truncate_log(*up_to)?,
        StoreRequest::TruncateLogTail { from } => inner.truncate_log_tail(*from)?,
        other => {
            return Err(ObladiError::Storage(format!(
                "non-mutating {other:?} found in op-log: file is corrupt"
            )))
        }
    }
    Ok(())
}

/// 32-bit FNV-1a, the op-log's torn-write detector.
fn fnv1a(data: &[u8]) -> u32 {
    let mut hash = 0x811C_9DC5u32;
    for &byte in data {
        hash ^= byte as u32;
        hash = hash.wrapping_mul(0x0100_0193);
    }
    hash
}

impl UntrustedStore for DurableStore {
    fn read_slot(&self, bucket: BucketId, slot: u32) -> Result<Bytes> {
        let _durable = self.oplog.read();
        self.check_wedged()?;
        self.inner.read_slot(bucket, slot)
    }

    fn read_bucket(&self, bucket: BucketId) -> Result<BucketSnapshot> {
        let _durable = self.oplog.read();
        self.check_wedged()?;
        self.inner.read_bucket(bucket)
    }

    fn write_bucket(&self, bucket: BucketId, slots: Vec<Bytes>) -> Result<Version> {
        let request = StoreRequest::WriteBucket {
            bucket,
            slots: slots.clone(),
        };
        self.log_mutation(&request, |inner| inner.write_bucket(bucket, slots))
    }

    fn bucket_version(&self, bucket: BucketId) -> Result<Version> {
        let _durable = self.oplog.read();
        self.check_wedged()?;
        self.inner.bucket_version(bucket)
    }

    fn revert_bucket(&self, bucket: BucketId, version: Version) -> Result<()> {
        let request = StoreRequest::RevertBucket { bucket, version };
        self.log_mutation(&request, |inner| inner.revert_bucket(bucket, version))
    }

    fn put_meta(&self, key: &str, value: Bytes) -> Result<()> {
        let request = StoreRequest::PutMeta {
            key: key.to_string(),
            value: value.clone(),
        };
        self.log_mutation(&request, |inner| inner.put_meta(key, value))
    }

    fn get_meta(&self, key: &str) -> Result<Option<Bytes>> {
        let _durable = self.oplog.read();
        self.check_wedged()?;
        self.inner.get_meta(key)
    }

    fn append_log(&self, record: Bytes) -> Result<u64> {
        let request = StoreRequest::AppendLog {
            record: record.clone(),
        };
        self.log_mutation(&request, |inner| inner.append_log(record))
    }

    fn read_log_from(&self, from: u64) -> Result<Vec<(u64, Bytes)>> {
        let _durable = self.oplog.read();
        self.check_wedged()?;
        self.inner.read_log_from(from)
    }

    fn read_log_page(&self, from: u64, max_bytes: usize) -> Result<(Vec<(u64, Bytes)>, bool)> {
        let _durable = self.oplog.read();
        self.check_wedged()?;
        self.inner.read_log_page(from, max_bytes)
    }

    fn truncate_log(&self, up_to: u64) -> Result<()> {
        let request = StoreRequest::TruncateLog { up_to };
        self.log_mutation(&request, |inner| inner.truncate_log(up_to))
    }

    fn truncate_log_tail(&self, from: u64) -> Result<()> {
        let request = StoreRequest::TruncateLogTail { from };
        self.log_mutation(&request, |inner| inner.truncate_log_tail(from))
    }

    fn stats(&self) -> StoreStats {
        self.inner.stats()
    }

    fn reset_stats(&self) {
        self.inner.reset_stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("obladi-disk-test-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn state_survives_reopen() {
        let dir = temp_dir("reopen");
        {
            let (store, summary) = DurableStore::open(&dir).unwrap();
            assert_eq!(summary.records, 0);
            store
                .write_bucket(3, vec![Bytes::from_static(b"v1")])
                .unwrap();
            store
                .write_bucket(3, vec![Bytes::from_static(b"v2")])
                .unwrap();
            store.revert_bucket(3, 1).unwrap();
            store.put_meta("ckpt", Bytes::from_static(b"meta")).unwrap();
            store.append_log(Bytes::from_static(b"r0")).unwrap();
            store.append_log(Bytes::from_static(b"r1")).unwrap();
            store.truncate_log(1).unwrap();
        }
        let (store, summary) = DurableStore::open(&dir).unwrap();
        assert_eq!(summary.records, 7);
        assert_eq!(summary.torn_bytes, 0);
        assert_eq!(&store.read_slot(3, 0).unwrap()[..], b"v1");
        assert_eq!(store.bucket_version(3).unwrap(), 1);
        assert_eq!(
            store.get_meta("ckpt").unwrap(),
            Some(Bytes::from_static(b"meta"))
        );
        let log = store.read_log_from(0).unwrap();
        assert_eq!(log.len(), 1);
        assert_eq!(log[0].0, 1);
        // Sequence numbers continue past the replayed history.
        assert_eq!(store.append_log(Bytes::from_static(b"r2")).unwrap(), 2);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_tail_is_truncated_not_fatal() {
        let dir = temp_dir("torn");
        {
            let (store, _) = DurableStore::open(&dir).unwrap();
            store
                .write_bucket(1, vec![Bytes::from_static(b"keep")])
                .unwrap();
        }
        // Simulate a kill mid-append: a record header promising more bytes
        // than exist.
        let path = dir.join(OPLOG_FILE);
        let mut file = OpenOptions::new().append(true).open(&path).unwrap();
        file.write_all(&100u32.to_le_bytes()).unwrap();
        file.write_all(&0u32.to_le_bytes()).unwrap();
        file.write_all(b"only a few bytes").unwrap();
        drop(file);

        let (store, summary) = DurableStore::open(&dir).unwrap();
        assert_eq!(summary.records, 1);
        assert!(summary.torn_bytes > 0);
        assert_eq!(&store.read_slot(1, 0).unwrap()[..], b"keep");

        // The fragment was physically retired: appending fresh records and
        // reopening must replay cleanly.
        store
            .write_bucket(2, vec![Bytes::from_static(b"fresh")])
            .unwrap();
        let (store, summary) = DurableStore::open(&dir).unwrap();
        assert_eq!(summary.records, 2);
        assert_eq!(summary.torn_bytes, 0);
        assert_eq!(&store.read_slot(2, 0).unwrap()[..], b"fresh");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn garbled_tail_checksum_is_rejected() {
        let dir = temp_dir("garbled");
        {
            let (store, _) = DurableStore::open(&dir).unwrap();
            store
                .write_bucket(1, vec![Bytes::from_static(b"keep")])
                .unwrap();
            store
                .write_bucket(2, vec![Bytes::from_static(b"flip")])
                .unwrap();
        }
        // Flip a byte in the last record's body.
        let path = dir.join(OPLOG_FILE);
        let mut raw = std::fs::read(&path).unwrap();
        let last = raw.len() - 1;
        raw[last] ^= 0xFF;
        std::fs::write(&path, &raw).unwrap();

        let (store, summary) = DurableStore::open(&dir).unwrap();
        assert_eq!(summary.records, 1, "garbled record must not replay");
        assert!(summary.torn_bytes > 0);
        assert_eq!(&store.read_slot(1, 0).unwrap()[..], b"keep");
        assert!(store.read_slot(2, 0).is_err());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn reads_do_not_grow_the_oplog() {
        let dir = temp_dir("reads");
        let (store, _) = DurableStore::open(&dir).unwrap();
        store
            .write_bucket(1, vec![Bytes::from_static(b"x")])
            .unwrap();
        let size_after_write = std::fs::metadata(store.oplog_path()).unwrap().len();
        store.read_slot(1, 0).unwrap();
        store.read_bucket(1).unwrap();
        store.get_meta("nope").unwrap();
        store.read_log_from(0).unwrap();
        store.stats();
        assert_eq!(
            std::fs::metadata(store.oplog_path()).unwrap().len(),
            size_after_write
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
