//! Durable storage for the `obladi-stored` daemon: an [`InMemoryStore`]
//! made crash-safe by a replayed operation log.
//!
//! The paper assumes the untrusted cloud store is itself *fault-tolerant*
//! (§5: crashes of the storage tier are the provider's problem) — so when
//! the reproduction moves storage into a separate process that can be
//! `kill -9`ed, that process must honour the assumption: **any operation it
//! acknowledged must survive its own death**.  [`DurableStore`] delivers
//! that with the simplest correct design:
//!
//! * every *mutating* [`StoreRequest`] is appended to an on-disk op-log
//!   (length + checksum framed, encoded with the same wire schema the RPC
//!   uses) *before* the operation is acknowledged;
//! * on start-up the log is replayed in order against a fresh
//!   [`InMemoryStore`], rebuilding exactly the acknowledged state;
//! * a torn trailing record — a write the crash cut short, necessarily
//!   unacknowledged — is detected by its checksum/length and physically
//!   truncated away, so it can never be mistaken for data.
//!
//! Reads are served from memory and never touch the log.  A `SIGKILL` only
//! discards process-buffered state, and the log is written straight through
//! to the kernel before each acknowledgement, so the durability contract
//! holds for process kills (machine-level durability would additionally
//! need fsync, which the reproduction deliberately skips — the chaos
//! harness kills processes, not the host).  If an op-log append itself
//! fails (disk full), the store *wedges*: memory would be ahead of disk,
//! so every subsequent operation fail-stops until a restart replays the
//! logged prefix — an unacknowledgeable state can never be served.
//!
//! # Op-log compaction
//!
//! An append-only op-log makes boot replay cost O(total mutations ever
//! served).  The store therefore compacts periodically: every
//! `compact_every` acknowledged mutations it writes a *checksummed state
//! snapshot* (the full [`InMemoryStore`] state, including bucket version
//! history and log sequence numbers) and starts a fresh op-log, so replay
//! cost is bounded by one snapshot load plus at most `compact_every`
//! records.  Crash safety comes from generation-named op-logs:
//!
//! * the snapshot is written to a temp file and atomically renamed into
//!   place; it names the op-log *generation* it supersedes, and each
//!   generation's records live in their own file (`store.oplog`,
//!   `store.oplog.1`, `store.oplog.2`, …);
//! * boot loads the newest snapshot (if any) and replays only the op-log
//!   file of the snapshot's generation — a kill between the snapshot
//!   rename and the old log's deletion leaves a stale file that is simply
//!   ignored (and cleaned up);
//! * the whole compaction runs under the mutation lock, so no operation
//!   can be acknowledged into the superseded log after its snapshot.
//!
//! A compaction that *fails* mid-way wedges the store like an append
//! failure does — the log cut-over may not have happened, and appending
//! past it could lose acknowledged mutations at the next boot.  The
//! mutation that triggered an automatic compaction is still acknowledged
//! with `Ok` (it was durably logged before the compaction began; a crash
//! at any point replays it), so callers never see a durable write reported
//! as failed.

use crate::memory::InMemoryStore;
use crate::proto::StoreRequest;
use crate::traits::{BucketSnapshot, StoreStats, UntrustedStore};
use bytes::Bytes;
use obladi_common::error::{ObladiError, Result};
use obladi_common::types::{BucketId, Version};
use parking_lot::RwLock;
use std::fs::{File, OpenOptions};
use std::io::{Read, Write};
use std::path::{Path, PathBuf};

/// Name of the generation-0 op-log file inside the store's data directory
/// (later generations append `.<generation>`).
pub const OPLOG_FILE: &str = "store.oplog";

/// Name of the state-snapshot file inside the store's data directory.
pub const SNAPSHOT_FILE: &str = "store.snapshot";

/// Default mutation count between state snapshots (0 disables compaction).
pub const DEFAULT_COMPACT_EVERY: u64 = 4096;

/// Per-record framing overhead: u32 length + u32 FNV-1a checksum.
const RECORD_HEADER: usize = 8;

/// Upper bound on a single op-log record; matches the wire maximum plus
/// bucket-level overhead, and rejects absurd lengths from corrupt headers.
const MAX_RECORD: usize = crate::proto::MAX_WIRE_LEN + (1 << 16);

/// The mutable durability state behind the mutation lock: the current
/// generation's op-log file and the compaction counter.
struct Oplog {
    file: File,
    /// Which op-log generation `file` is (named by [`oplog_file_name`]).
    generation: u64,
    /// Acknowledged mutations since the last snapshot.
    since_snapshot: u64,
}

/// A crash-safe [`UntrustedStore`]: in-memory state plus a replayed op-log,
/// periodically compacted into state snapshots.
pub struct DurableStore {
    inner: InMemoryStore,
    /// The op-log, doubling as the state lock: mutations hold the write
    /// half across apply-to-memory *and* append-to-disk, and readers hold
    /// the read half, so no reader can observe a mutation that is applied
    /// in memory but not yet durable (a kill in that window would erase
    /// what the reader saw).
    oplog: RwLock<Oplog>,
    dir: PathBuf,
    /// Mutations between snapshots (0 = never compact).
    compact_every: u64,
    /// Set when an op-log append fails after its mutation was applied in
    /// memory (the two are now divergent, and serving *anything* from the
    /// divergent state could acknowledge data a restart will not rebuild)
    /// or when a post-mutation compaction fails (the log cut-over may not
    /// have happened, so acknowledging further mutations into a superseded
    /// log would lose them at the next boot).  A wedged store fail-stops
    /// every operation until the process restarts and replays the log
    /// (losing only unacknowledged work).
    wedged: std::sync::atomic::AtomicBool,
    /// Why the store wedged; included in every subsequent operation's
    /// error so the root cause is not lost behind the fail-stop.
    wedge_reason: parking_lot::Mutex<Option<String>>,
}

/// What [`DurableStore::open`] found on disk.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReplaySummary {
    /// Complete op-log records replayed (on top of the snapshot, if any).
    pub records: u64,
    /// Bytes of torn trailing data truncated away (0 = clean shutdown).
    pub torn_bytes: u64,
    /// Op-log generation restored (0 = never compacted; > 0 means a state
    /// snapshot was loaded first).
    pub snapshot_generation: u64,
}

/// File name of the op-log for `generation`.
fn oplog_file_name(generation: u64) -> String {
    if generation == 0 {
        OPLOG_FILE.to_string()
    } else {
        format!("{OPLOG_FILE}.{generation}")
    }
}

impl DurableStore {
    /// Opens (or creates) the store rooted at `dir`, loading the newest
    /// state snapshot (if one exists) and replaying its generation's
    /// op-log, with the default compaction cadence.
    pub fn open(dir: &Path) -> Result<(DurableStore, ReplaySummary)> {
        DurableStore::open_with_options(dir, DEFAULT_COMPACT_EVERY)
    }

    /// Like [`DurableStore::open`], with an explicit snapshot cadence
    /// (`compact_every` mutations between snapshots; 0 disables
    /// compaction).
    pub fn open_with_options(
        dir: &Path,
        compact_every: u64,
    ) -> Result<(DurableStore, ReplaySummary)> {
        std::fs::create_dir_all(dir).map_err(|err| {
            ObladiError::Storage(format!("cannot create data dir {}: {err}", dir.display()))
        })?;

        // ---- Load the snapshot, if any. ----
        let snapshot_path = dir.join(SNAPSHOT_FILE);
        let (inner, generation) = match std::fs::read(&snapshot_path) {
            Ok(framed) => {
                // The snapshot was renamed into place atomically, so a torn
                // file here is genuine corruption, not a crash artefact —
                // fail loudly rather than silently dropping state.
                if framed.len() < RECORD_HEADER {
                    return Err(ObladiError::Storage(format!(
                        "snapshot {} is too short",
                        snapshot_path.display()
                    )));
                }
                let len = u32::from_le_bytes(framed[..4].try_into().unwrap()) as usize;
                let sum = u32::from_le_bytes(framed[4..8].try_into().unwrap());
                let body = framed
                    .get(RECORD_HEADER..RECORD_HEADER + len)
                    .ok_or_else(|| {
                        ObladiError::Storage(format!(
                            "snapshot {} is truncated",
                            snapshot_path.display()
                        ))
                    })?;
                if fnv1a(body) != sum {
                    return Err(ObladiError::Storage(format!(
                        "snapshot {} fails its checksum",
                        snapshot_path.display()
                    )));
                }
                if body.len() < 8 {
                    return Err(ObladiError::Storage("snapshot body too short".into()));
                }
                let generation = u64::from_le_bytes(body[..8].try_into().unwrap());
                (InMemoryStore::import_snapshot(&body[8..])?, generation)
            }
            Err(err) if err.kind() == std::io::ErrorKind::NotFound => (InMemoryStore::new(), 0),
            Err(err) => {
                return Err(ObladiError::Storage(format!(
                    "cannot read snapshot {}: {err}",
                    snapshot_path.display()
                )))
            }
        };

        let mut summary = ReplaySummary {
            records: 0,
            torn_bytes: 0,
            snapshot_generation: generation,
        };

        // ---- Replay this generation's op-log on top. ----
        let path = dir.join(oplog_file_name(generation));
        let mut raw = Vec::new();
        match File::open(&path) {
            Ok(mut file) => {
                file.read_to_end(&mut raw)
                    .map_err(|err| ObladiError::Storage(format!("cannot read op-log: {err}")))?;
            }
            Err(err) if err.kind() == std::io::ErrorKind::NotFound => {}
            Err(err) => {
                return Err(ObladiError::Storage(format!(
                    "cannot open op-log {}: {err}",
                    path.display()
                )))
            }
        }

        let mut offset = 0usize;
        while raw.len() - offset >= RECORD_HEADER {
            let len = u32::from_le_bytes(raw[offset..offset + 4].try_into().unwrap()) as usize;
            let sum = u32::from_le_bytes(raw[offset + 4..offset + 8].try_into().unwrap());
            let body_start = offset + RECORD_HEADER;
            if len > MAX_RECORD || body_start + len > raw.len() {
                break; // torn or garbled tail
            }
            let body = &raw[body_start..body_start + len];
            if fnv1a(body) != sum {
                break; // torn tail: the crash garbled the last write
            }
            let request = match StoreRequest::decode(body) {
                Ok(request) => request,
                Err(_) => break,
            };
            apply_mutation(&inner, &request)?;
            summary.records += 1;
            offset = body_start + len;
        }
        summary.torn_bytes = (raw.len() - offset) as u64;
        drop(raw);

        let file = OpenOptions::new()
            .create(true)
            .truncate(false)
            .read(true)
            .write(true)
            .open(&path)
            .map_err(|err| ObladiError::Storage(format!("cannot open op-log for append: {err}")))?;
        // Physically retire the torn tail: leaving the fragment in place
        // would turn into unexplained mid-log corruption once fresh records
        // are appended behind it.
        file.set_len(offset as u64).map_err(|err| {
            ObladiError::Storage(format!("cannot truncate torn op-log tail: {err}"))
        })?;
        use std::io::Seek;
        let mut file = file;
        file.seek(std::io::SeekFrom::End(0))
            .map_err(|err| ObladiError::Storage(format!("cannot seek op-log: {err}")))?;

        let store = DurableStore {
            inner,
            oplog: RwLock::new(Oplog {
                file,
                generation,
                since_snapshot: summary.records,
            }),
            dir: dir.to_path_buf(),
            compact_every,
            wedged: std::sync::atomic::AtomicBool::new(false),
            wedge_reason: parking_lot::Mutex::new(None),
        };
        // Clean up op-logs of other generations: a kill between the
        // snapshot rename and the old log's removal leaves one behind, and
        // it must never be replayed again.
        store.remove_stale_oplogs(generation);
        Ok((store, summary))
    }

    /// Path of the current generation's op-log file (diagnostics).
    pub fn oplog_path(&self) -> PathBuf {
        self.dir.join(oplog_file_name(self.oplog.read().generation))
    }

    /// The op-log generation currently being appended to (increments on
    /// every compaction).
    pub fn oplog_generation(&self) -> u64 {
        self.oplog.read().generation
    }

    /// Forces a compaction now (tests and operational tooling); normal
    /// operation compacts automatically every `compact_every` mutations.
    pub fn compact_now(&self) -> Result<()> {
        let mut oplog = self.oplog.write();
        self.check_wedged()?;
        if let Err(err) = self.compact_locked(&mut oplog) {
            // Same hazard as the automatic path: the snapshot may have
            // been renamed into place without the log cut-over, so further
            // acknowledgements into the superseded log would be lost.
            self.wedge(format!("explicit compaction failed: {err}"));
            return Err(err);
        }
        Ok(())
    }

    /// Writes a checksummed state snapshot superseding the current op-log
    /// and switches appends to a fresh, next-generation log file.  Runs
    /// under the mutation lock, so the snapshot and the log cut are atomic
    /// with respect to every acknowledgement.
    fn compact_locked(&self, oplog: &mut Oplog) -> Result<()> {
        let next_generation = oplog.generation + 1;
        let body_state = self.inner.export_snapshot();
        let mut body = Vec::with_capacity(8 + body_state.len());
        body.extend_from_slice(&next_generation.to_le_bytes());
        body.extend_from_slice(&body_state);
        // The frame's u32 length must not silently truncate a huge state:
        // boot would read a wrapped length, fail the checksum, and — with
        // the old log already superseded — lose every acknowledged
        // mutation.  Failing here instead wedges the store with the
        // previous snapshot + log pair fully intact.
        if body.len() > u32::MAX as usize {
            return Err(ObladiError::Storage(format!(
                "store state of {} bytes exceeds the snapshot frame limit; raise \
                 compact_every or shard the store",
                body.len()
            )));
        }
        let mut framed = Vec::with_capacity(RECORD_HEADER + body.len());
        framed.extend_from_slice(&(body.len() as u32).to_le_bytes());
        framed.extend_from_slice(&fnv1a(&body).to_le_bytes());
        framed.extend_from_slice(&body);

        // Write-then-rename: the snapshot becomes visible atomically, and a
        // kill before the rename leaves the previous snapshot + op-log pair
        // fully intact.
        let tmp = self.dir.join(format!("{SNAPSHOT_FILE}.tmp"));
        let final_path = self.dir.join(SNAPSHOT_FILE);
        let write = || -> std::io::Result<()> {
            let mut file = File::create(&tmp)?;
            file.write_all(&framed)?;
            file.flush()?;
            std::fs::rename(&tmp, &final_path)
        };
        write().map_err(|err| ObladiError::Storage(format!("snapshot write failed: {err}")))?;

        // Fresh log for the new generation; the old one is superseded by
        // the snapshot and removed (best effort — boot ignores it anyway).
        let new_path = self.dir.join(oplog_file_name(next_generation));
        let file = OpenOptions::new()
            .create(true)
            .truncate(true)
            .read(true)
            .write(true)
            .open(&new_path)
            .map_err(|err| {
                ObladiError::Storage(format!("cannot open fresh op-log after snapshot: {err}"))
            })?;
        let old_generation = oplog.generation;
        oplog.file = file;
        oplog.generation = next_generation;
        oplog.since_snapshot = 0;
        let _ = std::fs::remove_file(self.dir.join(oplog_file_name(old_generation)));
        Ok(())
    }

    /// Removes op-log files of generations other than `keep` (stale logs a
    /// kill mid-compaction may have left behind).
    fn remove_stale_oplogs(&self, keep: u64) {
        let Ok(entries) = std::fs::read_dir(&self.dir) else {
            return;
        };
        let keep_name = oplog_file_name(keep);
        for entry in entries.flatten() {
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            if name != keep_name
                && (name == OPLOG_FILE || name.starts_with(&format!("{OPLOG_FILE}.")))
            {
                let _ = std::fs::remove_file(entry.path());
            }
        }
    }

    /// Applies a mutation and makes it durable before returning; the op-log
    /// lock serialises mutations so the log order equals the applied order.
    fn log_mutation<T>(
        &self,
        request: &StoreRequest,
        apply: impl FnOnce(&InMemoryStore) -> Result<T>,
    ) -> Result<T> {
        debug_assert!(request.is_mutation());
        // The wedge check runs *inside* the lock: a mutation that queued
        // behind the one that wedged must not append past the gap.
        let mut oplog = self.oplog.write();
        self.check_wedged()?;
        // Apply in memory *first*: some mutations — a revert to a
        // garbage-collected version — legitimately fail, and a failing op
        // must never enter the log or replay would refuse to boot.
        let value = apply(&self.inner)?;
        let body = request.encode();
        let mut framed = Vec::with_capacity(RECORD_HEADER + body.len());
        framed.extend_from_slice(&(body.len() as u32).to_le_bytes());
        framed.extend_from_slice(&fnv1a(&body).to_le_bytes());
        framed.extend_from_slice(&body);
        // `File` is unbuffered in user space: write_all hands the bytes to
        // the kernel, which is exactly the durability a process kill tests.
        let written = oplog
            .file
            .write_all(&framed)
            .and_then(|()| oplog.file.flush())
            .map_err(|err| ObladiError::Storage(format!("op-log append failed: {err}")));
        if let Err(err) = written {
            // Memory is now ahead of disk; wedge so the divergent state can
            // never be observed or acknowledged (see the `wedged` field).
            self.wedge(format!("op-log append failed: {err}"));
            return Err(err);
        }
        let obs = obladi_obs::global();
        obs.counter("daemon.oplog.appends").inc();
        obs.counter("daemon.oplog.bytes").add(framed.len() as u64);
        oplog.since_snapshot += 1;
        if self.compact_every > 0 && oplog.since_snapshot >= self.compact_every {
            // Compactions run under the mutation lock, so their duration is
            // a stall every queued mutation pays — worth a histogram.
            let pause = obs.histogram("daemon.compaction.pause_us");
            if let Err(err) = pause.time(|| self.compact_locked(&mut oplog)) {
                // A failed compaction may have renamed the new snapshot
                // into place without cutting over the log; continuing to
                // acknowledge into the superseded log would lose those
                // mutations at the next boot, so wedge.  The *triggering*
                // mutation, however, is already durable — it was appended
                // above, and a half-finished compaction leaves either the
                // old snapshot + log pair or the renamed new snapshot
                // (which folds it in) intact — so acknowledge it with
                // `Ok`: an `Err` here would tell the caller a durably
                // applied write failed, inviting a double-apply after the
                // respawn replays it.  The compaction failure surfaces on
                // every subsequent operation via the wedge reason.
                self.wedge(format!(
                    "compaction failed after a durably logged mutation: {err}"
                ));
            }
        }
        Ok(value)
    }

    /// Fail-stops the store, recording why (see the `wedged` field).
    fn wedge(&self, reason: String) {
        obladi_obs::global().counter("daemon.wedges").inc();
        // The reason string is unbounded, so it goes to the trace (typed
        // event + the retained reason), not a metric name.
        obladi_obs::trace::global().record("daemon.wedge", 0, 0);
        *self.wedge_reason.lock() = Some(reason);
        self.wedged.store(true, std::sync::atomic::Ordering::SeqCst);
    }

    /// Fails if the store has wedged (see the `wedged` field).
    fn check_wedged(&self) -> Result<()> {
        if self.wedged.load(std::sync::atomic::Ordering::SeqCst) {
            let reason = self
                .wedge_reason
                .lock()
                .clone()
                .unwrap_or_else(|| "op-log write failure".into());
            return Err(ObladiError::Storage(format!(
                "durable store is wedged ({reason}); restart the daemon to replay the log"
            )));
        }
        Ok(())
    }
}

/// Replays one logged mutation against the rebuilding store.
fn apply_mutation(inner: &InMemoryStore, request: &StoreRequest) -> Result<()> {
    match request {
        StoreRequest::WriteBucket { bucket, slots } => {
            inner.write_bucket(*bucket, slots.clone())?;
        }
        StoreRequest::RevertBucket { bucket, version } => {
            inner.revert_bucket(*bucket, *version)?;
        }
        StoreRequest::PutMeta { key, value } => inner.put_meta(key, value.clone())?,
        StoreRequest::AppendLog { record } => {
            inner.append_log(record.clone())?;
        }
        StoreRequest::TruncateLog { up_to } => inner.truncate_log(*up_to)?,
        StoreRequest::TruncateLogTail { from } => inner.truncate_log_tail(*from)?,
        other => {
            return Err(ObladiError::Storage(format!(
                "non-mutating {other:?} found in op-log: file is corrupt"
            )))
        }
    }
    Ok(())
}

/// 32-bit FNV-1a, the op-log's torn-write detector.
fn fnv1a(data: &[u8]) -> u32 {
    let mut hash = 0x811C_9DC5u32;
    for &byte in data {
        hash ^= byte as u32;
        hash = hash.wrapping_mul(0x0100_0193);
    }
    hash
}

impl UntrustedStore for DurableStore {
    fn read_slot(&self, bucket: BucketId, slot: u32) -> Result<Bytes> {
        let _durable = self.oplog.read();
        self.check_wedged()?;
        self.inner.read_slot(bucket, slot)
    }

    fn read_bucket(&self, bucket: BucketId) -> Result<BucketSnapshot> {
        let _durable = self.oplog.read();
        self.check_wedged()?;
        self.inner.read_bucket(bucket)
    }

    fn write_bucket(&self, bucket: BucketId, slots: Vec<Bytes>) -> Result<Version> {
        let request = StoreRequest::WriteBucket {
            bucket,
            slots: slots.clone(),
        };
        self.log_mutation(&request, |inner| inner.write_bucket(bucket, slots))
    }

    fn bucket_version(&self, bucket: BucketId) -> Result<Version> {
        let _durable = self.oplog.read();
        self.check_wedged()?;
        self.inner.bucket_version(bucket)
    }

    fn revert_bucket(&self, bucket: BucketId, version: Version) -> Result<()> {
        let request = StoreRequest::RevertBucket { bucket, version };
        self.log_mutation(&request, |inner| inner.revert_bucket(bucket, version))
    }

    fn put_meta(&self, key: &str, value: Bytes) -> Result<()> {
        let request = StoreRequest::PutMeta {
            key: key.to_string(),
            value: value.clone(),
        };
        self.log_mutation(&request, |inner| inner.put_meta(key, value))
    }

    fn get_meta(&self, key: &str) -> Result<Option<Bytes>> {
        let _durable = self.oplog.read();
        self.check_wedged()?;
        self.inner.get_meta(key)
    }

    fn append_log(&self, record: Bytes) -> Result<u64> {
        let request = StoreRequest::AppendLog {
            record: record.clone(),
        };
        self.log_mutation(&request, |inner| inner.append_log(record))
    }

    fn read_log_from(&self, from: u64) -> Result<Vec<(u64, Bytes)>> {
        let _durable = self.oplog.read();
        self.check_wedged()?;
        self.inner.read_log_from(from)
    }

    fn read_log_page(&self, from: u64, max_bytes: usize) -> Result<(Vec<(u64, Bytes)>, bool)> {
        let _durable = self.oplog.read();
        self.check_wedged()?;
        self.inner.read_log_page(from, max_bytes)
    }

    fn truncate_log(&self, up_to: u64) -> Result<()> {
        let request = StoreRequest::TruncateLog { up_to };
        self.log_mutation(&request, |inner| inner.truncate_log(up_to))
    }

    fn truncate_log_tail(&self, from: u64) -> Result<()> {
        let request = StoreRequest::TruncateLogTail { from };
        self.log_mutation(&request, |inner| inner.truncate_log_tail(from))
    }

    fn stats(&self) -> StoreStats {
        self.inner.stats()
    }

    fn reset_stats(&self) {
        self.inner.reset_stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("obladi-disk-test-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn state_survives_reopen() {
        let dir = temp_dir("reopen");
        {
            let (store, summary) = DurableStore::open(&dir).unwrap();
            assert_eq!(summary.records, 0);
            store
                .write_bucket(3, vec![Bytes::from_static(b"v1")])
                .unwrap();
            store
                .write_bucket(3, vec![Bytes::from_static(b"v2")])
                .unwrap();
            store.revert_bucket(3, 1).unwrap();
            store.put_meta("ckpt", Bytes::from_static(b"meta")).unwrap();
            store.append_log(Bytes::from_static(b"r0")).unwrap();
            store.append_log(Bytes::from_static(b"r1")).unwrap();
            store.truncate_log(1).unwrap();
        }
        let (store, summary) = DurableStore::open(&dir).unwrap();
        assert_eq!(summary.records, 7);
        assert_eq!(summary.torn_bytes, 0);
        assert_eq!(&store.read_slot(3, 0).unwrap()[..], b"v1");
        assert_eq!(store.bucket_version(3).unwrap(), 1);
        assert_eq!(
            store.get_meta("ckpt").unwrap(),
            Some(Bytes::from_static(b"meta"))
        );
        let log = store.read_log_from(0).unwrap();
        assert_eq!(log.len(), 1);
        assert_eq!(log[0].0, 1);
        // Sequence numbers continue past the replayed history.
        assert_eq!(store.append_log(Bytes::from_static(b"r2")).unwrap(), 2);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_tail_is_truncated_not_fatal() {
        let dir = temp_dir("torn");
        {
            let (store, _) = DurableStore::open(&dir).unwrap();
            store
                .write_bucket(1, vec![Bytes::from_static(b"keep")])
                .unwrap();
        }
        // Simulate a kill mid-append: a record header promising more bytes
        // than exist.
        let path = dir.join(OPLOG_FILE);
        let mut file = OpenOptions::new().append(true).open(&path).unwrap();
        file.write_all(&100u32.to_le_bytes()).unwrap();
        file.write_all(&0u32.to_le_bytes()).unwrap();
        file.write_all(b"only a few bytes").unwrap();
        drop(file);

        let (store, summary) = DurableStore::open(&dir).unwrap();
        assert_eq!(summary.records, 1);
        assert!(summary.torn_bytes > 0);
        assert_eq!(&store.read_slot(1, 0).unwrap()[..], b"keep");

        // The fragment was physically retired: appending fresh records and
        // reopening must replay cleanly.
        store
            .write_bucket(2, vec![Bytes::from_static(b"fresh")])
            .unwrap();
        let (store, summary) = DurableStore::open(&dir).unwrap();
        assert_eq!(summary.records, 2);
        assert_eq!(summary.torn_bytes, 0);
        assert_eq!(&store.read_slot(2, 0).unwrap()[..], b"fresh");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn garbled_tail_checksum_is_rejected() {
        let dir = temp_dir("garbled");
        {
            let (store, _) = DurableStore::open(&dir).unwrap();
            store
                .write_bucket(1, vec![Bytes::from_static(b"keep")])
                .unwrap();
            store
                .write_bucket(2, vec![Bytes::from_static(b"flip")])
                .unwrap();
        }
        // Flip a byte in the last record's body.
        let path = dir.join(OPLOG_FILE);
        let mut raw = std::fs::read(&path).unwrap();
        let last = raw.len() - 1;
        raw[last] ^= 0xFF;
        std::fs::write(&path, &raw).unwrap();

        let (store, summary) = DurableStore::open(&dir).unwrap();
        assert_eq!(summary.records, 1, "garbled record must not replay");
        assert!(summary.torn_bytes > 0);
        assert_eq!(&store.read_slot(1, 0).unwrap()[..], b"keep");
        assert!(store.read_slot(2, 0).is_err());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn automatic_compaction_bounds_replay() {
        let dir = temp_dir("autocompact");
        {
            let (store, _) = DurableStore::open_with_options(&dir, 8).unwrap();
            for i in 0..20u64 {
                store
                    .write_bucket(i % 3, vec![Bytes::from(i.to_le_bytes().to_vec())])
                    .unwrap();
            }
            assert!(
                store.oplog_generation() >= 2,
                "20 mutations at compact_every=8 must have snapshotted twice"
            );
        }
        let (store, summary) = DurableStore::open_with_options(&dir, 8).unwrap();
        assert!(summary.snapshot_generation >= 2);
        assert!(
            summary.records < 8,
            "replay must be bounded by the snapshot cadence, got {}",
            summary.records
        );
        // Full state survives through snapshot + residual log.
        assert_eq!(
            &store.read_slot(0, 0).unwrap()[..],
            &18u64.to_le_bytes()[..]
        );
        assert_eq!(
            &store.read_slot(1, 0).unwrap()[..],
            &19u64.to_le_bytes()[..]
        );
        // Version history survives the snapshot: reverts still work.
        let version = store.bucket_version(2).unwrap();
        store.revert_bucket(2, version - 1).unwrap();
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn stale_oplog_left_by_a_kill_mid_compaction_is_ignored() {
        let dir = temp_dir("stalelog");
        {
            let (store, _) = DurableStore::open_with_options(&dir, 0).unwrap();
            store
                .write_bucket(1, vec![Bytes::from_static(b"snapshotted")])
                .unwrap();
            store.compact_now().unwrap();
            store
                .write_bucket(2, vec![Bytes::from_static(b"gen1")])
                .unwrap();
        }
        // Simulate a kill *between* the snapshot rename and the old log's
        // deletion: resurrect a generation-0 log with a record that was
        // already folded into the snapshot (replaying it would double-apply
        // and corrupt the version numbering).
        let mut body = Vec::new();
        body.extend_from_slice(
            &StoreRequest::WriteBucket {
                bucket: 1,
                slots: vec![Bytes::from_static(b"stale-double-apply")],
            }
            .encode(),
        );
        let mut framed = Vec::new();
        framed.extend_from_slice(&(body.len() as u32).to_le_bytes());
        framed.extend_from_slice(&fnv1a(&body).to_le_bytes());
        framed.extend_from_slice(&body);
        std::fs::write(dir.join(OPLOG_FILE), &framed).unwrap();

        let (store, summary) = DurableStore::open_with_options(&dir, 0).unwrap();
        assert_eq!(summary.snapshot_generation, 1);
        assert_eq!(
            &store.read_slot(1, 0).unwrap()[..],
            b"snapshotted",
            "the stale generation-0 log must not replay"
        );
        assert_eq!(store.bucket_version(1).unwrap(), 1);
        assert_eq!(&store.read_slot(2, 0).unwrap()[..], b"gen1");
        assert!(
            !dir.join(OPLOG_FILE).exists(),
            "the stale log must be cleaned up at open"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn compaction_disabled_keeps_the_legacy_single_log() {
        let dir = temp_dir("nocompact");
        {
            let (store, _) = DurableStore::open_with_options(&dir, 0).unwrap();
            for i in 0..30u64 {
                store
                    .write_bucket(0, vec![Bytes::from(i.to_le_bytes().to_vec())])
                    .unwrap();
            }
            assert_eq!(store.oplog_generation(), 0);
        }
        let (_store, summary) = DurableStore::open_with_options(&dir, 0).unwrap();
        assert_eq!(summary.snapshot_generation, 0);
        assert_eq!(summary.records, 30, "uncompacted replay covers everything");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_tail_after_compaction_is_still_tolerated() {
        let dir = temp_dir("torn-gen1");
        {
            let (store, _) = DurableStore::open_with_options(&dir, 0).unwrap();
            store
                .write_bucket(1, vec![Bytes::from_static(b"base")])
                .unwrap();
            store.compact_now().unwrap();
            store
                .write_bucket(2, vec![Bytes::from_static(b"keep")])
                .unwrap();
        }
        // Tear the generation-1 log's tail.
        let path = dir.join(format!("{OPLOG_FILE}.1"));
        let mut file = OpenOptions::new().append(true).open(&path).unwrap();
        file.write_all(&100u32.to_le_bytes()).unwrap();
        file.write_all(&0u32.to_le_bytes()).unwrap();
        file.write_all(b"partial").unwrap();
        drop(file);

        let (store, summary) = DurableStore::open_with_options(&dir, 0).unwrap();
        assert_eq!(summary.snapshot_generation, 1);
        assert_eq!(summary.records, 1);
        assert!(summary.torn_bytes > 0);
        assert_eq!(&store.read_slot(1, 0).unwrap()[..], b"base");
        assert_eq!(&store.read_slot(2, 0).unwrap()[..], b"keep");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn reads_do_not_grow_the_oplog() {
        let dir = temp_dir("reads");
        let (store, _) = DurableStore::open(&dir).unwrap();
        store
            .write_bucket(1, vec![Bytes::from_static(b"x")])
            .unwrap();
        let size_after_write = std::fs::metadata(store.oplog_path()).unwrap().len();
        store.read_slot(1, 0).unwrap();
        store.read_bucket(1).unwrap();
        store.get_meta("nope").unwrap();
        store.read_log_from(0).unwrap();
        store.stats();
        assert_eq!(
            std::fs::metadata(store.oplog_path()).unwrap().len(),
            size_after_write
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
