//! Untrusted cloud storage for the Obladi reproduction.
//!
//! The paper's storage server is an untrusted, fault-tolerant key-value
//! service holding two units (§5): the *ORAM tree* (encrypted buckets) and
//! the *recovery unit* (a write-ahead log plus checkpoints of proxy
//! metadata).  This crate provides both behind the [`UntrustedStore`] trait,
//! together with:
//!
//! * [`memory::InMemoryStore`] — the reference backend (a remote in-memory
//!   hashmap in the paper's evaluation);
//! * [`latency::LatencyStore`] — a wrapper injecting the latency profiles of
//!   §11.2 (`dummy`, `server`, `server WAN`, `dynamo`) and enforcing the
//!   DynamoDB client's bounded parallelism;
//! * [`faulty::FaultyStore`] — a fault-injection wrapper used by tests to
//!   exercise integrity verification and retry paths;
//! * [`wal::WriteAheadLog`] — sequence-numbered append-only log storage;
//! * [`counter::TrustedCounter`] — the persistent epoch/read-batch counter
//!   `F_epc` of Appendix A/B that survives proxy crashes;
//! * [`proto`] — the wire schema of every store operation, shared by the
//!   `obladi-transport` RPC layer and the `obladi-stored` daemon's op-log;
//! * [`disk::DurableStore`] — the daemon-side crash-safe store (in-memory
//!   state rebuilt from a checksummed, torn-tail-tolerant op-log);
//! * [`audit::RecordingStore`] — the adversary-view tap: records what an
//!   observer of this boundary sees (op kinds, addresses, sealed payload
//!   lengths, wire frame sizes) for the obliviousness auditor.
//!
//! Everything stored here is opaque bytes: encryption, MACs and padding are
//! applied by the proxy (`obladi-crypto::Envelope`) *before* data reaches
//! this crate, mirroring the trust boundary of the real system.

#![warn(missing_docs)]

pub mod audit;
pub mod counter;
pub mod disk;
pub mod faulty;
pub mod latency;
pub mod memory;
pub mod proto;
pub mod traits;
pub mod wal;

pub use audit::RecordingStore;
pub use counter::TrustedCounter;
pub use disk::{DurableStore, ReplaySummary};
pub use faulty::{CrashOp, CrashPoint, FaultPlan, FaultyStore};
pub use latency::LatencyStore;
pub use memory::InMemoryStore;
pub use proto::{
    StoreRequest, StoreResponse, WireError, WireErrorKind, WireHistogram, WireMetrics,
};
pub use traits::{BucketSnapshot, StoreStats, UntrustedStore};
pub use wal::WriteAheadLog;

use obladi_common::config::BackendKind;
use obladi_common::latency::LatencyProfile;
use std::sync::Arc;

/// Builds the storage stack used by the evaluation: an in-memory store
/// wrapped in the latency profile for `backend`, scaled by `latency_scale`.
pub fn build_backend(
    backend: BackendKind,
    latency_scale: f64,
    seed: u64,
) -> Arc<dyn UntrustedStore> {
    let base = Arc::new(InMemoryStore::new());
    let profile = LatencyProfile::for_backend(backend).scaled(latency_scale);
    Arc::new(LatencyStore::new(base, profile, seed))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_backend_produces_working_store() {
        let store = build_backend(BackendKind::Server, 0.0, 1);
        store
            .write_bucket(3, vec![bytes::Bytes::from_static(b"slot")])
            .unwrap();
        let data = store.read_slot(3, 0).unwrap();
        assert_eq!(&data[..], b"slot");
    }
}
