//! The [`UntrustedStore`] trait: what the proxy assumes of cloud storage.
//!
//! The interface deliberately mirrors what Ring ORAM needs from a server:
//!
//! * reading a *single slot* of a bucket (the access phase reads one slot
//!   per bucket along a path, §4);
//! * replacing a whole bucket with a freshly permuted, re-encrypted set of
//!   slots (the eviction write phase), which creates a *new version* of the
//!   bucket rather than updating it in place — Obladi's shadow-paging
//!   recovery (§8) relies on being able to revert buckets to the version of
//!   the last durable epoch;
//! * an auxiliary metadata area and an append-only log for the recovery
//!   unit (checkpoints, read-path logs).
//!
//! Implementations must be thread-safe: the parallel ORAM executor issues
//! many requests concurrently from a worker pool.

use bytes::Bytes;
use obladi_common::error::Result;
use obladi_common::types::{BucketId, Version};

/// A snapshot of one bucket: its current version and the slot payloads.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BucketSnapshot {
    /// Version number of the bucket (increments on every write).
    pub version: Version,
    /// Sealed slot payloads (length `Z + S` once the ORAM has initialised
    /// the bucket; empty for never-written buckets).
    pub slots: Vec<Bytes>,
}

/// Cumulative operation counters, used to report the "Network" column of
/// Table 11b and to sanity-check workload independence in tests.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Number of slot reads served.
    pub slot_reads: u64,
    /// Number of bucket writes applied.
    pub bucket_writes: u64,
    /// Number of metadata reads (checkpoints fetched, log scans).
    pub meta_reads: u64,
    /// Number of metadata writes / log appends.
    pub meta_writes: u64,
    /// Total payload bytes read.
    pub bytes_read: u64,
    /// Total payload bytes written.
    pub bytes_written: u64,
}

impl StoreStats {
    /// Total number of requests of any kind.
    pub fn total_requests(&self) -> u64 {
        self.slot_reads + self.bucket_writes + self.meta_reads + self.meta_writes
    }

    /// Total bytes moved in either direction.
    pub fn total_bytes(&self) -> u64 {
        self.bytes_read + self.bytes_written
    }
}

/// The untrusted storage server.
///
/// All methods take `&self`; implementations use interior mutability and may
/// be called concurrently from many executor threads.
pub trait UntrustedStore: Send + Sync {
    /// Reads a single slot of a bucket.
    ///
    /// Returns the sealed slot bytes.  Reading a slot of a bucket that has
    /// never been written, or a slot index past the end of the bucket,
    /// returns a `Storage` error — the ORAM client never does this for a
    /// correctly initialised tree.
    fn read_slot(&self, bucket: BucketId, slot: u32) -> Result<Bytes>;

    /// Reads an entire bucket (used during recovery and by tests).
    fn read_bucket(&self, bucket: BucketId) -> Result<BucketSnapshot>;

    /// Replaces the contents of a bucket, creating a new version.
    ///
    /// Returns the new version number.
    fn write_bucket(&self, bucket: BucketId, slots: Vec<Bytes>) -> Result<Version>;

    /// Current version of a bucket (0 if never written).
    fn bucket_version(&self, bucket: BucketId) -> Result<Version>;

    /// Reverts a bucket to an older version (shadow paging).  Reverting to
    /// the current version is a no-op; reverting to a version that has been
    /// garbage-collected returns a `Storage` error.
    fn revert_bucket(&self, bucket: BucketId, version: Version) -> Result<()>;

    /// Writes a metadata object (checkpoints, manifests).
    fn put_meta(&self, key: &str, value: Bytes) -> Result<()>;

    /// Reads a metadata object.
    fn get_meta(&self, key: &str) -> Result<Option<Bytes>>;

    /// Appends a record to the shared log and returns its sequence number
    /// (starting at 0).
    fn append_log(&self, record: Bytes) -> Result<u64>;

    /// Reads all log records with sequence number `>= from`, in order.
    fn read_log_from(&self, from: u64) -> Result<Vec<(u64, Bytes)>>;

    /// Reads log records with sequence number `>= from` until `max_bytes`
    /// of payload (plus per-record overhead) is reached; the flag reports
    /// whether records remain beyond the page.  At least one record is
    /// returned when any exists, however large.
    ///
    /// The remote-storage server pages `read_log_from` responses with
    /// this so a WAL that outgrew one wire frame transfers incrementally.
    /// The default materializes the full suffix and truncates — correct
    /// everywhere, efficient nowhere; stores that can should override it
    /// with a bounded scan.
    fn read_log_page(&self, from: u64, max_bytes: usize) -> Result<(Vec<(u64, Bytes)>, bool)> {
        let mut records = self.read_log_from(from)?;
        let mut budget = max_bytes;
        let mut keep = 0usize;
        for (_, data) in &records {
            let cost = 12 + data.len();
            if keep > 0 && cost > budget {
                break;
            }
            budget = budget.saturating_sub(cost);
            keep += 1;
        }
        let truncated = keep < records.len();
        records.truncate(keep);
        Ok((records, truncated))
    }

    /// Drops log records with sequence number `< up_to` (checkpointing).
    fn truncate_log(&self, up_to: u64) -> Result<()>;

    /// Drops log records with sequence number `>= from` (tail erasure).
    ///
    /// Recovery uses this to physically retire a *torn* final append (a
    /// record the crash left truncated or garbled).  Leaving the fragment
    /// in place would poison every later recovery: once fresh records are
    /// appended behind it, the fragment is no longer a tolerable tail but
    /// unexplained mid-log corruption.
    fn truncate_log_tail(&self, from: u64) -> Result<()>;

    /// Snapshot of the operation counters.
    fn stats(&self) -> StoreStats;

    /// Resets the operation counters (between benchmark phases).
    fn reset_stats(&self);

    /// Telemetry of the *process* hosting this store, when that process
    /// is not the caller's (the `obladi-stored` daemon records
    /// `daemon.*` metrics into its own registry, invisible to the proxy).
    /// In-process stores have nothing to add — their instrumentation
    /// already lands in the caller's registry — so the default is `None`.
    /// Wrappers should forward to their inner store.
    fn daemon_metrics(&self) -> Option<crate::proto::WireMetrics> {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn store_stats_totals() {
        let stats = StoreStats {
            slot_reads: 10,
            bucket_writes: 5,
            meta_reads: 2,
            meta_writes: 3,
            bytes_read: 100,
            bytes_written: 200,
        };
        assert_eq!(stats.total_requests(), 20);
        assert_eq!(stats.total_bytes(), 300);
    }

    #[test]
    fn default_stats_are_zero() {
        let stats = StoreStats::default();
        assert_eq!(stats.total_requests(), 0);
        assert_eq!(stats.total_bytes(), 0);
    }
}
