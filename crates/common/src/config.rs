//! Configuration structures mirroring Table 1 of the paper.
//!
//! | Symbol   | Meaning                                   |
//! |----------|-------------------------------------------|
//! | `N`      | Number of real objects                    |
//! | `Z`      | Number of real slots per bucket           |
//! | `S`      | Number of dummy slots per bucket          |
//! | `A`      | Frequency of `evict_path` (every A ops)   |
//! | `L`      | Number of levels in the ORAM tree         |
//! | `R`      | Number of read batches per epoch          |
//! | `b_read` | Size of a read batch                      |
//! | `b_write`| Size of the write batch                   |
//! | `Δ`      | Batch frequency                           |
//!
//! The evaluation of the paper runs Ring ORAM with `Z = 100`, `S = 196`,
//! `A = 168` and trees of 7 / 11 / 14 levels for 10K / 100K / 1M objects.
//! [`OramConfig::for_capacity`] reproduces those choices from `N` and `Z`
//! using the analytical model of the Ring ORAM paper (`S ≈ 2Z - 4`,
//! `A ≈ 1.68 Z`, smallest tree whose total real capacity covers `N`).

use crate::error::{ObladiError, Result};
use serde::{Deserialize, Serialize};
use std::time::Duration;

/// Which simulated storage backend the evaluation harness should use.
///
/// These correspond to the four backends of §11.2: a `dummy` backend that
/// stores nothing, a local in-memory server (0.3 ms ping), a WAN server
/// (10 ms ping) and a DynamoDB-like service (1 ms reads, 3 ms writes,
/// blocking client calls).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BackendKind {
    /// Local dummy storage: returns a static block, ignores writes.
    Dummy,
    /// Remote in-memory hashmap reachable with ~0.3 ms round trips.
    Server,
    /// Remote in-memory hashmap reachable with ~10 ms round trips.
    ServerWan,
    /// DynamoDB-like cloud store: ~1 ms reads, ~3 ms writes, limited
    /// connection pool with blocking calls.
    Dynamo,
}

impl BackendKind {
    /// All backend kinds, in the order used by the paper's figures.
    pub const ALL: [BackendKind; 4] = [
        BackendKind::Dummy,
        BackendKind::Server,
        BackendKind::ServerWan,
        BackendKind::Dynamo,
    ];

    /// Human-readable name matching the paper's figure legends.
    pub fn name(&self) -> &'static str {
        match self {
            BackendKind::Dummy => "dummy",
            BackendKind::Server => "server",
            BackendKind::ServerWan => "server WAN",
            BackendKind::Dynamo => "dynamo",
        }
    }
}

/// Ring ORAM tree parameters (§4 and Table 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct OramConfig {
    /// `N`: number of real objects the tree must hold.
    pub num_objects: u64,
    /// `Z`: real slots per bucket.
    pub z: u32,
    /// `S`: dummy slots per bucket.
    pub s: u32,
    /// `A`: an `evict_path` is performed every `A` logical accesses.
    pub a: u32,
    /// `L`: number of levels in the tree (a tree with `L` levels has
    /// `2^(L-1)` leaves and `2^L - 1` buckets).
    pub levels: u32,
    /// Size in bytes of each value block stored in the ORAM.
    pub block_size: usize,
    /// Maximum number of blocks the stash may hold before the client
    /// reports [`ObladiError::StashOverflow`]. Also the size to which the
    /// stash is padded when checkpointed for durability (§8).
    pub max_stash: usize,
}

impl OramConfig {
    /// Derives a configuration for `num_objects` real objects with `z` real
    /// slots per bucket, following the analytical model used by the paper.
    ///
    /// # Examples
    ///
    /// ```
    /// use obladi_common::config::OramConfig;
    /// let cfg = OramConfig::for_capacity(100_000, 100);
    /// assert_eq!(cfg.z, 100);
    /// assert_eq!(cfg.s, 196);
    /// assert_eq!(cfg.a, 168);
    /// ```
    pub fn for_capacity(num_objects: u64, z: u32) -> Self {
        let z = z.max(1);
        // The Ring ORAM analytical model: S close to 2Z keeps early
        // reshuffles rare, A close to 1.68 Z keeps the stash bounded.  For
        // Z = 100 these give exactly the paper's S = 196, A = 168.
        let s = (2 * z).saturating_sub(4).max(1);
        let a = (((z as f64) * 1.68).round() as u32).max(1);
        let levels = Self::levels_for(num_objects, z);
        OramConfig {
            num_objects,
            z,
            s,
            a,
            levels,
            block_size: 128,
            max_stash: Self::default_max_stash(z),
        }
    }

    /// Small configuration convenient for unit tests: tiny buckets, frequent
    /// evictions, generous stash.
    pub fn small_for_tests(num_objects: u64) -> Self {
        let mut cfg = OramConfig::for_capacity(num_objects, 4);
        cfg.block_size = 32;
        cfg.max_stash = 512;
        cfg
    }

    /// Overrides the number of tree levels (the paper uses 7 / 11 / 14 for
    /// 10K / 100K / 1M objects).
    pub fn with_levels(mut self, levels: u32) -> Self {
        self.levels = levels.max(1);
        self
    }

    /// Overrides the block size in bytes.
    pub fn with_block_size(mut self, block_size: usize) -> Self {
        self.block_size = block_size.max(1);
        self
    }

    /// Overrides the maximum stash size.
    pub fn with_max_stash(mut self, max_stash: usize) -> Self {
        self.max_stash = max_stash.max(1);
        self
    }

    /// Number of leaves of the tree (`2^(levels - 1)`).
    pub fn num_leaves(&self) -> u64 {
        1u64 << (self.levels - 1)
    }

    /// Total number of buckets (`2^levels - 1`).
    pub fn num_buckets(&self) -> u64 {
        (1u64 << self.levels) - 1
    }

    /// Number of slots per bucket (`Z + S`).
    pub fn slots_per_bucket(&self) -> u32 {
        self.z + self.s
    }

    /// Total real-slot capacity of the tree.
    pub fn capacity(&self) -> u64 {
        self.num_buckets() * self.z as u64
    }

    /// Validates that the configuration is internally consistent.
    pub fn validate(&self) -> Result<()> {
        if self.z == 0 {
            return Err(ObladiError::Config("Z must be at least 1".into()));
        }
        if self.s == 0 {
            return Err(ObladiError::Config("S must be at least 1".into()));
        }
        if self.a == 0 {
            return Err(ObladiError::Config("A must be at least 1".into()));
        }
        if self.levels == 0 || self.levels > 40 {
            return Err(ObladiError::Config(format!(
                "levels must be in 1..=40, got {}",
                self.levels
            )));
        }
        if self.capacity() < self.num_objects {
            return Err(ObladiError::Config(format!(
                "tree capacity {} cannot hold {} objects",
                self.capacity(),
                self.num_objects
            )));
        }
        if self.block_size == 0 {
            return Err(ObladiError::Config("block size must be non-zero".into()));
        }
        Ok(())
    }

    /// Smallest number of levels whose real capacity covers `num_objects`.
    fn levels_for(num_objects: u64, z: u32) -> u32 {
        let mut levels = 1u32;
        while ((1u64 << levels) - 1) * z as u64 <= num_objects {
            levels += 1;
            if levels >= 40 {
                break;
            }
        }
        levels.max(2)
    }

    /// Default stash bound: the Ring ORAM analysis bounds the stash by a
    /// small multiple of Z plus a logarithmic term; we keep a comfortable
    /// margin because the stash is padded to this size when checkpointed.
    fn default_max_stash(z: u32) -> usize {
        (4 * z as usize).max(64)
    }
}

/// Epoch and batching parameters of the proxy (§6, Table 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct EpochConfig {
    /// `R`: number of read batches per epoch.
    pub read_batches: u32,
    /// `b_read`: number of logical slots in each read batch (padded with
    /// dummy requests when not full).
    pub read_batch_size: usize,
    /// `b_write`: number of logical slots in the single write batch.
    pub write_batch_size: usize,
    /// `Δ`: interval at which read batches are shipped to the ORAM
    /// executor when the proxy is driven by a timer.
    pub batch_interval: Duration,
    /// Number of worker threads used by the parallel ORAM executor.
    pub executor_threads: usize,
    /// How many epochs between full (rather than delta) checkpoints of the
    /// proxy metadata (Figure 11a sweeps this value).
    pub checkpoint_every: u32,
    /// Whether durability logging (path logs + checkpoints) is enabled.
    pub durability: bool,
    /// Epoch pipeline depth: how many epochs may be in flight on the proxy
    /// at once.  `1` finalises each epoch to durability before the next
    /// epoch's read batches start (the stop-the-world barrier); `2` lets
    /// epoch `N+1` execute its read batches while epoch `N`'s commit
    /// decision and write-back are still in flight (reads of keys the
    /// deciding epoch wrote are pinned to the pre-decision snapshot until
    /// the decision publishes).  Depths beyond 2 are not supported.
    pub pipeline_depth: u32,
    /// How many read batches the executor may have in flight against the
    /// ORAM concurrently *within* one epoch.  `1` reproduces the old
    /// strictly sequential executor; `2` (the default) lets the next
    /// batch's physical fetches overlap the previous batch's, hiding
    /// storage latency inside the epoch.  Batches are planned in order
    /// under the client lock, so the access pattern stays oblivious.
    pub read_batches_in_flight: usize,
}

impl Default for EpochConfig {
    fn default() -> Self {
        EpochConfig {
            read_batches: 4,
            read_batch_size: 64,
            write_batch_size: 64,
            batch_interval: Duration::from_millis(5),
            executor_threads: 8,
            checkpoint_every: 16,
            durability: true,
            pipeline_depth: 2,
            read_batches_in_flight: 2,
        }
    }
}

impl EpochConfig {
    /// An epoch configuration sized for OLTP-style workloads: many short
    /// transactions, a large write batch (the TPC-C configuration in §11.1
    /// uses a write batch of 2000).
    pub fn oltp() -> Self {
        EpochConfig {
            read_batches: 8,
            read_batch_size: 500,
            write_batch_size: 2000,
            batch_interval: Duration::from_millis(10),
            executor_threads: 16,
            checkpoint_every: 16,
            durability: true,
            pipeline_depth: 2,
            read_batches_in_flight: 2,
        }
    }

    /// A small configuration for unit tests: tiny batches so epoch-overflow
    /// paths are easy to exercise, no timer dependence.
    pub fn small_for_tests() -> Self {
        EpochConfig {
            read_batches: 3,
            read_batch_size: 8,
            write_batch_size: 8,
            batch_interval: Duration::from_millis(1),
            executor_threads: 2,
            checkpoint_every: 4,
            durability: true,
            pipeline_depth: 2,
            read_batches_in_flight: 2,
        }
    }

    /// Total number of logical read slots in an epoch (`R * b_read`).
    pub fn reads_per_epoch(&self) -> usize {
        self.read_batches as usize * self.read_batch_size
    }

    /// Upper bound on position-map entries that can change in one epoch;
    /// used to pad checkpoint deltas (§8, Optimizations).
    pub fn max_position_delta(&self) -> usize {
        self.reads_per_epoch() + self.write_batch_size
    }

    /// Validates the configuration.
    pub fn validate(&self) -> Result<()> {
        if self.read_batches == 0 {
            return Err(ObladiError::Config("R must be at least 1".into()));
        }
        if self.read_batch_size == 0 || self.write_batch_size == 0 {
            return Err(ObladiError::Config("batch sizes must be at least 1".into()));
        }
        if self.executor_threads == 0 {
            return Err(ObladiError::Config(
                "executor needs at least one thread".into(),
            ));
        }
        if self.checkpoint_every == 0 {
            return Err(ObladiError::Config(
                "checkpoint_every must be at least 1".into(),
            ));
        }
        if self.pipeline_depth == 0 || self.pipeline_depth > 2 {
            return Err(ObladiError::Config(format!(
                "pipeline_depth must be 1 or 2, got {}",
                self.pipeline_depth
            )));
        }
        if self.read_batches_in_flight == 0 {
            return Err(ObladiError::Config(
                "read_batches_in_flight must be at least 1".into(),
            ));
        }
        Ok(())
    }

    /// Sets the number of read batches.
    pub fn with_read_batches(mut self, r: u32) -> Self {
        self.read_batches = r;
        self
    }

    /// Sets the read batch size.
    pub fn with_read_batch_size(mut self, b: usize) -> Self {
        self.read_batch_size = b;
        self
    }

    /// Sets the write batch size.
    pub fn with_write_batch_size(mut self, b: usize) -> Self {
        self.write_batch_size = b;
        self
    }

    /// Sets the batch interval.
    pub fn with_batch_interval(mut self, d: Duration) -> Self {
        self.batch_interval = d;
        self
    }

    /// Sets the number of executor threads.
    pub fn with_executor_threads(mut self, t: usize) -> Self {
        self.executor_threads = t;
        self
    }

    /// Enables or disables durability logging.
    pub fn with_durability(mut self, on: bool) -> Self {
        self.durability = on;
        self
    }

    /// Sets the full-checkpoint frequency.
    pub fn with_checkpoint_every(mut self, n: u32) -> Self {
        self.checkpoint_every = n;
        self
    }

    /// Sets the epoch pipeline depth (1 = barrier, 2 = overlapped).
    pub fn with_pipeline_depth(mut self, depth: u32) -> Self {
        self.pipeline_depth = depth;
        self
    }

    /// Sets how many read batches may be in flight concurrently within one
    /// epoch (1 = strictly sequential).
    pub fn with_read_batches_in_flight(mut self, n: usize) -> Self {
        self.read_batches_in_flight = n;
        self
    }
}

/// Top-level configuration combining the ORAM tree, the epoch machinery and
/// the storage backend.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ObladiConfig {
    /// Ring ORAM parameters.
    pub oram: OramConfig,
    /// Epoch / batching parameters.
    pub epoch: EpochConfig,
    /// Which latency profile the storage backend simulates.
    pub backend: BackendKind,
    /// Scale factor applied to simulated latencies (1.0 = the paper's
    /// values; smaller values make benches faster without changing shape).
    pub latency_scale: f64,
    /// Seed for all randomness, making runs reproducible.
    pub seed: u64,
}

impl ObladiConfig {
    /// A configuration suitable for unit and integration tests.
    pub fn small_for_tests(num_objects: u64) -> Self {
        ObladiConfig {
            oram: OramConfig::small_for_tests(num_objects),
            epoch: EpochConfig::small_for_tests(),
            backend: BackendKind::Server,
            latency_scale: 0.0,
            seed: 0xB1AD_1234,
        }
    }

    /// Validates all nested configurations.
    pub fn validate(&self) -> Result<()> {
        self.oram.validate()?;
        self.epoch.validate()?;
        if !(0.0..=100.0).contains(&self.latency_scale) {
            return Err(ObladiError::Config(format!(
                "latency_scale must be in [0, 100], got {}",
                self.latency_scale
            )));
        }
        Ok(())
    }
}

impl Default for ObladiConfig {
    fn default() -> Self {
        ObladiConfig {
            oram: OramConfig::for_capacity(100_000, 100),
            epoch: EpochConfig::default(),
            backend: BackendKind::Server,
            latency_scale: 1.0,
            seed: 42,
        }
    }
}

/// Where a sharded deployment's untrusted storage servers live.
///
/// Obladi's trust model is a trusted proxy talking to *untrusted cloud
/// storage across a network* (§5).  The reproduction can host that storage
/// three ways, trading fidelity against convenience:
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum StorageBackend {
    /// Storage lives in the proxy's own process as a trait object (the
    /// seed deployment shape).  Fastest, but the proxy↔storage boundary is
    /// only a trait, not a trust boundary.
    InProcess,
    /// Each shard's storage is an `obladi-stored` daemon process the
    /// deployment spawns, supervises and (on request) kills and respawns.
    /// Requests cross a Unix-domain socket with framed, pipelined RPC —
    /// the first real multi-machine-shaped boundary.
    RemoteSpawned,
    /// Each shard's storage is an already-running daemon at the given
    /// address (`unix:/path/to.sock` or `tcp:host:port`); one address per
    /// shard.  The deployment connects but does not supervise.
    RemoteAddr(Vec<String>),
}

impl StorageBackend {
    /// Human-readable name for logs and benchmark rows.
    pub fn name(&self) -> &'static str {
        match self {
            StorageBackend::InProcess => "in-process",
            StorageBackend::RemoteSpawned => "remote-spawned",
            StorageBackend::RemoteAddr(_) => "remote-addr",
        }
    }
}

/// Configuration of a sharded deployment: `shards` fully independent
/// proxy+ORAM pipelines behind one transactional front door (`obladi-shard`).
///
/// Each shard runs its own copy of the `shard` template configuration over
/// its own storage backend; only the seed is re-derived per shard so the
/// shards' ORAM permutations and leaf assignments are independent.  Keys are
/// placed by a keyed hash of the logical key, so the key space splits
/// uniformly and placement reveals nothing about the workload beyond what a
/// uniform random assignment would.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ShardConfig {
    /// Number of independent shards (`>= 1`).
    pub shards: usize,
    /// Per-shard proxy configuration template.
    ///
    /// `shard.oram.num_objects` is the capacity of *one* shard, so a
    /// deployment holds `shards * num_objects` objects in total.
    pub shard: ObladiConfig,
    /// Where the shards' untrusted storage servers live.
    pub storage: StorageBackend,
    /// Per-shard executor pool sizes overriding the template's
    /// `epoch.executor_threads`: entry `i` sizes shard `i`'s ORAM executor
    /// pool (`0` = use the template).  Empty means every shard uses the
    /// template.  Lets a deployment give a hot or latency-bound shard more
    /// I/O parallelism without inflating the others; each shard's decider
    /// remains a single dedicated thread by design (its work is the ordered
    /// epoch decision, which does not fan out).
    pub executor_threads_per_shard: Vec<usize>,
    /// Watchdog deadline for the cross-shard epoch barrier: a shard parked
    /// at the rendezvous longer than this dumps barrier diagnostics to
    /// stderr and converts the park into a typed, retryable
    /// `BarrierStalled` error instead of hanging forever.  Generous by
    /// default — it should only ever fire on a genuine liveness bug (a dead
    /// shard that was never marked dead, a deadlocked prepare), never on a
    /// merely slow epoch.
    pub barrier_watchdog: Duration,
}

impl ShardConfig {
    /// A sharded configuration suitable for unit and integration tests:
    /// `shards` shards, each sized for `objects_per_shard` objects.
    pub fn small_for_tests(shards: usize, objects_per_shard: u64) -> Self {
        ShardConfig {
            shards,
            shard: ObladiConfig::small_for_tests(objects_per_shard),
            storage: StorageBackend::InProcess,
            executor_threads_per_shard: Vec::new(),
            barrier_watchdog: Duration::from_secs(15),
        }
    }

    /// Derives the configuration of shard `index`: the template with a
    /// per-shard seed (so randomness streams are independent across shards)
    /// and, when configured, the shard's own executor pool size.
    pub fn shard_config(&self, index: usize) -> ObladiConfig {
        let mut config = self.shard.clone();
        // SplitMix64-style mixing keeps per-shard seeds independent even for
        // adjacent indices.
        let mut x = (index as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        config.seed = self.shard.seed ^ x;
        if let Some(&threads) = self.executor_threads_per_shard.get(index) {
            if threads > 0 {
                config.epoch.executor_threads = threads;
            }
        }
        config
    }

    /// Sets the storage backend placement.
    pub fn with_storage(mut self, storage: StorageBackend) -> Self {
        self.storage = storage;
        self
    }

    /// Sets per-shard executor pool sizes (see
    /// [`ShardConfig::executor_threads_per_shard`]).
    pub fn with_executor_threads_per_shard(mut self, threads: Vec<usize>) -> Self {
        self.executor_threads_per_shard = threads;
        self
    }

    /// Sets the cross-shard barrier watchdog deadline (see
    /// [`ShardConfig::barrier_watchdog`]).
    pub fn with_barrier_watchdog(mut self, deadline: Duration) -> Self {
        self.barrier_watchdog = deadline;
        self
    }

    /// Validates the shard count and the per-shard template.
    pub fn validate(&self) -> Result<()> {
        if self.shards == 0 {
            return Err(ObladiError::Config(
                "a sharded deployment needs at least one shard".into(),
            ));
        }
        if self.shards > 4096 {
            return Err(ObladiError::Config(format!(
                "shard count {} is implausibly large (max 4096)",
                self.shards
            )));
        }
        if let StorageBackend::RemoteAddr(addrs) = &self.storage {
            if addrs.len() != self.shards {
                return Err(ObladiError::Config(format!(
                    "{} storage addresses supplied for {} shards",
                    addrs.len(),
                    self.shards
                )));
            }
        }
        if !self.executor_threads_per_shard.is_empty()
            && self.executor_threads_per_shard.len() != self.shards
        {
            return Err(ObladiError::Config(format!(
                "{} per-shard executor sizes supplied for {} shards \
                 (must be empty or one per shard)",
                self.executor_threads_per_shard.len(),
                self.shards
            )));
        }
        if self.barrier_watchdog.is_zero() {
            return Err(ObladiError::Config(
                "barrier_watchdog must be non-zero".into(),
            ));
        }
        self.shard.validate()
    }
}

impl Default for ShardConfig {
    fn default() -> Self {
        ShardConfig {
            shards: 4,
            shard: ObladiConfig::default(),
            storage: StorageBackend::InProcess,
            executor_threads_per_shard: Vec::new(),
            barrier_watchdog: Duration::from_secs(30),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_parameters_are_reproduced() {
        let cfg = OramConfig::for_capacity(100_000, 100);
        assert_eq!(cfg.z, 100);
        assert_eq!(cfg.s, 196);
        assert_eq!(cfg.a, 168);
        // Paper: 10K objects -> 7 levels, 1M -> 14 levels.
        assert_eq!(OramConfig::for_capacity(10_000, 100).levels, 7);
        assert_eq!(OramConfig::for_capacity(1_000_000, 100).levels, 14);
    }

    #[test]
    fn tree_geometry_is_consistent() {
        let cfg = OramConfig::for_capacity(10_000, 100);
        assert_eq!(cfg.num_buckets(), (1 << cfg.levels) - 1);
        assert_eq!(cfg.num_leaves() * 2 - 1, cfg.num_buckets());
        assert!(cfg.capacity() >= cfg.num_objects);
        cfg.validate().unwrap();
    }

    #[test]
    fn validation_rejects_degenerate_configs() {
        let mut cfg = OramConfig::for_capacity(1000, 4);
        cfg.z = 0;
        assert!(cfg.validate().is_err());

        let mut cfg = OramConfig::for_capacity(1000, 4);
        cfg.levels = 1;
        assert!(cfg.validate().is_err(), "capacity too small must fail");

        let mut cfg = EpochConfig::small_for_tests();
        cfg.read_batches = 0;
        assert!(cfg.validate().is_err());

        let mut cfg = ObladiConfig::small_for_tests(100);
        cfg.latency_scale = -1.0;
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn epoch_capacity_helpers() {
        let cfg = EpochConfig::default()
            .with_read_batches(5)
            .with_read_batch_size(10)
            .with_write_batch_size(7);
        assert_eq!(cfg.reads_per_epoch(), 50);
        assert_eq!(cfg.max_position_delta(), 57);
    }

    #[test]
    fn small_test_configs_validate() {
        ObladiConfig::small_for_tests(500).validate().unwrap();
        EpochConfig::oltp().validate().unwrap();
        ObladiConfig::default().validate().unwrap();
    }

    #[test]
    fn shard_config_validates_and_derives_distinct_seeds() {
        let cfg = ShardConfig::small_for_tests(4, 256);
        cfg.validate().unwrap();
        let seeds: std::collections::HashSet<u64> =
            (0..4).map(|i| cfg.shard_config(i).seed).collect();
        assert_eq!(seeds.len(), 4, "per-shard seeds must be distinct");

        let mut bad = cfg.clone();
        bad.shards = 0;
        assert!(bad.validate().is_err());
        let mut bad = cfg.clone();
        bad.barrier_watchdog = Duration::ZERO;
        assert!(bad.validate().is_err(), "zero watchdog must fail");
        ShardConfig::default().validate().unwrap();
    }

    #[test]
    fn per_shard_executor_sizing_applies_and_validates() {
        let cfg =
            ShardConfig::small_for_tests(3, 256).with_executor_threads_per_shard(vec![0, 5, 9]);
        cfg.validate().unwrap();
        let template = cfg.shard.epoch.executor_threads;
        assert_eq!(cfg.shard_config(0).epoch.executor_threads, template);
        assert_eq!(cfg.shard_config(1).epoch.executor_threads, 5);
        assert_eq!(cfg.shard_config(2).epoch.executor_threads, 9);

        let bad = ShardConfig::small_for_tests(3, 256).with_executor_threads_per_shard(vec![1, 2]);
        assert!(bad.validate().is_err(), "length mismatch must fail");
    }

    #[test]
    fn storage_backend_validates_address_count() {
        let cfg = ShardConfig::small_for_tests(2, 256)
            .with_storage(StorageBackend::RemoteAddr(vec!["unix:/tmp/a.sock".into()]));
        assert!(cfg.validate().is_err(), "one address for two shards");
        let cfg = ShardConfig::small_for_tests(1, 256)
            .with_storage(StorageBackend::RemoteAddr(vec!["unix:/tmp/a.sock".into()]));
        cfg.validate().unwrap();
        assert_eq!(StorageBackend::InProcess.name(), "in-process");
        assert_eq!(StorageBackend::RemoteSpawned.name(), "remote-spawned");
    }

    #[test]
    fn backend_names_match_paper_legends() {
        assert_eq!(BackendKind::Dummy.name(), "dummy");
        assert_eq!(BackendKind::ServerWan.name(), "server WAN");
        assert_eq!(BackendKind::ALL.len(), 4);
    }
}
