//! Error types shared across the workspace.

use std::fmt;

/// Convenience alias used across the Obladi crates.
pub type Result<T> = std::result::Result<T, ObladiError>;

/// Errors that can be produced by any layer of the system.
///
/// The variants deliberately mirror the failure modes discussed in the
/// paper: storage faults, integrity violations (Appendix A), transaction
/// aborts (§6.1), epoch overflow (§6.2) and crash/recovery conditions (§8).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ObladiError {
    /// The untrusted storage server failed to serve a request.
    Storage(String),
    /// A block failed MAC verification or freshness checking.
    Integrity(String),
    /// The requested key does not exist in the database.
    KeyNotFound(u64),
    /// The transaction was aborted by concurrency control or by the epoch
    /// machinery; the string describes the reason.
    TxnAborted(String),
    /// A batch or epoch capacity limit was exceeded.
    BatchFull(String),
    /// The ORAM stash exceeded its configured maximum; this indicates a
    /// mis-configured tree (Z too small for N).
    StashOverflow {
        /// Number of blocks currently in the stash.
        len: usize,
        /// Configured maximum.
        max: usize,
    },
    /// The proxy is currently crashed / not serving requests.
    ProxyUnavailable,
    /// A cross-shard transaction's legs could not align on one epoch
    /// rendezvous: the shard offers no epoch deciding at the rendezvous the
    /// transaction's first leg fixed.  A *liveness* retry, not a data
    /// conflict — the caller should re-stamp and try again (the pipeline
    /// phases drift back into compatibility within an epoch or two).  The
    /// conflicting generations are attached so callers and tests can
    /// distinguish this from real conflicts and reason about the drift.
    PipelineIncompatible {
        /// Shard whose leg could not open.
        shard: usize,
        /// The rendezvous class the transaction's first leg fixed
        /// (0 = the shards' next rendezvous, 1 = the one after).
        round_class: u8,
        /// The shard's executing epoch generation at stamping time.
        exec_generation: u64,
        /// The shard's open deciding epoch generation at stamping time,
        /// if any.
        deciding_generation: Option<u64>,
    },
    /// A shard waited at the cross-shard epoch barrier past the configured
    /// watchdog deadline.  The park is converted into this typed, retryable
    /// error (with barrier diagnostics dumped to stderr) instead of hanging
    /// the client forever; like [`ObladiError::PipelineIncompatible`] it is
    /// a *liveness* condition, not a data conflict.
    BarrierStalled {
        /// Shard that timed out waiting at the rendezvous.
        shard: usize,
        /// The global round the shard was waiting to decide.
        round: u64,
        /// How long the shard waited before giving up, in milliseconds.
        waited_ms: u64,
    },
    /// Recovery could not complete, e.g. because the write-ahead log is
    /// corrupt or the trusted counter disagrees with storage.
    Recovery(String),
    /// A configuration parameter was invalid (e.g. `Z = 0`).
    Config(String),
    /// Serialization / deserialization of an on-storage structure failed.
    Codec(String),
    /// An internal invariant was violated; indicates a bug.
    Internal(String),
}

impl fmt::Display for ObladiError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ObladiError::Storage(msg) => write!(f, "storage error: {msg}"),
            ObladiError::Integrity(msg) => write!(f, "integrity violation: {msg}"),
            ObladiError::KeyNotFound(key) => write!(f, "key not found: {key}"),
            ObladiError::TxnAborted(msg) => write!(f, "transaction aborted: {msg}"),
            ObladiError::BatchFull(msg) => write!(f, "batch full: {msg}"),
            ObladiError::StashOverflow { len, max } => {
                write!(f, "stash overflow: {len} blocks exceeds maximum {max}")
            }
            ObladiError::ProxyUnavailable => write!(f, "proxy unavailable (crashed)"),
            ObladiError::PipelineIncompatible {
                shard,
                round_class,
                exec_generation,
                deciding_generation,
            } => write!(
                f,
                "pipeline phases incompatible (liveness retry): shard {shard} offers no epoch \
                 deciding at rendezvous class {round_class} (executing generation \
                 {exec_generation}, deciding generation {deciding_generation:?})"
            ),
            ObladiError::BarrierStalled {
                shard,
                round,
                waited_ms,
            } => write!(
                f,
                "epoch barrier stalled (liveness retry): shard {shard} waited {waited_ms} ms \
                 for round {round} without the rendezvous completing"
            ),
            ObladiError::Recovery(msg) => write!(f, "recovery failed: {msg}"),
            ObladiError::Config(msg) => write!(f, "invalid configuration: {msg}"),
            ObladiError::Codec(msg) => write!(f, "encoding error: {msg}"),
            ObladiError::Internal(msg) => write!(f, "internal invariant violated: {msg}"),
        }
    }
}

impl std::error::Error for ObladiError {}

impl ObladiError {
    /// Returns `true` if the error represents a transaction abort that the
    /// application may retry.
    pub fn is_retryable(&self) -> bool {
        matches!(
            self,
            ObladiError::TxnAborted(_)
                | ObladiError::BatchFull(_)
                | ObladiError::ProxyUnavailable
                | ObladiError::PipelineIncompatible { .. }
                | ObladiError::BarrierStalled { .. }
        )
    }

    /// Returns `true` for a pure *liveness* retry: nothing conflicted, the
    /// deployment's pipeline phases were merely misaligned for this
    /// transaction's rendezvous.  Subset of [`ObladiError::is_retryable`].
    pub fn is_liveness_retry(&self) -> bool {
        matches!(
            self,
            ObladiError::PipelineIncompatible { .. } | ObladiError::BarrierStalled { .. }
        )
    }

    /// A stable, low-cardinality label for the variant, suitable as a
    /// metric-name suffix (e.g. `shard.abort.pipeline_incompatible`).
    /// Deliberately drops the per-instance payload so counters keyed by it
    /// stay bounded.
    pub fn cause_label(&self) -> &'static str {
        match self {
            ObladiError::Storage(_) => "storage",
            ObladiError::Integrity(_) => "integrity",
            ObladiError::KeyNotFound(_) => "key_not_found",
            ObladiError::TxnAborted(_) => "txn_aborted",
            ObladiError::BatchFull(_) => "batch_full",
            ObladiError::StashOverflow { .. } => "stash_overflow",
            ObladiError::ProxyUnavailable => "proxy_unavailable",
            ObladiError::PipelineIncompatible { .. } => "pipeline_incompatible",
            ObladiError::BarrierStalled { .. } => "barrier_stalled",
            ObladiError::Recovery(_) => "recovery",
            ObladiError::Config(_) => "config",
            ObladiError::Codec(_) => "codec",
            ObladiError::Internal(_) => "internal",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_contains_context() {
        let e = ObladiError::Storage("connection reset".into());
        assert!(e.to_string().contains("connection reset"));
        let e = ObladiError::StashOverflow { len: 10, max: 4 };
        assert!(e.to_string().contains("10"));
        assert!(e.to_string().contains('4'));
    }

    #[test]
    fn retryable_classification() {
        assert!(ObladiError::TxnAborted("conflict".into()).is_retryable());
        assert!(ObladiError::BatchFull("read batch".into()).is_retryable());
        assert!(ObladiError::ProxyUnavailable.is_retryable());
        let stalled = ObladiError::BarrierStalled {
            shard: 0,
            round: 7,
            waited_ms: 1_500,
        };
        assert!(stalled.is_retryable());
        assert!(stalled.is_liveness_retry());
        assert!(!ObladiError::KeyNotFound(3).is_retryable());
        assert!(!ObladiError::Integrity("bad mac".into()).is_retryable());
    }

    #[test]
    fn cause_labels_are_stable_and_distinct() {
        let errors = [
            ObladiError::Storage("s".into()),
            ObladiError::Integrity("i".into()),
            ObladiError::KeyNotFound(1),
            ObladiError::TxnAborted("t".into()),
            ObladiError::BatchFull("b".into()),
            ObladiError::StashOverflow { len: 1, max: 1 },
            ObladiError::ProxyUnavailable,
            ObladiError::PipelineIncompatible {
                shard: 0,
                round_class: 0,
                exec_generation: 1,
                deciding_generation: None,
            },
            ObladiError::BarrierStalled {
                shard: 0,
                round: 1,
                waited_ms: 1,
            },
            ObladiError::Recovery("r".into()),
            ObladiError::Config("c".into()),
            ObladiError::Codec("c".into()),
            ObladiError::Internal("i".into()),
        ];
        let labels: std::collections::HashSet<&str> =
            errors.iter().map(|e| e.cause_label()).collect();
        assert_eq!(labels.len(), errors.len());
        // Labels must be metric-name safe: lowercase + underscores.
        for label in labels {
            assert!(label.chars().all(|c| c.is_ascii_lowercase() || c == '_'));
        }
    }

    #[test]
    fn error_trait_object_compatible() {
        let e: Box<dyn std::error::Error> = Box::new(ObladiError::ProxyUnavailable);
        assert!(e.to_string().contains("proxy"));
    }
}
