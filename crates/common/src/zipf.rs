//! Zipfian distribution sampler used by the YCSB workload generator.
//!
//! YCSB's canonical key-choice distribution is a Zipfian with exponent
//! `theta ≈ 0.99`.  This implementation uses the standard rejection-free
//! formula from Gray et al. ("Quickly generating billion-record synthetic
//! databases"), the same method used by the original YCSB generator.

use crate::rng::DetRng;

/// A Zipfian sampler over the range `0..n`.
#[derive(Debug, Clone)]
pub struct Zipf {
    n: u64,
    theta: f64,
    alpha: f64,
    zetan: f64,
    eta: f64,
}

impl Zipf {
    /// Creates a sampler over `0..n` with skew `theta` (`0.0 <= theta < 1.0`;
    /// larger is more skewed; YCSB uses 0.99).
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn new(n: u64, theta: f64) -> Self {
        assert!(n > 0, "Zipf distribution needs a non-empty range");
        let theta = theta.clamp(0.0, 0.9999);
        let zetan = Self::zeta(n, theta);
        let zeta2 = Self::zeta(2, theta);
        // `zeta2` only feeds into `eta` below.
        let alpha = 1.0 / (1.0 - theta);
        let eta = (1.0 - (2.0 / n as f64).powf(1.0 - theta)) / (1.0 - zeta2 / zetan);
        Zipf {
            n,
            theta,
            alpha,
            zetan,
            eta,
        }
    }

    /// A uniform sampler over `0..n` (theta = 0).
    pub fn uniform(n: u64) -> Self {
        Zipf::new(n, 0.0)
    }

    /// Number of items in the range.
    pub fn n(&self) -> u64 {
        self.n
    }

    /// The skew parameter.
    pub fn theta(&self) -> f64 {
        self.theta
    }

    /// Draws a sample in `0..n`; rank 0 is the most popular item.
    pub fn sample(&self, rng: &mut DetRng) -> u64 {
        if self.n == 1 {
            return 0;
        }
        let u = rng.unit();
        let uz = u * self.zetan;
        if uz < 1.0 {
            return 0;
        }
        if uz < 1.0 + 0.5f64.powf(self.theta) {
            return 1;
        }
        let raw = (self.n as f64) * (self.eta * u - self.eta + 1.0).powf(self.alpha);
        (raw as u64).min(self.n - 1)
    }

    /// Harmonic-like normalisation constant `zeta(n, theta)`.
    fn zeta(n: u64, theta: f64) -> f64 {
        // For very large n this sum is expensive; cap the exact sum and
        // approximate the tail with an integral, which is accurate enough
        // for workload generation purposes.
        const EXACT_LIMIT: u64 = 1_000_000;
        let exact_n = n.min(EXACT_LIMIT);
        let mut sum = 0.0;
        for i in 1..=exact_n {
            sum += 1.0 / (i as f64).powf(theta);
        }
        if n > EXACT_LIMIT && theta < 1.0 {
            // Integral of x^-theta from EXACT_LIMIT to n.
            let a = EXACT_LIMIT as f64;
            let b = n as f64;
            sum += (b.powf(1.0 - theta) - a.powf(1.0 - theta)) / (1.0 - theta);
        }
        let _ = self_check(sum);
        sum
    }
}

/// Debug helper asserting the normalisation constant is finite.
fn self_check(v: f64) -> f64 {
    debug_assert!(v.is_finite() && v > 0.0);
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn samples_are_in_range() {
        let zipf = Zipf::new(1000, 0.99);
        let mut rng = DetRng::new(5);
        for _ in 0..10_000 {
            assert!(zipf.sample(&mut rng) < 1000);
        }
    }

    #[test]
    fn skewed_distribution_prefers_low_ranks() {
        let zipf = Zipf::new(10_000, 0.99);
        let mut rng = DetRng::new(6);
        let mut head = 0u64;
        let total = 20_000;
        for _ in 0..total {
            if zipf.sample(&mut rng) < 100 {
                head += 1;
            }
        }
        // With theta=0.99, the hottest 1% of keys should receive far more
        // than 1% of accesses.
        assert!(
            head as f64 / total as f64 > 0.3,
            "hot keys got only {head}/{total}"
        );
    }

    #[test]
    fn uniform_distribution_is_flat() {
        let zipf = Zipf::uniform(100);
        let mut rng = DetRng::new(7);
        let mut counts = vec![0u64; 100];
        let total = 100_000;
        for _ in 0..total {
            counts[zipf.sample(&mut rng) as usize] += 1;
        }
        let expected = total as f64 / 100.0;
        for (i, &c) in counts.iter().enumerate() {
            assert!(
                (c as f64) > expected * 0.5 && (c as f64) < expected * 1.5,
                "bucket {i} had {c} samples, expected about {expected}"
            );
        }
    }

    #[test]
    fn singleton_range_always_returns_zero() {
        let zipf = Zipf::new(1, 0.99);
        let mut rng = DetRng::new(8);
        for _ in 0..100 {
            assert_eq!(zipf.sample(&mut rng), 0);
        }
    }

    #[test]
    #[should_panic]
    fn zero_range_panics() {
        let _ = Zipf::new(0, 0.5);
    }
}
