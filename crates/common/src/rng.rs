//! Deterministic, seedable randomness helpers.
//!
//! Everything that needs randomness in the workspace (leaf remapping, bucket
//! permutations, workload generators, latency jitter) draws from a
//! [`DetRng`], which is a thin wrapper around a seeded xoshiro-style
//! generator.  Centralising this makes whole-system runs reproducible from a
//! single seed and lets tests derive independent streams per component.

use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};

/// A deterministic random number generator seeded from a `u64`.
///
/// The generator is intentionally *not* cryptographically secure — it is
/// used for simulation decisions (leaf assignment, permutations, workload
/// key choice).  Cryptographic randomness (keys, nonces) lives in
/// `obladi-crypto`.
#[derive(Debug, Clone)]
pub struct DetRng {
    inner: StdRng,
}

impl DetRng {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        DetRng {
            inner: StdRng::seed_from_u64(seed),
        }
    }

    /// Derives an independent child generator identified by `label`.
    ///
    /// Children with different labels produce independent streams, which
    /// lets each subsystem (ORAM, workload, latency model) own a private
    /// generator while the whole run stays reproducible.
    pub fn derive(&self, label: u64) -> DetRng {
        // SplitMix64-style mixing of the label into a fresh seed.
        let mut x = label.wrapping_add(0x9E37_79B9_7F4A_7C15);
        x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        x ^= x >> 31;
        let mut clone = self.inner.clone();
        let base = clone.next_u64();
        DetRng::new(base ^ x)
    }

    /// Returns a uniformly random value in `0..bound` (`bound > 0`).
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0, "below() requires a positive bound");
        self.inner.gen_range(0..bound)
    }

    /// Returns a uniformly random `usize` in `0..bound`.
    pub fn below_usize(&mut self, bound: usize) -> usize {
        debug_assert!(bound > 0);
        self.inner.gen_range(0..bound)
    }

    /// Returns a uniformly random `u64`.
    pub fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }

    /// Returns a random boolean that is `true` with probability `p`.
    pub fn chance(&mut self, p: f64) -> bool {
        self.inner.gen_bool(p.clamp(0.0, 1.0))
    }

    /// Returns a uniformly random `f64` in `[0, 1)`.
    pub fn unit(&mut self) -> f64 {
        self.inner.gen_range(0.0..1.0)
    }

    /// Fills `buf` with random bytes.
    pub fn fill_bytes(&mut self, buf: &mut [u8]) {
        self.inner.fill_bytes(buf);
    }

    /// Produces a uniformly random permutation of `0..n` (Fisher–Yates).
    pub fn permutation(&mut self, n: usize) -> Vec<u32> {
        let mut perm: Vec<u32> = (0..n as u32).collect();
        for i in (1..n).rev() {
            let j = self.below_usize(i + 1);
            perm.swap(i, j);
        }
        perm
    }

    /// Chooses `k` distinct indices from `0..n` uniformly at random
    /// (reservoir-free partial Fisher–Yates; `k <= n`).
    pub fn choose_distinct(&mut self, n: usize, k: usize) -> Vec<usize> {
        debug_assert!(k <= n);
        let mut idx: Vec<usize> = (0..n).collect();
        for i in 0..k {
            let j = i + self.below_usize(n - i);
            idx.swap(i, j);
        }
        idx.truncate(k);
        idx
    }

    /// Access to the underlying `rand` RNG for use with `rand` APIs.
    pub fn as_rng(&mut self) -> &mut StdRng {
        &mut self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn same_seed_same_stream() {
        let mut a = DetRng::new(7);
        let mut b = DetRng::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = DetRng::new(1);
        let mut b = DetRng::new(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4, "streams from different seeds should differ");
    }

    #[test]
    fn derive_is_deterministic_and_label_sensitive() {
        let parent = DetRng::new(99);
        let mut c1 = parent.derive(1);
        let mut c1b = parent.derive(1);
        let mut c2 = parent.derive(2);
        assert_eq!(c1.next_u64(), c1b.next_u64());
        assert_ne!(c1.next_u64(), c2.next_u64());
    }

    #[test]
    fn below_respects_bound() {
        let mut rng = DetRng::new(3);
        for bound in [1u64, 2, 7, 1000] {
            for _ in 0..200 {
                assert!(rng.below(bound) < bound);
            }
        }
    }

    #[test]
    fn permutation_is_a_permutation() {
        let mut rng = DetRng::new(11);
        for n in [0usize, 1, 2, 17, 100] {
            let p = rng.permutation(n);
            let set: HashSet<u32> = p.iter().copied().collect();
            assert_eq!(set.len(), n);
            assert!(p.iter().all(|&v| (v as usize) < n));
        }
    }

    #[test]
    fn choose_distinct_returns_unique_indices() {
        let mut rng = DetRng::new(13);
        let picks = rng.choose_distinct(50, 20);
        let set: HashSet<usize> = picks.iter().copied().collect();
        assert_eq!(set.len(), 20);
        assert!(picks.iter().all(|&v| v < 50));
    }

    #[test]
    fn chance_extremes() {
        let mut rng = DetRng::new(17);
        assert!(!rng.chance(0.0));
        assert!(rng.chance(1.0));
    }
}
