//! Core identifier and value types shared by all Obladi crates.
//!
//! Obladi is a transactional *key-value* store layered on top of a Ring ORAM.
//! At the logical level applications manipulate [`Key`]s and [`Value`]s; the
//! ORAM maps each key to a [`Leaf`] of its tree and stores the encrypted
//! value in one of the buckets ([`BucketId`]) along the path to that leaf.
//! The proxy stamps transactions with [`Timestamp`]s (MVTSO) and groups them
//! into epochs ([`EpochId`]) that consist of read/write batches ([`BatchId`]).

use serde::{Deserialize, Serialize};
use std::fmt;

/// Logical key of an object stored in the database.
///
/// Workloads encode table identifiers and primary keys into this 64-bit
/// space (see `obladi-workloads::encoding`).
pub type Key = u64;

/// Opaque value bytes associated with a [`Key`].
pub type Value = Vec<u8>;

/// Transaction identifier assigned by the proxy when a transaction begins.
///
/// In MVTSO the transaction identifier doubles as its serialization
/// timestamp, so `TxnId` ordering *is* the serialization order within an
/// epoch.
pub type TxnId = u64;

/// MVTSO timestamp; identical to [`TxnId`] in this implementation.
pub type Timestamp = u64;

/// Epoch counter. Epochs are the granularity of durability and commit
/// visibility (§6 of the paper).
pub type EpochId = u64;

/// Index of a read batch within an epoch (`0..R`), or `u32::MAX` for the
/// write batch.
pub type BatchId = u32;

/// Identifier of a bucket in the ORAM tree, numbered heap-style:
/// the root is bucket `0`, the children of bucket `i` are `2i + 1` and
/// `2i + 2`.
pub type BucketId = u64;

/// Leaf label of the ORAM tree in `0..num_leaves`.
pub type Leaf = u64;

/// Version number of a shadow-paged bucket on untrusted storage.
///
/// Every physical write of a bucket creates a new version rather than
/// updating in place, which is what allows crash recovery to revert the
/// ORAM to the state of the last durable epoch (§8).
pub type Version = u64;

/// The kind of a logical operation submitted by a transaction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum OpKind {
    /// A read of a key.
    Read,
    /// A write (insert or update) of a key.
    Write,
}

impl fmt::Display for OpKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OpKind::Read => write!(f, "read"),
            OpKind::Write => write!(f, "write"),
        }
    }
}

/// A logical request as seen by the data handler: a key plus the kind of
/// access, and for writes the new value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LogicalOp {
    /// The key being accessed.
    pub key: Key,
    /// Whether this is a read or a write.
    pub kind: OpKind,
    /// The value written (empty for reads).
    pub value: Option<Value>,
}

impl LogicalOp {
    /// Creates a logical read of `key`.
    pub fn read(key: Key) -> Self {
        LogicalOp {
            key,
            kind: OpKind::Read,
            value: None,
        }
    }

    /// Creates a logical write of `value` to `key`.
    pub fn write(key: Key, value: Value) -> Self {
        LogicalOp {
            key,
            kind: OpKind::Write,
            value: Some(value),
        }
    }
}

/// Outcome of a transaction, reported to the client at the epoch boundary.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TxnOutcome {
    /// The transaction committed; its writes are durable.
    Committed,
    /// The transaction aborted (conflict, cascading abort, epoch overflow or
    /// crash); none of its writes are visible.
    Aborted(AbortReason),
}

impl TxnOutcome {
    /// Returns `true` if the transaction committed.
    pub fn is_committed(&self) -> bool {
        matches!(self, TxnOutcome::Committed)
    }
}

/// Why a transaction aborted.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AbortReason {
    /// MVTSO write rejected because a later transaction already read the
    /// preceding version.
    WriteTooLate,
    /// A write-read dependency aborted, so this transaction had to abort too
    /// (cascading abort).
    Cascading,
    /// The transaction did not finish before the epoch ended.
    EpochEnd,
    /// The epoch's read or write batches were full.
    BatchFull,
    /// The proxy crashed during the transaction's epoch.
    Crash,
    /// The application itself requested the abort.
    UserRequested,
    /// The storage server returned data that failed integrity verification.
    IntegrityViolation,
}

impl fmt::Display for AbortReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            AbortReason::WriteTooLate => "mvtso write rejected",
            AbortReason::Cascading => "cascading abort",
            AbortReason::EpochEnd => "epoch ended before completion",
            AbortReason::BatchFull => "epoch batches were full",
            AbortReason::Crash => "proxy crashed",
            AbortReason::UserRequested => "user requested abort",
            AbortReason::IntegrityViolation => "integrity verification failed",
        };
        write!(f, "{s}")
    }
}

/// A physical slot address inside the ORAM tree: a bucket plus the index of
/// one of its `Z + S` slots.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SlotAddr {
    /// The bucket holding the slot.
    pub bucket: BucketId,
    /// Physical slot index within the bucket, in `0..(Z + S)`.
    pub slot: u32,
}

impl SlotAddr {
    /// Creates a slot address.
    pub fn new(bucket: BucketId, slot: u32) -> Self {
        SlotAddr { bucket, slot }
    }
}

impl fmt::Display for SlotAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bucket {} slot {}", self.bucket, self.slot)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn logical_op_constructors() {
        let r = LogicalOp::read(7);
        assert_eq!(r.kind, OpKind::Read);
        assert_eq!(r.key, 7);
        assert!(r.value.is_none());

        let w = LogicalOp::write(9, vec![1, 2, 3]);
        assert_eq!(w.kind, OpKind::Write);
        assert_eq!(w.value.as_deref(), Some(&[1u8, 2, 3][..]));
    }

    #[test]
    fn outcome_committed_helper() {
        assert!(TxnOutcome::Committed.is_committed());
        assert!(!TxnOutcome::Aborted(AbortReason::EpochEnd).is_committed());
    }

    #[test]
    fn abort_reason_display_is_human_readable() {
        let all = [
            AbortReason::WriteTooLate,
            AbortReason::Cascading,
            AbortReason::EpochEnd,
            AbortReason::BatchFull,
            AbortReason::Crash,
            AbortReason::UserRequested,
            AbortReason::IntegrityViolation,
        ];
        for reason in all {
            assert!(!reason.to_string().is_empty());
        }
    }

    #[test]
    fn slot_addr_ordering_groups_by_bucket() {
        let a = SlotAddr::new(1, 5);
        let b = SlotAddr::new(2, 0);
        assert!(a < b);
        assert_eq!(SlotAddr::new(3, 3), SlotAddr::new(3, 3));
    }

    #[test]
    fn op_kind_display() {
        assert_eq!(OpKind::Read.to_string(), "read");
        assert_eq!(OpKind::Write.to_string(), "write");
    }
}
