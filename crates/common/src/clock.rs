//! Pluggable clock abstraction.
//!
//! The proxy's epoch machinery is driven by time (`Δ`-spaced read batches,
//! fixed-length epochs).  Tests need to drive that machinery without real
//! sleeps, and the simulated storage backends need a way to "charge" latency
//! that can be disabled.  [`Clock`] abstracts both: [`RealClock`] sleeps on
//! the OS clock, [`TestClock`] advances a virtual time counter instantly.

use parking_lot::{Condvar, Mutex};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A source of time plus the ability to wait.
pub trait Clock: Send + Sync + 'static {
    /// Nanoseconds since the clock's epoch.
    fn now_nanos(&self) -> u64;

    /// Blocks the calling thread for `d` (really or virtually).
    fn sleep(&self, d: Duration);

    /// Convenience: the current time as a [`Duration`] since the clock's
    /// epoch.
    fn now(&self) -> Duration {
        Duration::from_nanos(self.now_nanos())
    }
}

/// Wall-clock implementation backed by [`Instant`] and `thread::sleep`.
#[derive(Debug)]
pub struct RealClock {
    origin: Instant,
}

impl RealClock {
    /// Creates a real clock whose epoch is "now".
    pub fn new() -> Self {
        RealClock {
            origin: Instant::now(),
        }
    }
}

impl Default for RealClock {
    fn default() -> Self {
        RealClock::new()
    }
}

impl Clock for RealClock {
    fn now_nanos(&self) -> u64 {
        self.origin.elapsed().as_nanos() as u64
    }

    fn sleep(&self, d: Duration) {
        if !d.is_zero() {
            std::thread::sleep(d);
        }
    }
}

/// A manually-advanced virtual clock for deterministic tests.
///
/// `sleep` blocks until another thread advances the clock far enough (or
/// returns immediately when the requested duration is zero).  Tests that are
/// single-threaded should use [`TestClock::advance`] before the sleeping
/// call, or configure components with zero intervals.
#[derive(Debug, Clone)]
pub struct TestClock {
    inner: Arc<TestClockInner>,
}

#[derive(Debug)]
struct TestClockInner {
    now_nanos: Mutex<u64>,
    advanced: Condvar,
}

impl TestClock {
    /// Creates a virtual clock starting at time zero.
    pub fn new() -> Self {
        TestClock {
            inner: Arc::new(TestClockInner {
                now_nanos: Mutex::new(0),
                advanced: Condvar::new(),
            }),
        }
    }

    /// Advances the virtual time by `d`, waking any sleepers whose deadline
    /// has passed.
    pub fn advance(&self, d: Duration) {
        let mut now = self.inner.now_nanos.lock();
        *now += d.as_nanos() as u64;
        self.inner.advanced.notify_all();
    }
}

impl Default for TestClock {
    fn default() -> Self {
        TestClock::new()
    }
}

impl Clock for TestClock {
    fn now_nanos(&self) -> u64 {
        *self.inner.now_nanos.lock()
    }

    fn sleep(&self, d: Duration) {
        if d.is_zero() {
            return;
        }
        let deadline = self.now_nanos() + d.as_nanos() as u64;
        let mut now = self.inner.now_nanos.lock();
        while *now < deadline {
            self.inner.advanced.wait(&mut now);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn real_clock_monotonic() {
        let clock = RealClock::new();
        let a = clock.now_nanos();
        let b = clock.now_nanos();
        assert!(b >= a);
    }

    #[test]
    fn real_clock_sleep_zero_returns_immediately() {
        let clock = RealClock::new();
        clock.sleep(Duration::ZERO);
    }

    #[test]
    fn test_clock_starts_at_zero_and_advances() {
        let clock = TestClock::new();
        assert_eq!(clock.now_nanos(), 0);
        clock.advance(Duration::from_millis(5));
        assert_eq!(clock.now(), Duration::from_millis(5));
    }

    #[test]
    fn test_clock_sleep_wakes_on_advance() {
        let clock = TestClock::new();
        let sleeper = clock.clone();
        let handle = thread::spawn(move || {
            sleeper.sleep(Duration::from_millis(10));
            sleeper.now()
        });
        // Give the sleeper a moment to block, then advance past its deadline.
        thread::sleep(Duration::from_millis(20));
        clock.advance(Duration::from_millis(15));
        let woke_at = handle.join().unwrap();
        assert!(woke_at >= Duration::from_millis(10));
    }

    #[test]
    fn test_clock_zero_sleep_is_nonblocking() {
        let clock = TestClock::new();
        clock.sleep(Duration::ZERO);
    }
}
