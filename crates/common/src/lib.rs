//! Shared building blocks for the Obladi reproduction.
//!
//! This crate holds the vocabulary types used by every other crate in the
//! workspace: logical object identifiers, timestamps, epoch/batch counters,
//! the configuration structures of Table 1 in the paper, error types, seeded
//! randomness helpers, the latency models used to emulate the storage
//! backends of the evaluation (§11.2), a Zipfian sampler for YCSB, simple
//! latency/throughput statistics, and a pluggable clock so the epoch logic
//! can be driven deterministically in tests.
//!
//! Nothing in this crate knows about ORAM or transactions; it only provides
//! the substrate-independent pieces.

#![warn(missing_docs)]

pub mod clock;
pub mod config;
pub mod error;
pub mod latency;
pub mod rng;
pub mod stats;
pub mod types;
pub mod zipf;

pub use clock::{Clock, RealClock, TestClock};
pub use config::{BackendKind, EpochConfig, ObladiConfig, OramConfig, ShardConfig};
pub use error::{ObladiError, Result};
pub use latency::{LatencyModel, LatencyProfile};
pub use rng::DetRng;
pub use stats::{LatencyRecorder, RunStats};
pub use types::{BatchId, BucketId, EpochId, Key, Leaf, OpKind, Timestamp, TxnId, Value, Version};
pub use zipf::Zipf;
