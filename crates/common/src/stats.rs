//! Lightweight latency / throughput statistics used by the load driver and
//! the benchmark harness.
//!
//! The evaluation reports average throughput (transactions or operations per
//! second) and latency (average and tail).  [`LatencyRecorder`] collects raw
//! samples and computes percentiles; [`RunStats`] summarises a whole run.

use std::sync::OnceLock;
use std::time::Duration;

use parking_lot::Mutex;

/// Default number of samples a [`LatencyRecorder`] retains.  Beyond this
/// the recorder switches to reservoir sampling: memory stays bounded, the
/// mean and max stay exact (they are tracked separately over *all*
/// samples), and percentiles become a uniform-sample estimate.
pub const DEFAULT_SAMPLE_CAPACITY: usize = 1 << 16;

/// Collects latency samples and derives summary statistics.
///
/// Memory is bounded: up to `capacity` samples are retained verbatim;
/// once full, each new sample enters the reservoir with probability
/// `capacity / seen` (Algorithm R), displacing a uniformly chosen
/// retained one.  [`LatencyRecorder::samples_dropped`] counts how many
/// samples are no longer individually retained.  Percentile queries sort
/// the retained samples once and reuse the sorted view until the next
/// mutation.
#[derive(Debug, Clone)]
pub struct LatencyRecorder {
    samples_us: Vec<u64>,
    capacity: usize,
    /// Total samples ever recorded (including merged-in ones).
    seen: u64,
    /// Exact sum over all `seen` samples.
    sum_us: u128,
    /// Exact maximum over all `seen` samples.
    max_us: u64,
    /// xorshift64 state for reservoir displacement — deterministic, so
    /// runs are reproducible without a rand dependency.
    rng: u64,
    /// Lazily sorted copy of `samples_us`; reset by every mutation.
    sorted: OnceLock<Vec<u64>>,
}

impl Default for LatencyRecorder {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyRecorder {
    /// Creates an empty recorder with the default retention capacity.
    pub fn new() -> Self {
        Self::with_capacity(DEFAULT_SAMPLE_CAPACITY)
    }

    /// Creates an empty recorder retaining at most `capacity` samples.
    pub fn with_capacity(capacity: usize) -> Self {
        LatencyRecorder {
            samples_us: Vec::new(),
            capacity: capacity.max(1),
            seen: 0,
            sum_us: 0,
            max_us: 0,
            rng: 0x9E37_79B9_7F4A_7C15,
            sorted: OnceLock::new(),
        }
    }

    fn next_rand(&mut self) -> u64 {
        let mut x = self.rng;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.rng = x;
        x
    }

    fn observe_us(&mut self, us: u64) {
        self.sorted = OnceLock::new();
        self.seen += 1;
        self.sum_us += us as u128;
        self.max_us = self.max_us.max(us);
        if self.samples_us.len() < self.capacity {
            self.samples_us.push(us);
        } else {
            // Algorithm R: keep the new sample with probability
            // capacity/seen; either way one sample (the evicted or the new)
            // is no longer individually retained.
            let j = (self.next_rand() % self.seen) as usize;
            if j < self.capacity {
                self.samples_us[j] = us;
            }
        }
    }

    /// Records one latency sample.
    pub fn record(&mut self, latency: Duration) {
        self.observe_us(latency.as_micros() as u64);
    }

    /// Number of samples recorded (including ones the bounded reservoir no
    /// longer retains individually).
    pub fn len(&self) -> usize {
        self.seen as usize
    }

    /// Whether no samples have been recorded.
    pub fn is_empty(&self) -> bool {
        self.seen == 0
    }

    /// Samples recorded but no longer individually retained (the reservoir
    /// displaced them).  Zero until `capacity` is exceeded.
    pub fn samples_dropped(&self) -> u64 {
        self.seen - self.samples_us.len() as u64
    }

    /// Merges another recorder's samples into this one.  The mean and max
    /// stay exact; the merged reservoir re-samples the other's retained
    /// values.
    pub fn merge(&mut self, other: &LatencyRecorder) {
        self.sorted = OnceLock::new();
        self.sum_us += other.sum_us;
        self.max_us = self.max_us.max(other.max_us);
        for &us in &other.samples_us {
            self.seen += 1;
            if self.samples_us.len() < self.capacity {
                self.samples_us.push(us);
            } else {
                let j = (self.next_rand() % self.seen) as usize;
                if j < self.capacity {
                    self.samples_us[j] = us;
                }
            }
        }
        // Samples the other recorder had already dropped still count
        // toward the total (their sum and max were merged above).
        self.seen += other.samples_dropped();
    }

    /// Mean latency over *all* recorded samples, or zero if empty.
    pub fn mean(&self) -> Duration {
        if self.seen == 0 {
            return Duration::ZERO;
        }
        Duration::from_micros((self.sum_us / self.seen as u128) as u64)
    }

    /// The `p`-th percentile latency (`0.0 <= p <= 100.0`), or zero if
    /// empty.  Exact while all samples are retained; a uniform-sample
    /// estimate once the reservoir has displaced some.  The sorted view is
    /// built on first use and reused until the next mutation.
    pub fn percentile(&self, p: f64) -> Duration {
        if self.samples_us.is_empty() {
            return Duration::ZERO;
        }
        let sorted = self.sorted.get_or_init(|| {
            let mut sorted = self.samples_us.clone();
            sorted.sort_unstable();
            sorted
        });
        let rank = ((p / 100.0) * (sorted.len() - 1) as f64).round() as usize;
        Duration::from_micros(sorted[rank.min(sorted.len() - 1)])
    }

    /// Median latency.
    pub fn median(&self) -> Duration {
        self.percentile(50.0)
    }

    /// 99th percentile latency.
    pub fn p99(&self) -> Duration {
        self.percentile(99.0)
    }

    /// Maximum latency observed (exact even when samples were dropped).
    pub fn max(&self) -> Duration {
        Duration::from_micros(self.max_us)
    }
}

/// Summary of a benchmark run: how many operations completed / aborted over
/// what wall-clock duration, plus the latency distribution.
#[derive(Debug, Clone)]
pub struct RunStats {
    /// Number of successfully committed transactions (or completed ops).
    pub committed: u64,
    /// Number of aborted transactions.
    pub aborted: u64,
    /// Wall-clock duration of the measured window.
    pub elapsed: Duration,
    /// Latency distribution of committed transactions.
    pub latency: LatencyRecorder,
}

impl RunStats {
    /// Creates a summary from raw counters.
    pub fn new(committed: u64, aborted: u64, elapsed: Duration, latency: LatencyRecorder) -> Self {
        RunStats {
            committed,
            aborted,
            elapsed,
            latency,
        }
    }

    /// Committed operations per second.
    pub fn throughput(&self) -> f64 {
        if self.elapsed.is_zero() {
            return 0.0;
        }
        self.committed as f64 / self.elapsed.as_secs_f64()
    }

    /// Fraction of attempts that aborted.
    pub fn abort_rate(&self) -> f64 {
        let total = self.committed + self.aborted;
        if total == 0 {
            return 0.0;
        }
        self.aborted as f64 / total as f64
    }

    /// Merges two run summaries (e.g. from different client threads).
    pub fn merge(&mut self, other: &RunStats) {
        self.committed += other.committed;
        self.aborted += other.aborted;
        self.elapsed = self.elapsed.max(other.elapsed);
        self.latency.merge(&other.latency);
    }

    /// Renders a one-line human-readable summary.
    pub fn summary(&self) -> String {
        format!(
            "{:.1} ops/s, {} committed, {} aborted ({:.1}% aborts), mean {:?}, p99 {:?}",
            self.throughput(),
            self.committed,
            self.aborted,
            self.abort_rate() * 100.0,
            self.latency.mean(),
            self.latency.p99(),
        )
    }
}

impl Default for RunStats {
    fn default() -> Self {
        RunStats {
            committed: 0,
            aborted: 0,
            elapsed: Duration::ZERO,
            latency: LatencyRecorder::new(),
        }
    }
}

/// Process-global recorder for client-observed commit latency: the wall
/// clock from a transaction's commit request to its acknowledged outcome.
/// The front doors record into it from every client thread; the benchmark
/// harness drains it per measurement cell with [`take_commit_latencies`].
static COMMIT_LATENCY: Mutex<Option<LatencyRecorder>> = Mutex::new(None);

/// Records one client-observed commit latency sample into the process-global
/// recorder.
pub fn record_commit_latency(latency: Duration) {
    COMMIT_LATENCY
        .lock()
        .get_or_insert_with(LatencyRecorder::new)
        .record(latency);
}

/// Drains the process-global commit-latency recorder, returning everything
/// recorded since the previous drain (an empty recorder if nothing was).
pub fn take_commit_latencies() -> LatencyRecorder {
    COMMIT_LATENCY.lock().take().unwrap_or_default()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_recorder_is_zeroed() {
        let r = LatencyRecorder::new();
        assert!(r.is_empty());
        assert_eq!(r.mean(), Duration::ZERO);
        assert_eq!(r.p99(), Duration::ZERO);
        assert_eq!(r.max(), Duration::ZERO);
    }

    #[test]
    fn percentiles_are_order_statistics() {
        let mut r = LatencyRecorder::new();
        for ms in 1..=100u64 {
            r.record(Duration::from_millis(ms));
        }
        let median = r.median();
        assert!(median >= Duration::from_millis(50) && median <= Duration::from_millis(51));
        assert_eq!(r.percentile(100.0), Duration::from_millis(100));
        assert_eq!(r.percentile(0.0), Duration::from_millis(1));
        assert!(r.p99() >= Duration::from_millis(98));
        assert_eq!(r.max(), Duration::from_millis(100));
        assert_eq!(r.mean(), Duration::from_micros(50500));
    }

    #[test]
    fn percentile_cache_invalidates_on_record_and_merge() {
        let mut r = LatencyRecorder::new();
        r.record(Duration::from_millis(10));
        assert_eq!(r.median(), Duration::from_millis(10));
        // A later record must not serve the stale sorted view.
        r.record(Duration::from_millis(30));
        r.record(Duration::from_millis(30));
        assert_eq!(r.median(), Duration::from_millis(30));
        let mut other = LatencyRecorder::new();
        for _ in 0..4 {
            other.record(Duration::from_millis(1));
        }
        r.merge(&other);
        // [1, 1, 1, 1, 10, 30, 30]: the median must see the merged samples.
        assert_eq!(r.median(), Duration::from_millis(1));
    }

    #[test]
    fn bounded_capacity_drops_but_keeps_mean_and_max_exact() {
        let mut r = LatencyRecorder::with_capacity(16);
        for us in 1..=1000u64 {
            r.record(Duration::from_micros(us));
        }
        assert_eq!(r.len(), 1000);
        assert_eq!(r.samples_dropped(), 1000 - 16);
        assert_eq!(r.max(), Duration::from_micros(1000));
        assert_eq!(r.mean(), Duration::from_micros(500));
        // Percentiles come from the 16 retained samples: still inside the
        // observed range and ordered.
        assert!(r.median() >= Duration::from_micros(1));
        assert!(r.median() <= Duration::from_micros(1000));
        assert!(r.percentile(0.0) <= r.median() && r.median() <= r.percentile(100.0));
    }

    #[test]
    fn merge_accounts_for_samples_the_source_dropped() {
        let mut a = LatencyRecorder::with_capacity(8);
        for us in 1..=100u64 {
            a.record(Duration::from_micros(us));
        }
        let mut b = LatencyRecorder::new();
        b.merge(&a);
        assert_eq!(b.len(), 100);
        assert_eq!(b.mean(), a.mean());
        assert_eq!(b.max(), a.max());
        // b retains only what a retained; the rest count as dropped.
        assert_eq!(b.samples_dropped(), a.samples_dropped());
    }

    #[test]
    fn throughput_and_abort_rate() {
        let stats = RunStats::new(100, 25, Duration::from_secs(2), LatencyRecorder::new());
        assert!((stats.throughput() - 50.0).abs() < 1e-9);
        assert!((stats.abort_rate() - 0.2).abs() < 1e-9);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = RunStats::new(10, 1, Duration::from_secs(1), LatencyRecorder::new());
        let b = RunStats::new(20, 2, Duration::from_secs(2), LatencyRecorder::new());
        a.merge(&b);
        assert_eq!(a.committed, 30);
        assert_eq!(a.aborted, 3);
        assert_eq!(a.elapsed, Duration::from_secs(2));
    }

    #[test]
    fn global_commit_latency_recorder_drains() {
        record_commit_latency(Duration::from_millis(3));
        record_commit_latency(Duration::from_millis(5));
        let drained = take_commit_latencies();
        assert_eq!(drained.len(), 2);
        assert_eq!(drained.max(), Duration::from_millis(5));
        // A drain resets the global recorder.
        assert!(take_commit_latencies().is_empty());
    }

    #[test]
    fn zero_elapsed_does_not_divide_by_zero() {
        let stats = RunStats::default();
        assert_eq!(stats.throughput(), 0.0);
        assert_eq!(stats.abort_rate(), 0.0);
        assert!(!stats.summary().is_empty());
    }
}
