//! Lightweight latency / throughput statistics used by the load driver and
//! the benchmark harness.
//!
//! The evaluation reports average throughput (transactions or operations per
//! second) and latency (average and tail).  [`LatencyRecorder`] collects raw
//! samples and computes percentiles; [`RunStats`] summarises a whole run.

use std::time::Duration;

/// Collects latency samples and derives summary statistics.
#[derive(Debug, Clone, Default)]
pub struct LatencyRecorder {
    samples_us: Vec<u64>,
}

impl LatencyRecorder {
    /// Creates an empty recorder.
    pub fn new() -> Self {
        LatencyRecorder {
            samples_us: Vec::new(),
        }
    }

    /// Records one latency sample.
    pub fn record(&mut self, latency: Duration) {
        self.samples_us.push(latency.as_micros() as u64);
    }

    /// Number of samples recorded.
    pub fn len(&self) -> usize {
        self.samples_us.len()
    }

    /// Whether no samples have been recorded.
    pub fn is_empty(&self) -> bool {
        self.samples_us.is_empty()
    }

    /// Merges another recorder's samples into this one.
    pub fn merge(&mut self, other: &LatencyRecorder) {
        self.samples_us.extend_from_slice(&other.samples_us);
    }

    /// Mean latency, or zero if empty.
    pub fn mean(&self) -> Duration {
        if self.samples_us.is_empty() {
            return Duration::ZERO;
        }
        let sum: u64 = self.samples_us.iter().sum();
        Duration::from_micros(sum / self.samples_us.len() as u64)
    }

    /// The `p`-th percentile latency (`0.0 <= p <= 100.0`), or zero if empty.
    pub fn percentile(&self, p: f64) -> Duration {
        if self.samples_us.is_empty() {
            return Duration::ZERO;
        }
        let mut sorted = self.samples_us.clone();
        sorted.sort_unstable();
        let rank = ((p / 100.0) * (sorted.len() - 1) as f64).round() as usize;
        Duration::from_micros(sorted[rank.min(sorted.len() - 1)])
    }

    /// Median latency.
    pub fn median(&self) -> Duration {
        self.percentile(50.0)
    }

    /// 99th percentile latency.
    pub fn p99(&self) -> Duration {
        self.percentile(99.0)
    }

    /// Maximum latency observed.
    pub fn max(&self) -> Duration {
        Duration::from_micros(self.samples_us.iter().copied().max().unwrap_or(0))
    }
}

/// Summary of a benchmark run: how many operations completed / aborted over
/// what wall-clock duration, plus the latency distribution.
#[derive(Debug, Clone)]
pub struct RunStats {
    /// Number of successfully committed transactions (or completed ops).
    pub committed: u64,
    /// Number of aborted transactions.
    pub aborted: u64,
    /// Wall-clock duration of the measured window.
    pub elapsed: Duration,
    /// Latency distribution of committed transactions.
    pub latency: LatencyRecorder,
}

impl RunStats {
    /// Creates a summary from raw counters.
    pub fn new(committed: u64, aborted: u64, elapsed: Duration, latency: LatencyRecorder) -> Self {
        RunStats {
            committed,
            aborted,
            elapsed,
            latency,
        }
    }

    /// Committed operations per second.
    pub fn throughput(&self) -> f64 {
        if self.elapsed.is_zero() {
            return 0.0;
        }
        self.committed as f64 / self.elapsed.as_secs_f64()
    }

    /// Fraction of attempts that aborted.
    pub fn abort_rate(&self) -> f64 {
        let total = self.committed + self.aborted;
        if total == 0 {
            return 0.0;
        }
        self.aborted as f64 / total as f64
    }

    /// Merges two run summaries (e.g. from different client threads).
    pub fn merge(&mut self, other: &RunStats) {
        self.committed += other.committed;
        self.aborted += other.aborted;
        self.elapsed = self.elapsed.max(other.elapsed);
        self.latency.merge(&other.latency);
    }

    /// Renders a one-line human-readable summary.
    pub fn summary(&self) -> String {
        format!(
            "{:.1} ops/s, {} committed, {} aborted ({:.1}% aborts), mean {:?}, p99 {:?}",
            self.throughput(),
            self.committed,
            self.aborted,
            self.abort_rate() * 100.0,
            self.latency.mean(),
            self.latency.p99(),
        )
    }
}

impl Default for RunStats {
    fn default() -> Self {
        RunStats {
            committed: 0,
            aborted: 0,
            elapsed: Duration::ZERO,
            latency: LatencyRecorder::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_recorder_is_zeroed() {
        let r = LatencyRecorder::new();
        assert!(r.is_empty());
        assert_eq!(r.mean(), Duration::ZERO);
        assert_eq!(r.p99(), Duration::ZERO);
        assert_eq!(r.max(), Duration::ZERO);
    }

    #[test]
    fn percentiles_are_order_statistics() {
        let mut r = LatencyRecorder::new();
        for ms in 1..=100u64 {
            r.record(Duration::from_millis(ms));
        }
        let median = r.median();
        assert!(median >= Duration::from_millis(50) && median <= Duration::from_millis(51));
        assert_eq!(r.percentile(100.0), Duration::from_millis(100));
        assert_eq!(r.percentile(0.0), Duration::from_millis(1));
        assert!(r.p99() >= Duration::from_millis(98));
        assert_eq!(r.max(), Duration::from_millis(100));
        assert_eq!(r.mean(), Duration::from_micros(50500));
    }

    #[test]
    fn throughput_and_abort_rate() {
        let stats = RunStats::new(100, 25, Duration::from_secs(2), LatencyRecorder::new());
        assert!((stats.throughput() - 50.0).abs() < 1e-9);
        assert!((stats.abort_rate() - 0.2).abs() < 1e-9);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = RunStats::new(10, 1, Duration::from_secs(1), LatencyRecorder::new());
        let b = RunStats::new(20, 2, Duration::from_secs(2), LatencyRecorder::new());
        a.merge(&b);
        assert_eq!(a.committed, 30);
        assert_eq!(a.aborted, 3);
        assert_eq!(a.elapsed, Duration::from_secs(2));
    }

    #[test]
    fn zero_elapsed_does_not_divide_by_zero() {
        let stats = RunStats::default();
        assert_eq!(stats.throughput(), 0.0);
        assert_eq!(stats.abort_rate(), 0.0);
        assert!(!stats.summary().is_empty());
    }
}
