//! Latency models for the simulated storage backends.
//!
//! The paper's evaluation (§11.2) compares four storage backends that differ
//! only in access latency and client behaviour:
//!
//! * `dummy` — a local object that stores nothing (measures CPU cost only);
//! * `server` — a remote in-memory hashmap with a 0.3 ms ping;
//! * `server WAN` — the same with a 10 ms ping;
//! * `dynamo` — DynamoDB with ~1 ms reads, ~3 ms writes and a blocking
//!   HTTP client that limits per-connection parallelism.
//!
//! This module models those profiles as injected latencies.  A global
//! `scale` factor shrinks the latencies so the benchmark harness can run in
//! CI-sized time budgets without changing the *relative* behaviour that the
//! figures demonstrate (parallelism pays off more as latency grows).

use crate::config::BackendKind;
use crate::rng::DetRng;
use std::time::Duration;

/// A distribution of service latencies for one operation type.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LatencyModel {
    /// Mean service latency.
    pub mean: Duration,
    /// Uniform jitter applied around the mean (+/- jitter/2).
    pub jitter: Duration,
}

impl LatencyModel {
    /// A latency model with no delay at all.
    pub const ZERO: LatencyModel = LatencyModel {
        mean: Duration::ZERO,
        jitter: Duration::ZERO,
    };

    /// Creates a model with the given mean and ±10% jitter.
    pub fn with_mean(mean: Duration) -> Self {
        LatencyModel {
            mean,
            jitter: mean / 5,
        }
    }

    /// Samples a concrete latency.
    pub fn sample(&self, rng: &mut DetRng) -> Duration {
        if self.mean.is_zero() {
            return Duration::ZERO;
        }
        if self.jitter.is_zero() {
            return self.mean;
        }
        let jitter_ns = self.jitter.as_nanos() as u64;
        let offset = rng.below(jitter_ns.max(1));
        let base = self.mean.as_nanos() as u64;
        // Centre the jitter around the mean, saturating at zero.
        let low = base.saturating_sub(jitter_ns / 2);
        Duration::from_nanos(low + offset)
    }

    /// Scales the model by `factor` (0 disables latency entirely).
    pub fn scaled(&self, factor: f64) -> LatencyModel {
        let scale = |d: Duration| -> Duration {
            Duration::from_nanos(((d.as_nanos() as f64) * factor).round() as u64)
        };
        LatencyModel {
            mean: scale(self.mean),
            jitter: scale(self.jitter),
        }
    }
}

/// Read/write latency profile plus client-side concurrency limits for one
/// backend kind.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LatencyProfile {
    /// Which backend this profile describes.
    pub kind: BackendKind,
    /// Latency of a bucket / metadata read.
    pub read: LatencyModel,
    /// Latency of a bucket / metadata write.
    pub write: LatencyModel,
    /// Maximum number of in-flight requests the backend's client library
    /// allows (`None` = unbounded).  The paper notes that the DynamoDB
    /// client uses blocking HTTP calls, which caps its effective
    /// parallelism.
    pub max_in_flight: Option<usize>,
}

impl LatencyProfile {
    /// The latency profile for `kind` at the paper's nominal latencies.
    pub fn for_backend(kind: BackendKind) -> Self {
        match kind {
            BackendKind::Dummy => LatencyProfile {
                kind,
                read: LatencyModel::ZERO,
                write: LatencyModel::ZERO,
                max_in_flight: None,
            },
            BackendKind::Server => LatencyProfile {
                kind,
                read: LatencyModel::with_mean(Duration::from_micros(300)),
                write: LatencyModel::with_mean(Duration::from_micros(300)),
                max_in_flight: None,
            },
            BackendKind::ServerWan => LatencyProfile {
                kind,
                read: LatencyModel::with_mean(Duration::from_millis(10)),
                write: LatencyModel::with_mean(Duration::from_millis(10)),
                max_in_flight: None,
            },
            BackendKind::Dynamo => LatencyProfile {
                kind,
                read: LatencyModel::with_mean(Duration::from_millis(1)),
                write: LatencyModel::with_mean(Duration::from_millis(3)),
                max_in_flight: Some(64),
            },
        }
    }

    /// The profile scaled by `factor`; a factor of `0.0` turns the backend
    /// into a pure in-memory store (useful for unit tests).
    pub fn scaled(&self, factor: f64) -> LatencyProfile {
        LatencyProfile {
            kind: self.kind,
            read: self.read.scaled(factor),
            write: self.write.scaled(factor),
            max_in_flight: self.max_in_flight,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_model_never_sleeps() {
        let mut rng = DetRng::new(1);
        assert_eq!(LatencyModel::ZERO.sample(&mut rng), Duration::ZERO);
    }

    #[test]
    fn samples_stay_near_mean() {
        let mut rng = DetRng::new(2);
        let model = LatencyModel::with_mean(Duration::from_millis(10));
        for _ in 0..200 {
            let s = model.sample(&mut rng);
            assert!(s >= Duration::from_millis(8), "sample {s:?} too small");
            assert!(s <= Duration::from_millis(12), "sample {s:?} too large");
        }
    }

    #[test]
    fn scaling_to_zero_disables_latency() {
        let profile = LatencyProfile::for_backend(BackendKind::ServerWan).scaled(0.0);
        assert_eq!(profile.read.mean, Duration::ZERO);
        assert_eq!(profile.write.mean, Duration::ZERO);
    }

    #[test]
    fn profiles_reflect_paper_latencies() {
        let wan = LatencyProfile::for_backend(BackendKind::ServerWan);
        let server = LatencyProfile::for_backend(BackendKind::Server);
        let dynamo = LatencyProfile::for_backend(BackendKind::Dynamo);
        assert!(wan.read.mean > server.read.mean);
        assert!(dynamo.write.mean > dynamo.read.mean);
        assert!(dynamo.max_in_flight.is_some());
        assert_eq!(
            LatencyProfile::for_backend(BackendKind::Dummy).read.mean,
            Duration::ZERO
        );
    }

    #[test]
    fn scaled_halves_mean() {
        let m = LatencyModel::with_mean(Duration::from_millis(10)).scaled(0.5);
        assert_eq!(m.mean, Duration::from_millis(5));
    }
}
