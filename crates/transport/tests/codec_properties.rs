//! Property tests of the frame codec and the store-message schema:
//! round trips survive arbitrary payloads and arbitrary read splits, a
//! torn trailing frame is rejected without desynchronising the frames
//! before it, and a protocol-version mismatch is caught at the handshake.

use bytes::Bytes;
use obladi_storage::{StoreRequest, StoreResponse};
use obladi_transport::frame::{
    encode_frame, encode_hello, parse_hello, Frame, FrameDecoder, PROTOCOL_VERSION,
};
use proptest::prelude::*;

/// Builds a frame from generated parts (payload tag forced consistent).
fn build_frame(id: u64, mut payload: Vec<u8>) -> Frame {
    if payload.is_empty() {
        payload.push(0x01);
    }
    Frame {
        id,
        opcode: payload[0],
        payload: Bytes::from(payload),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Any sequence of frames, delivered in any split pattern, decodes to
    /// exactly the input sequence.
    #[test]
    fn frames_round_trip_under_arbitrary_splits(
        parts in prop::collection::vec(
            (any::<u64>(), prop::collection::vec(any::<u8>(), 1..512)),
            1..12,
        ),
        split_seed in any::<u64>(),
    ) {
        let frames: Vec<Frame> = parts
            .into_iter()
            .map(|(id, payload)| build_frame(id, payload))
            .collect();
        let mut wire = Vec::new();
        for frame in &frames {
            encode_frame(&mut wire, frame);
        }

        // Deterministic pseudo-random chunking of the byte stream.
        let mut decoder = FrameDecoder::new();
        let mut decoded = Vec::new();
        let mut offset = 0usize;
        let mut state = split_seed | 1;
        while offset < wire.len() {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let chunk = 1 + (state >> 33) as usize % 97;
            let end = (offset + chunk).min(wire.len());
            decoder.extend(&wire[offset..end]);
            while let Some(frame) = decoder.next_frame().map_err(|e| {
                TestCaseError::fail(format!("decode error: {e}"))
            })? {
                decoded.push(frame);
            }
            offset = end;
        }
        prop_assert_eq!(decoded, frames);
        prop_assert!(decoder.finish().is_ok());
    }

    /// Cutting the wire anywhere inside the final frame loses only that
    /// frame: every earlier frame still decodes, and the truncation is
    /// reported as a torn tail instead of desynchronising.
    #[test]
    fn torn_trailing_frame_never_desyncs(
        parts in prop::collection::vec(
            (any::<u64>(), prop::collection::vec(any::<u8>(), 1..128)),
            1..6,
        ),
        cut_back in 1usize..64,
    ) {
        let frames: Vec<Frame> = parts
            .into_iter()
            .map(|(id, payload)| build_frame(id, payload))
            .collect();
        let mut wire = Vec::new();
        let mut boundaries = Vec::new();
        for frame in &frames {
            encode_frame(&mut wire, frame);
            boundaries.push(wire.len());
        }
        let last_start = if frames.len() == 1 { 0 } else { boundaries[frames.len() - 2] };
        // Land the cut strictly inside the last frame: at least one of its
        // bytes delivered, at least one withheld.
        let tail_len = wire.len() - last_start;
        let cut = wire.len() - ((cut_back % (tail_len - 1)) + 1);

        let mut decoder = FrameDecoder::new();
        decoder.extend(&wire[..cut]);
        let mut decoded = Vec::new();
        while let Some(frame) = decoder.next_frame().map_err(|e| {
            TestCaseError::fail(format!("decode error: {e}"))
        })? {
            decoded.push(frame);
        }
        prop_assert_eq!(&decoded[..], &frames[..frames.len() - 1]);
        prop_assert!(decoder.finish().is_err(), "torn tail must be reported");
    }

    /// Store requests survive encode → frame → unframe → decode across
    /// arbitrary payload contents.
    #[test]
    fn store_requests_round_trip_through_frames(
        bucket in any::<u64>(),
        slots in prop::collection::vec(prop::collection::vec(any::<u8>(), 0..64), 0..8),
        id in any::<u64>(),
    ) {
        let request = StoreRequest::WriteBucket {
            bucket,
            slots: slots.into_iter().map(Bytes::from).collect(),
        };
        let frame = Frame::for_message(id, request.encode()).unwrap();
        let mut wire = Vec::new();
        encode_frame(&mut wire, &frame);
        let mut decoder = FrameDecoder::new();
        decoder.extend(&wire);
        let out = decoder.next_frame().unwrap().unwrap();
        prop_assert_eq!(out.id, id);
        let decoded = StoreRequest::decode(&out.payload).unwrap();
        prop_assert_eq!(decoded, request);
    }

    /// Responses too: log records of arbitrary shape round trip.
    #[test]
    fn store_responses_round_trip_through_frames(
        records in prop::collection::vec(
            (any::<u64>(), prop::collection::vec(any::<u8>(), 0..64)),
            0..8,
        ),
    ) {
        let response = StoreResponse::LogRecords {
            records: records.into_iter().map(|(seq, data)| (seq, Bytes::from(data))).collect(),
            truncated: false,
        };
        let frame = Frame::for_message(1, response.encode()).unwrap();
        let mut wire = Vec::new();
        encode_frame(&mut wire, &frame);
        let mut decoder = FrameDecoder::new();
        decoder.extend(&wire);
        let out = decoder.next_frame().unwrap().unwrap();
        let decoded = StoreResponse::decode(&out.payload).unwrap();
        prop_assert_eq!(decoded, response);
    }
}

#[test]
fn protocol_version_mismatch_is_detected_at_handshake() {
    // The hello parses (magic is right) and surfaces the foreign version;
    // rejecting it is the connection layer's one-line job, which the
    // client does with a diagnostic naming both versions.
    let foreign = encode_hello(PROTOCOL_VERSION + 7);
    let version = parse_hello(&foreign).unwrap();
    assert_ne!(version, PROTOCOL_VERSION);

    // End to end: a server speaking version N refuses a client hello
    // carrying version N+1 after answering with its own version.
    use obladi_storage::{InMemoryStore, UntrustedStore};
    use std::io::{Read, Write};
    use std::sync::Arc;

    let store = Arc::new(InMemoryStore::new()) as Arc<dyn UntrustedStore>;
    let spec = obladi_transport::SocketSpec::parse("tcp:127.0.0.1:0").unwrap();
    let mut handle = obladi_transport::serve(&spec, store).unwrap();

    let mut stream =
        obladi_transport::Stream::connect(handle.spec(), std::time::Duration::from_secs(5))
            .unwrap();
    stream
        .write_all(&encode_hello(PROTOCOL_VERSION + 1))
        .unwrap();
    stream.flush().unwrap();
    let mut hello = [0u8; 6];
    stream.read_exact(&mut hello).unwrap();
    assert_eq!(parse_hello(&hello).unwrap(), PROTOCOL_VERSION);
    // The server closes without framing a byte: the next read is EOF.
    let mut rest = Vec::new();
    let n = stream.read_to_end(&mut rest).unwrap_or(0);
    assert_eq!(n, 0, "server must close after a version mismatch");
    handle.stop();
}

#[test]
fn bad_magic_is_rejected_before_any_framing() {
    let mut hello = encode_hello(PROTOCOL_VERSION);
    hello[1] = b'!';
    assert!(parse_hello(&hello).is_err());
}
