//! Wire-level indistinguishability properties: on the socket, a slot read
//! for a *real* block and one for a *dummy* pad must be byte-for-byte the
//! same length — request and response — for arbitrary addresses and
//! arbitrary (equal-length) sealed contents.  The sealed blocks of one
//! tree level share a fixed ciphertext size, so equal payload length is
//! exactly what the encryption layer guarantees; this pins down that the
//! framing layer adds nothing data-dependent on top.

use bytes::Bytes;
use obladi_storage::{StoreRequest, StoreResponse};
use obladi_transport::frame::{encode_frame, Frame};
use proptest::prelude::*;

/// Total on-the-wire size of a message: 4-byte length prefix plus the
/// header-and-payload frame body.
fn wire_len(id: u64, payload: &[u8]) -> usize {
    let frame = Frame {
        id,
        opcode: payload[0],
        payload: Bytes::from(payload.to_vec()),
    };
    let mut wire = Vec::new();
    encode_frame(&mut wire, &frame);
    wire.len()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Slot-read *requests* are one fixed wire size regardless of which
    /// bucket and slot they target: address values must not modulate
    /// frame length (no varint-style leakage).
    #[test]
    fn slot_read_requests_are_fixed_size(
        bucket_a in any::<u64>(), slot_a in any::<u32>(),
        bucket_b in any::<u64>(), slot_b in any::<u32>(),
        id_a in any::<u64>(), id_b in any::<u64>(),
    ) {
        let real = StoreRequest::ReadSlot { bucket: bucket_a, slot: slot_a }.encode();
        let dummy = StoreRequest::ReadSlot { bucket: bucket_b, slot: slot_b }.encode();
        prop_assert_eq!(wire_len(id_a, &real), wire_len(id_b, &dummy));
    }

    /// Slot-read *responses* carrying equal-length sealed blocks are one
    /// wire size for arbitrary contents: a response serving a real block
    /// is indistinguishable by length from one serving a dummy pad.
    #[test]
    fn equal_length_slot_responses_are_indistinguishable(
        real in prop::collection::vec(any::<u8>(), 1..512),
        dummy_byte in any::<u8>(),
        id_a in any::<u64>(), id_b in any::<u64>(),
    ) {
        let dummy = vec![dummy_byte; real.len()];
        let real_payload = StoreResponse::Slot(Bytes::from(real)).encode();
        let dummy_payload = StoreResponse::Slot(Bytes::from(dummy)).encode();
        prop_assert_eq!(real_payload.len(), dummy_payload.len());
        prop_assert_eq!(wire_len(id_a, &real_payload), wire_len(id_b, &dummy_payload));
    }
}
