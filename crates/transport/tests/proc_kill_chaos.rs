//! Process-kill chaos through the sharded front door: `kill -9` one
//! shard's `obladi-stored` daemon mid-epoch, respawn it, recover the
//! shard, and assert the full oracle battery (all-or-nothing,
//! acknowledged-implies-durable, recovery idempotence, serializability,
//! 2PC decision drain).
//!
//! A fast smoke case runs in the default tier; the full schedule (kill
//! depths × victim sides) is `#[ignore]`d for the release chaos job
//! (`cargo test --release -- --ignored`).

use obladi_testkit::{proc_kill_schedule, run_proc_kill_case};
use obladi_transport::STORED_BIN_ENV;

fn set_stored_bin() {
    std::env::set_var(STORED_BIN_ENV, env!("CARGO_BIN_EXE_obladi-stored"));
}

/// One representative case: the daemon dies after the first acknowledged
/// cross-shard commit, with both hammered pairs hot through the victim.
#[test]
fn storage_daemon_kill9_smoke() {
    set_stored_bin();
    let schedule = proc_kill_schedule();
    let case = schedule
        .iter()
        .find(|case| case.kill_after_acked == 1 && !case.victim_second)
        .expect("schedule has the smoke case");
    let report = run_proc_kill_case(case, 0xD1E5_0001).unwrap();
    assert!(
        report.attempts[0] + report.attempts[1] > 0,
        "hammers never attempted anything: {report:?}"
    );
    assert_ne!(report.pids.0, report.pids.1, "respawn must change the pid");
}

/// The full sweep: every kill depth on either side of the pair.
#[test]
#[ignore = "full process-kill sweep; run with --ignored in the release chaos job"]
fn storage_daemon_kill9_sweep() {
    set_stored_bin();
    let mut failures = Vec::new();
    for (index, case) in proc_kill_schedule().iter().enumerate() {
        match run_proc_kill_case(case, 0xD1E5_1000 + index as u64) {
            Ok(report) => {
                println!(
                    "[{}] acked={:?} attempts={:?} in_doubt={} replayed={} pids={:?}",
                    report.name,
                    report.acked,
                    report.attempts,
                    report.in_doubt,
                    report.replayed_commits,
                    report.pids
                );
            }
            Err(err) => failures.push(format!("{}: {err}", case.name)),
        }
    }
    assert!(
        failures.is_empty(),
        "failed cases:\n{}",
        failures.join("\n")
    );
}
