//! `StorageBackend::RemoteAddr` end to end: the deployment connects to
//! storage servers it does *not* supervise — the multi-machine shape,
//! here hosted on threads with real TCP sockets in between.

use obladi_common::config::{ShardConfig, StorageBackend};
use obladi_shard::ShardedDb;
use obladi_storage::{InMemoryStore, UntrustedStore};
use obladi_transport::{serve, SocketSpec};
use std::sync::Arc;
use std::time::Duration;

use obladi_testkit::shard_chaos::commit_with_retries;

#[test]
fn sharded_db_over_remote_addr_tcp_servers() {
    // Two storage servers the deployment does not own.
    let mut handles = Vec::new();
    let mut addrs = Vec::new();
    for _ in 0..2 {
        let store: Arc<dyn UntrustedStore> = Arc::new(InMemoryStore::new());
        let handle = serve(&SocketSpec::parse("tcp:127.0.0.1:0").unwrap(), store).unwrap();
        addrs.push(handle.spec().to_string());
        handles.push(handle);
    }

    let mut config =
        ShardConfig::small_for_tests(2, 1_024).with_storage(StorageBackend::RemoteAddr(addrs));
    config.shard.epoch.batch_interval = Duration::from_millis(1);
    let db = ShardedDb::open(config).unwrap();

    // Unsupervised storage: the kill/respawn surface must refuse.
    assert!(!db.has_storage_supervisor());
    assert!(db.kill_shard_storage(0).is_err());
    assert!(db.respawn_shard_storage(0).is_err());

    // A cross-shard transaction commits and reads back across TCP.
    let key_a = 0u64;
    let key_b = (1..10_000u64)
        .find(|&k| db.router().route(k) != db.router().route(key_a))
        .expect("no cross-shard key found");
    commit_with_retries(&db, |txn| {
        txn.write(key_a, b"left".to_vec())?;
        txn.write(key_b, b"right".to_vec())
    })
    .expect("cross-shard write never committed");
    let mut seen = (None, None);
    commit_with_retries(&db, |txn| {
        seen = (txn.read(key_a)?, txn.read(key_b)?);
        Ok(())
    })
    .expect("cross-shard read never committed");
    assert_eq!(seen.0.as_deref(), Some(&b"left"[..]));
    assert_eq!(seen.1.as_deref(), Some(&b"right"[..]));

    db.shutdown();
    for handle in &mut handles {
        handle.stop();
    }
}

#[test]
fn remote_addr_config_rejects_wrong_address_count() {
    let config = ShardConfig::small_for_tests(2, 256)
        .with_storage(StorageBackend::RemoteAddr(vec!["tcp:127.0.0.1:1".into()]));
    assert!(ShardedDb::open(config).is_err());
}
