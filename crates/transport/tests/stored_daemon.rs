//! Lifecycle tests of the real `obladi-stored` daemon binary: spawn,
//! serve, graceful shutdown, `kill -9`, respawn over the same data
//! directory — asserting that every acknowledged operation survives the
//! kill via op-log replay.
//!
//! These tests live in `crates/transport` so `CARGO_BIN_EXE_obladi-stored`
//! guarantees cargo built the daemon before running them.

use bytes::Bytes;
use obladi_storage::UntrustedStore;
use obladi_transport::{RemoteStore, StorageSupervisor, STORED_BIN_ENV};
use std::time::Duration;

/// Points the supervisor at the binary cargo just built, wherever the
/// test process runs from.
fn set_stored_bin() {
    std::env::set_var(STORED_BIN_ENV, env!("CARGO_BIN_EXE_obladi-stored"));
}

#[test]
fn daemon_serves_and_shuts_down_gracefully() {
    set_stored_bin();
    let supervisor = StorageSupervisor::spawn(1).unwrap();
    let client = RemoteStore::connect(supervisor.addr(0), Duration::from_secs(10)).unwrap();
    client
        .write_bucket(1, vec![Bytes::from_static(b"hello daemon")])
        .unwrap();
    assert_eq!(&client.read_slot(1, 0).unwrap()[..], b"hello daemon");
    supervisor.stop(0);
    assert!(
        client.read_slot(1, 0).is_err(),
        "a stopped daemon must not answer"
    );
}

#[test]
fn acknowledged_writes_survive_kill_minus_nine() {
    set_stored_bin();
    let supervisor = StorageSupervisor::spawn(1).unwrap();
    let client = RemoteStore::connect(supervisor.addr(0), Duration::from_secs(10)).unwrap();

    // Acknowledged state of every mutating kind.
    client
        .write_bucket(7, vec![Bytes::from_static(b"v1")])
        .unwrap();
    client
        .write_bucket(7, vec![Bytes::from_static(b"v2")])
        .unwrap();
    client.revert_bucket(7, 1).unwrap();
    client
        .put_meta("checkpoint", Bytes::from_static(b"ckpt"))
        .unwrap();
    assert_eq!(client.append_log(Bytes::from_static(b"wal-0")).unwrap(), 0);
    assert_eq!(client.append_log(Bytes::from_static(b"wal-1")).unwrap(), 1);
    client.truncate_log(1).unwrap();

    let pid_before = supervisor.pid(0).expect("daemon running");
    supervisor.kill(0).unwrap();
    assert!(
        client.read_slot(7, 0).is_err(),
        "a SIGKILLed daemon must surface as a storage fault"
    );

    supervisor.respawn(0).unwrap();
    let pid_after = supervisor.pid(0).expect("daemon respawned");
    assert_ne!(pid_before, pid_after, "respawn must be a new process");

    // The same client reattaches; every acknowledged operation is back.
    assert_eq!(&client.read_slot(7, 0).unwrap()[..], b"v1");
    assert_eq!(client.bucket_version(7).unwrap(), 1);
    assert_eq!(
        client.get_meta("checkpoint").unwrap(),
        Some(Bytes::from_static(b"ckpt"))
    );
    let log = client.read_log_from(0).unwrap();
    assert_eq!(log.len(), 1);
    assert_eq!(log[0].0, 1);
    assert_eq!(&log[0].1[..], b"wal-1");
    // Sequence numbers continue from the replayed history.
    assert_eq!(client.append_log(Bytes::from_static(b"wal-2")).unwrap(), 2);
    supervisor.stop_all();
}

/// Op-log compaction satellite: the same mutation history respawns from a
/// bounded log once snapshots are on.  Respawn latency is recorded for both
/// runs (the before/after numbers the ROADMAP item asks for); the hard
/// assertions are structural — snapshot present, residual log a fraction of
/// the uncompacted one — because wall-clock comparisons flake under CI load.
#[test]
fn compaction_bounds_respawn_replay() {
    use std::time::Instant;
    set_stored_bin();
    const MUTATIONS: u64 = 600;

    let run = |compact_every: u64| -> (Duration, u64, bool) {
        // Cadence travels as a per-daemon `--compact-every` argument, never
        // through process-global env state (sibling tests spawn daemons
        // concurrently and must not inherit this test's cadence).
        let supervisor = StorageSupervisor::spawn_with_compaction(1, compact_every).unwrap();
        let client = RemoteStore::connect(supervisor.addr(0), Duration::from_secs(10)).unwrap();
        for i in 0..MUTATIONS {
            client
                .write_bucket(i % 4, vec![Bytes::from(i.to_le_bytes().to_vec())])
                .unwrap();
        }
        supervisor.kill(0).unwrap();
        let start = Instant::now();
        supervisor.respawn(0).unwrap();
        assert_eq!(
            &client.read_slot(3, 0).unwrap()[..],
            &599u64.to_le_bytes()[..],
            "state must survive the kill"
        );
        let respawn_latency = start.elapsed();

        let data = supervisor.data_dir(0);
        let mut oplog_bytes = 0u64;
        let mut have_snapshot = false;
        for entry in std::fs::read_dir(&data).unwrap().flatten() {
            let name = entry.file_name().to_string_lossy().into_owned();
            if name.starts_with("store.oplog") {
                oplog_bytes += entry.metadata().unwrap().len();
            }
            if name == "store.snapshot" {
                have_snapshot = true;
            }
        }
        supervisor.stop_all();
        (respawn_latency, oplog_bytes, have_snapshot)
    };

    let (latency_before, oplog_before, snapshot_before) = run(0);
    let (latency_after, oplog_after, snapshot_after) = run(100);
    println!(
        "respawn after {MUTATIONS} mutations: uncompacted {latency_before:?} \
         ({oplog_before} op-log bytes), compacted {latency_after:?} ({oplog_after} op-log bytes)"
    );
    assert!(!snapshot_before, "compaction off must write no snapshot");
    assert!(snapshot_after, "compaction on must have snapshotted");
    assert!(
        oplog_after < oplog_before / 2,
        "the compacted residual op-log ({oplog_after} bytes) must be a fraction of the \
         uncompacted one ({oplog_before} bytes)"
    );
}

#[test]
fn kill_respawn_cycles_accumulate_state() {
    set_stored_bin();
    let supervisor = StorageSupervisor::spawn(1).unwrap();
    let client = RemoteStore::connect(supervisor.addr(0), Duration::from_secs(10)).unwrap();
    for round in 0u64..3 {
        client
            .write_bucket(round, vec![Bytes::from(vec![round as u8])])
            .unwrap();
        supervisor.kill(0).unwrap();
        supervisor.respawn(0).unwrap();
        for earlier in 0..=round {
            assert_eq!(
                client.read_slot(earlier, 0).unwrap(),
                Bytes::from(vec![earlier as u8]),
                "round {round}: bucket {earlier} lost"
            );
        }
    }
    supervisor.stop_all();
}

/// The cross-process telemetry satellite: a real daemon must answer
/// `MetricsSnapshot` with its own `daemon.*` registry slice (op-log
/// appends land there on every mutation), and the `UntrustedStore`
/// default hook must surface the same thing.
#[test]
fn daemon_reports_metrics_over_the_wire() {
    set_stored_bin();
    let supervisor = StorageSupervisor::spawn(1).unwrap();
    let client = RemoteStore::connect(supervisor.addr(0), Duration::from_secs(10)).unwrap();
    client
        .write_bucket(3, vec![Bytes::from_static(b"metered")])
        .unwrap();
    client.append_log(Bytes::from_static(b"wal")).unwrap();

    let metrics = client.metrics_snapshot().unwrap();
    let appends = metrics
        .counters
        .iter()
        .find(|(name, _)| name == "daemon.oplog.appends")
        .map(|(_, count)| *count)
        .unwrap_or(0);
    assert!(appends >= 2, "expected oplog appends, got {metrics:?}");
    assert!(
        metrics
            .counters
            .iter()
            .chain(metrics.counters.iter())
            .all(|(name, _)| name.starts_with("daemon.")),
        "daemon must only export its daemon.* slice: {metrics:?}"
    );

    let via_trait = client.daemon_metrics().expect("trait hook must surface");
    assert!(via_trait
        .counters
        .iter()
        .any(|(name, _)| name == "daemon.oplog.appends"));
}
