//! Socket address abstraction: Unix-domain and TCP endpoints behind one
//! type, parsed from `unix:/path/to.sock` / `tcp:host:port` strings.
//!
//! The proxy↔storage boundary is deliberately transport-agnostic: a
//! same-machine deployment wants Unix sockets (no port allocation, file
//! permissions as access control), a multi-machine deployment wants TCP.
//! Everything above this module sees only [`SocketSpec`], [`Listener`] and
//! [`Stream`].

use obladi_common::error::{ObladiError, Result};
use std::fmt;
use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream};
#[cfg(unix)]
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::time::Duration;

/// An endpoint the storage daemon listens on / the proxy connects to.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SocketSpec {
    /// A Unix-domain socket path.
    Unix(PathBuf),
    /// A TCP `host:port` endpoint.
    Tcp(String),
}

impl SocketSpec {
    /// Parses `unix:/path` or `tcp:host:port`.
    pub fn parse(text: &str) -> Result<SocketSpec> {
        if let Some(path) = text.strip_prefix("unix:") {
            if path.is_empty() {
                return Err(ObladiError::Config("empty unix socket path".into()));
            }
            #[cfg(not(unix))]
            return Err(ObladiError::Config(
                "unix sockets are not available on this platform".into(),
            ));
            #[cfg(unix)]
            return Ok(SocketSpec::Unix(PathBuf::from(path)));
        }
        if let Some(addr) = text.strip_prefix("tcp:") {
            if addr.is_empty() {
                return Err(ObladiError::Config("empty tcp address".into()));
            }
            return Ok(SocketSpec::Tcp(addr.to_string()));
        }
        Err(ObladiError::Config(format!(
            "storage address {text:?} must start with unix: or tcp:"
        )))
    }
}

impl fmt::Display for SocketSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SocketSpec::Unix(path) => write!(f, "unix:{}", path.display()),
            SocketSpec::Tcp(addr) => write!(f, "tcp:{addr}"),
        }
    }
}

/// A bound listening socket.
pub enum Listener {
    /// Unix-domain listener.
    #[cfg(unix)]
    Unix(UnixListener),
    /// TCP listener.
    Tcp(TcpListener),
}

impl Listener {
    /// Binds `spec`.  A stale Unix socket file left by a killed daemon is
    /// unlinked first; `tcp:host:0` binds an ephemeral port (read the real
    /// one back with [`Listener::local_spec`]).
    pub fn bind(spec: &SocketSpec) -> Result<Listener> {
        match spec {
            #[cfg(unix)]
            SocketSpec::Unix(path) => {
                if path.exists() {
                    let _ = std::fs::remove_file(path);
                }
                if let Some(parent) = path.parent() {
                    if !parent.as_os_str().is_empty() {
                        std::fs::create_dir_all(parent).map_err(|err| {
                            ObladiError::Storage(format!(
                                "cannot create socket dir {}: {err}",
                                parent.display()
                            ))
                        })?;
                    }
                }
                let listener = UnixListener::bind(path).map_err(|err| {
                    ObladiError::Storage(format!("cannot bind {}: {err}", path.display()))
                })?;
                Ok(Listener::Unix(listener))
            }
            SocketSpec::Tcp(addr) => {
                let listener = TcpListener::bind(addr).map_err(|err| {
                    ObladiError::Storage(format!("cannot bind tcp:{addr}: {err}"))
                })?;
                Ok(Listener::Tcp(listener))
            }
        }
    }

    /// The actually-bound endpoint (resolves ephemeral TCP ports).
    pub fn local_spec(&self) -> Result<SocketSpec> {
        match self {
            #[cfg(unix)]
            Listener::Unix(listener) => {
                let addr = listener.local_addr().map_err(io_storage)?;
                let path = addr
                    .as_pathname()
                    .ok_or_else(|| ObladiError::Storage("unix listener has no pathname".into()))?;
                Ok(SocketSpec::Unix(path.to_path_buf()))
            }
            Listener::Tcp(listener) => {
                let addr = listener.local_addr().map_err(io_storage)?;
                Ok(SocketSpec::Tcp(addr.to_string()))
            }
        }
    }

    /// Switches the listener to non-blocking accepts (the accept loop polls
    /// a shutdown flag between attempts).
    pub fn set_nonblocking(&self, nonblocking: bool) -> io::Result<()> {
        match self {
            #[cfg(unix)]
            Listener::Unix(listener) => listener.set_nonblocking(nonblocking),
            Listener::Tcp(listener) => listener.set_nonblocking(nonblocking),
        }
    }

    /// Accepts one connection, if one is pending.
    pub fn accept(&self) -> io::Result<Stream> {
        match self {
            #[cfg(unix)]
            Listener::Unix(listener) => listener.accept().map(|(s, _)| Stream::Unix(s)),
            Listener::Tcp(listener) => listener.accept().map(|(s, _)| {
                let _ = s.set_nodelay(true);
                Stream::Tcp(s)
            }),
        }
    }

    /// Removes the socket file of a Unix listener (listener teardown).
    pub fn cleanup(&self) {
        #[cfg(unix)]
        if let Listener::Unix(listener) = self {
            if let Ok(addr) = listener.local_addr() {
                if let Some(path) = addr.as_pathname() {
                    let _ = std::fs::remove_file(path);
                }
            }
        }
    }
}

/// A connected bidirectional byte stream.
pub enum Stream {
    /// Unix-domain stream.
    #[cfg(unix)]
    Unix(UnixStream),
    /// TCP stream.
    Tcp(TcpStream),
}

impl Stream {
    /// Connects to `spec`, bounding the TCP connect by `timeout` (a
    /// blackholed host must fail within the caller's deadline, not the
    /// kernel's ~2-minute SYN timeout; Unix connects are local filesystem
    /// operations and resolve immediately either way).
    pub fn connect(spec: &SocketSpec, timeout: Duration) -> io::Result<Stream> {
        match spec {
            #[cfg(unix)]
            SocketSpec::Unix(path) => UnixStream::connect(path).map(Stream::Unix),
            SocketSpec::Tcp(addr) => {
                use std::net::ToSocketAddrs;
                let resolved = addr.to_socket_addrs()?.next().ok_or_else(|| {
                    io::Error::new(
                        io::ErrorKind::AddrNotAvailable,
                        format!("tcp:{addr} resolved to no addresses"),
                    )
                })?;
                let stream = TcpStream::connect_timeout(&resolved, timeout)?;
                let _ = stream.set_nodelay(true);
                Ok(Stream::Tcp(stream))
            }
        }
    }

    /// Clones the underlying handle (reader/writer split).
    pub fn try_clone(&self) -> io::Result<Stream> {
        match self {
            #[cfg(unix)]
            Stream::Unix(stream) => stream.try_clone().map(Stream::Unix),
            Stream::Tcp(stream) => stream.try_clone().map(Stream::Tcp),
        }
    }

    /// Sets the read timeout (used by server loops to poll shutdown flags).
    pub fn set_read_timeout(&self, timeout: Option<Duration>) -> io::Result<()> {
        match self {
            #[cfg(unix)]
            Stream::Unix(stream) => stream.set_read_timeout(timeout),
            Stream::Tcp(stream) => stream.set_read_timeout(timeout),
        }
    }

    /// Shuts down both directions, waking any thread blocked on the stream.
    pub fn shutdown(&self) {
        match self {
            #[cfg(unix)]
            Stream::Unix(stream) => {
                let _ = stream.shutdown(std::net::Shutdown::Both);
            }
            Stream::Tcp(stream) => {
                let _ = stream.shutdown(std::net::Shutdown::Both);
            }
        }
    }
}

impl Read for Stream {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            #[cfg(unix)]
            Stream::Unix(stream) => stream.read(buf),
            Stream::Tcp(stream) => stream.read(buf),
        }
    }
}

impl Write for Stream {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            #[cfg(unix)]
            Stream::Unix(stream) => stream.write(buf),
            Stream::Tcp(stream) => stream.write(buf),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        match self {
            #[cfg(unix)]
            Stream::Unix(stream) => stream.flush(),
            Stream::Tcp(stream) => stream.flush(),
        }
    }
}

fn io_storage(err: io::Error) -> ObladiError {
    ObladiError::Storage(err.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_parse_and_display_round_trip() {
        let spec = SocketSpec::parse("tcp:127.0.0.1:9999").unwrap();
        assert_eq!(spec.to_string(), "tcp:127.0.0.1:9999");
        #[cfg(unix)]
        {
            let spec = SocketSpec::parse("unix:/tmp/obladi.sock").unwrap();
            assert_eq!(spec.to_string(), "unix:/tmp/obladi.sock");
        }
        assert!(SocketSpec::parse("http://nope").is_err());
        assert!(SocketSpec::parse("unix:").is_err());
        assert!(SocketSpec::parse("tcp:").is_err());
    }

    #[test]
    fn tcp_ephemeral_bind_reports_real_port() {
        let listener = Listener::bind(&SocketSpec::parse("tcp:127.0.0.1:0").unwrap()).unwrap();
        let spec = listener.local_spec().unwrap();
        match &spec {
            SocketSpec::Tcp(addr) => assert!(!addr.ends_with(":0"), "got {addr}"),
            #[cfg(unix)]
            SocketSpec::Unix(_) => panic!("bound tcp, got unix"),
        }
    }

    #[cfg(unix)]
    #[test]
    fn unix_bind_unlinks_stale_socket() {
        let path =
            std::env::temp_dir().join(format!("obladi-addr-test-{}.sock", std::process::id()));
        let spec = SocketSpec::Unix(path.clone());
        let first = Listener::bind(&spec).unwrap();
        drop(first); // leaves the socket file behind, like a kill -9 would
        assert!(path.exists());
        let second = Listener::bind(&spec).unwrap();
        second.cleanup();
        assert!(!path.exists());
    }
}
