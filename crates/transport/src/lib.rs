//! Process-isolated untrusted storage for the Obladi reproduction.
//!
//! The paper's deployment is a trusted proxy batching ORAM requests to
//! *untrusted cloud storage across a network* (§5) — but the seed
//! reproduction called its storage through an in-process trait object.
//! This crate makes the trust split physical:
//!
//! | Piece | Job |
//! |---|---|
//! | [`frame`] | length-prefixed, versioned frame codec with desync detection |
//! | [`SocketSpec`] | `unix:/path` / `tcp:host:port` endpoints, one type |
//! | [`RemoteStore`] | `UntrustedStore` client: pipelined, batched, reconnecting |
//! | [`serve`] | server loop hosting any store behind a socket |
//! | [`StorageSupervisor`] | spawn / kill −9 / respawn `obladi-stored` daemons |
//! | `obladi-stored` | the daemon binary: [`DurableStore`](obladi_storage::DurableStore) behind [`serve`] |
//!
//! The RPC carries the [`obladi_storage::proto`] message schema — every
//! `UntrustedStore` operation, including the WAL appends/reads/truncations
//! the recovery unit depends on — so a `ShardedDb` can place each shard's
//! ORAM pipeline against its own out-of-process storage server
//! (`StorageBackend::RemoteSpawned` / `RemoteAddr`) with no semantic
//! change: crashes of a storage *process* surface as storage faults, the
//! proxy fate-shares into its existing crash + WAL-recovery path, and the
//! daemon's op-log guarantees every acknowledged operation survives
//! `kill -9`.
//!
//! Obliviousness is untouched by the move: the daemon sees exactly the
//! sealed, padded, fixed-rhythm request stream the in-process store saw —
//! the socket just makes the observer boundary honest.

#![warn(missing_docs)]

pub mod addr;
pub mod client;
pub mod frame;
pub mod server;
pub mod supervisor;

pub use addr::{Listener, SocketSpec, Stream};
pub use client::{RemoteStore, TransportStats};
pub use frame::{Frame, FrameDecoder, PROTOCOL_VERSION};
pub use server::{serve, ServerHandle};
pub use supervisor::{locate_stored_binary, StorageSupervisor, STORED_BIN_ENV};

#[cfg(test)]
mod tests {
    use super::*;
    use obladi_storage::{InMemoryStore, UntrustedStore};
    use std::sync::Arc;
    use std::time::Duration;

    fn spawn_memory_server() -> (ServerHandle, Arc<InMemoryStore>) {
        let store = Arc::new(InMemoryStore::new());
        let spec = SocketSpec::parse("tcp:127.0.0.1:0").unwrap();
        let handle = serve(&spec, store.clone() as Arc<dyn UntrustedStore>).unwrap();
        (handle, store)
    }

    #[test]
    fn remote_store_round_trips_every_operation() {
        let (mut handle, _) = spawn_memory_server();
        let client = RemoteStore::connect(handle.spec().clone(), Duration::from_secs(5)).unwrap();

        assert_eq!(client.ping().unwrap(), PROTOCOL_VERSION);
        let v1 = client
            .write_bucket(4, vec![bytes::Bytes::from_static(b"alpha")])
            .unwrap();
        assert_eq!(v1, 1);
        assert_eq!(&client.read_slot(4, 0).unwrap()[..], b"alpha");
        let snapshot = client.read_bucket(4).unwrap();
        assert_eq!(snapshot.version, 1);
        assert_eq!(snapshot.slots.len(), 1);
        client
            .write_bucket(4, vec![bytes::Bytes::from_static(b"beta")])
            .unwrap();
        client.revert_bucket(4, 1).unwrap();
        assert_eq!(client.bucket_version(4).unwrap(), 1);

        client
            .put_meta("ckpt", bytes::Bytes::from_static(b"m"))
            .unwrap();
        assert_eq!(
            client.get_meta("ckpt").unwrap(),
            Some(bytes::Bytes::from_static(b"m"))
        );
        assert_eq!(client.get_meta("absent").unwrap(), None);

        assert_eq!(
            client.append_log(bytes::Bytes::from_static(b"r0")).unwrap(),
            0
        );
        assert_eq!(
            client.append_log(bytes::Bytes::from_static(b"r1")).unwrap(),
            1
        );
        assert_eq!(client.read_log_from(0).unwrap().len(), 2);
        client.truncate_log(1).unwrap();
        assert_eq!(client.read_log_from(0).unwrap().len(), 1);
        client.truncate_log_tail(1).unwrap();
        assert_eq!(client.read_log_from(0).unwrap().len(), 0);

        let stats = client.stats();
        assert!(stats.bucket_writes >= 2);
        client.reset_stats();
        assert_eq!(client.stats().total_requests(), 0);

        // Server-side errors cross the wire as errors, not hangs.
        assert!(client.read_slot(999, 0).is_err());

        handle.stop();
    }

    #[test]
    fn pipelined_callers_share_flushes() {
        let (mut handle, _) = spawn_memory_server();
        let client =
            Arc::new(RemoteStore::connect(handle.spec().clone(), Duration::from_secs(5)).unwrap());
        client
            .write_bucket(1, vec![bytes::Bytes::from_static(b"seed")])
            .unwrap();

        std::thread::scope(|scope| {
            for _ in 0..8 {
                let client = client.clone();
                scope.spawn(move || {
                    for _ in 0..200 {
                        client.read_slot(1, 0).unwrap();
                    }
                });
            }
        });
        let stats = client.transport_stats();
        assert!(stats.requests >= 1600);
        assert_eq!(stats.responses, stats.requests);
        assert!(
            stats.requests_per_flush() > 1.0,
            "8 concurrent callers should share flushes, got {:?}",
            stats
        );
        handle.stop();
    }

    #[test]
    fn server_death_fails_fast_and_reconnect_recovers() {
        let (mut handle, _) = spawn_memory_server();
        let spec = handle.spec().clone();
        let client = RemoteStore::connect(spec.clone(), Duration::from_secs(5)).unwrap();
        client
            .write_bucket(1, vec![bytes::Bytes::from_static(b"x")])
            .unwrap();

        handle.stop();
        assert!(
            client.read_slot(1, 0).is_err(),
            "a dead server must surface as a storage error"
        );

        // A new server on the same endpoint: the same client reattaches.
        let store = Arc::new(InMemoryStore::new());
        store
            .write_bucket(1, vec![bytes::Bytes::from_static(b"y")])
            .unwrap();
        let mut handle2 = serve(&spec, store as Arc<dyn UntrustedStore>).unwrap();
        let value = client.read_slot(1, 0).unwrap();
        assert_eq!(&value[..], b"y");
        assert!(client.transport_stats().connects >= 2);
        handle2.stop();
    }

    #[test]
    fn large_log_reads_are_paged_not_collapsed() {
        // A WAL bigger than one response page must arrive whole through
        // the client's truncation-following loop — not produce a frame the
        // decoder would refuse (which would wedge recovery forever).
        let (mut handle, store) = spawn_memory_server();
        let record = bytes::Bytes::from(vec![7u8; 3 << 20]);
        for _ in 0..5 {
            store.append_log(record.clone()).unwrap();
        }
        let client = RemoteStore::connect(handle.spec().clone(), Duration::from_secs(5)).unwrap();
        let before = client.transport_stats().requests;
        let all = client.read_log_from(0).unwrap();
        assert_eq!(all.len(), 5);
        assert!(all.iter().all(|(_, data)| data.len() == 3 << 20));
        assert_eq!(
            all.iter().map(|(seq, _)| *seq).collect::<Vec<_>>(),
            vec![0, 1, 2, 3, 4]
        );
        assert!(
            client.transport_stats().requests - before >= 2,
            "15 MiB of log should take more than one 8 MiB page"
        );
        handle.stop();
    }

    #[test]
    fn graceful_shutdown_request_stops_the_server() {
        let (mut handle, _) = spawn_memory_server();
        let client = RemoteStore::connect(handle.spec().clone(), Duration::from_secs(5)).unwrap();
        client.shutdown_server().unwrap();
        handle.wait();
        assert!(handle.stop_requested());
    }

    #[cfg(unix)]
    #[test]
    fn unix_socket_round_trip() {
        let path =
            std::env::temp_dir().join(format!("obladi-transport-test-{}.sock", std::process::id()));
        let spec = SocketSpec::Unix(path.clone());
        let store = Arc::new(InMemoryStore::new());
        let mut handle = serve(&spec, store as Arc<dyn UntrustedStore>).unwrap();
        let client = RemoteStore::connect(spec, Duration::from_secs(5)).unwrap();
        client
            .write_bucket(2, vec![bytes::Bytes::from_static(b"uds")])
            .unwrap();
        assert_eq!(&client.read_slot(2, 0).unwrap()[..], b"uds");
        handle.stop();
        assert!(!path.exists(), "graceful stop must remove the socket file");
    }
}
