//! `obladi-stored` — the untrusted storage daemon.
//!
//! Hosts a crash-safe [`DurableStore`] behind the framed storage RPC, one
//! process per shard.  This is the "cloud storage server" half of the
//! paper's trust split: everything it holds is encrypted, MACed and padded
//! by the proxy before it arrives, so the daemon (and anyone reading its
//! disk or its socket) sees only the workload-independent rhythm of
//! batched requests.
//!
//! ```text
//! obladi-stored --listen unix:/run/obladi/shard0.sock --data /var/lib/obladi/shard0
//! obladi-stored --listen tcp:0.0.0.0:7341            --data /var/lib/obladi/shard0
//! ```
//!
//! The process exits on a client `Shutdown` request (graceful; state is
//! flushed per-operation anyway) and survives `kill -9` by replaying its
//! op-log at the next start.

use obladi_storage::DurableStore;
use obladi_transport::{serve, SocketSpec};
use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::Arc;

fn usage() -> ! {
    eprintln!(
        "usage: obladi-stored --listen <unix:PATH|tcp:HOST:PORT> --data <DIR>\n\
         \n\
         Serves the Obladi untrusted-storage RPC from a durable op-log\n\
         rooted at DIR.  Exits on a client shutdown request."
    );
    std::process::exit(2);
}

fn main() -> ExitCode {
    let mut listen: Option<String> = None;
    let mut data: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--listen" => listen = args.next(),
            "--data" => data = args.next().map(PathBuf::from),
            "--help" | "-h" => usage(),
            other => {
                eprintln!("obladi-stored: unknown argument {other:?}");
                usage();
            }
        }
    }
    let (Some(listen), Some(data)) = (listen, data) else {
        usage();
    };

    let spec = match SocketSpec::parse(&listen) {
        Ok(spec) => spec,
        Err(err) => {
            eprintln!("obladi-stored: {err}");
            return ExitCode::FAILURE;
        }
    };
    let (store, replay) = match DurableStore::open(&data) {
        Ok(opened) => opened,
        Err(err) => {
            eprintln!(
                "obladi-stored: cannot open data dir {}: {err}",
                data.display()
            );
            return ExitCode::FAILURE;
        }
    };
    if replay.torn_bytes > 0 {
        eprintln!(
            "obladi-stored: retired a torn op-log tail of {} bytes (unacknowledged write)",
            replay.torn_bytes
        );
    }
    let mut handle = match serve(&spec, Arc::new(store)) {
        Ok(handle) => handle,
        Err(err) => {
            eprintln!("obladi-stored: cannot serve on {spec}: {err}");
            return ExitCode::FAILURE;
        }
    };
    println!(
        "obladi-stored: serving {} from {} ({} ops replayed)",
        handle.spec(),
        data.display(),
        replay.records
    );
    handle.wait();
    println!("obladi-stored: shut down cleanly");
    ExitCode::SUCCESS
}
