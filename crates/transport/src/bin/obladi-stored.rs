//! `obladi-stored` — the untrusted storage daemon.
//!
//! Hosts a crash-safe [`DurableStore`] behind the framed storage RPC, one
//! process per shard.  This is the "cloud storage server" half of the
//! paper's trust split: everything it holds is encrypted, MACed and padded
//! by the proxy before it arrives, so the daemon (and anyone reading its
//! disk or its socket) sees only the workload-independent rhythm of
//! batched requests.
//!
//! ```text
//! obladi-stored --listen unix:/run/obladi/shard0.sock --data /var/lib/obladi/shard0
//! obladi-stored --listen tcp:0.0.0.0:7341            --data /var/lib/obladi/shard0
//! ```
//!
//! The process exits on a client `Shutdown` request (graceful; state is
//! flushed per-operation anyway) and survives `kill -9` by replaying its
//! op-log at the next start.

use obladi_storage::DurableStore;
use obladi_transport::{serve, SocketSpec};
use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::Arc;

fn usage() -> ! {
    eprintln!(
        "usage: obladi-stored --listen <unix:PATH|tcp:HOST:PORT> --data <DIR> \
         [--compact-every N]\n\
         \n\
         Serves the Obladi untrusted-storage RPC from a durable op-log\n\
         rooted at DIR.  Every N acknowledged mutations (default {}, 0 =\n\
         never; also settable via OBLADI_STORED_COMPACT_EVERY) the op-log\n\
         is compacted into a checksummed state snapshot, bounding respawn\n\
         replay cost.  Exits on a client shutdown request.",
        obladi_storage::disk::DEFAULT_COMPACT_EVERY
    );
    std::process::exit(2);
}

fn main() -> ExitCode {
    let mut listen: Option<String> = None;
    let mut data: Option<PathBuf> = None;
    let mut compact_every = std::env::var("OBLADI_STORED_COMPACT_EVERY")
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
        .unwrap_or(obladi_storage::disk::DEFAULT_COMPACT_EVERY);
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--listen" => listen = args.next(),
            "--data" => data = args.next().map(PathBuf::from),
            "--compact-every" => match args.next().and_then(|v| v.parse::<u64>().ok()) {
                Some(n) => compact_every = n,
                None => {
                    eprintln!("obladi-stored: --compact-every needs a number");
                    usage();
                }
            },
            "--help" | "-h" => usage(),
            other => {
                eprintln!("obladi-stored: unknown argument {other:?}");
                usage();
            }
        }
    }
    let (Some(listen), Some(data)) = (listen, data) else {
        usage();
    };

    let spec = match SocketSpec::parse(&listen) {
        Ok(spec) => spec,
        Err(err) => {
            eprintln!("obladi-stored: {err}");
            return ExitCode::FAILURE;
        }
    };
    let (store, replay) = match DurableStore::open_with_options(&data, compact_every) {
        Ok(opened) => opened,
        Err(err) => {
            eprintln!(
                "obladi-stored: cannot open data dir {}: {err}",
                data.display()
            );
            return ExitCode::FAILURE;
        }
    };
    if replay.torn_bytes > 0 {
        eprintln!(
            "obladi-stored: retired a torn op-log tail of {} bytes (unacknowledged write)",
            replay.torn_bytes
        );
    }
    let mut handle = match serve(&spec, Arc::new(store)) {
        Ok(handle) => handle,
        Err(err) => {
            eprintln!("obladi-stored: cannot serve on {spec}: {err}");
            return ExitCode::FAILURE;
        }
    };
    println!(
        "obladi-stored: serving {} from {} ({} ops replayed on snapshot generation {})",
        handle.spec(),
        data.display(),
        replay.records,
        replay.snapshot_generation
    );
    handle.wait();
    println!("obladi-stored: shut down cleanly");
    ExitCode::SUCCESS
}
