//! Supervision of `obladi-stored` daemon processes: spawn, readiness,
//! graceful stop, abrupt kill, respawn.
//!
//! A [`StorageSupervisor`] owns one daemon per shard, each with its own
//! data directory (the durable op-log) and socket.  It exists for two
//! customers:
//!
//! * `ShardedDb` with `StorageBackend::RemoteSpawned` — production-shaped
//!   deployments where each shard's ORAM pipeline runs against its own
//!   out-of-process storage server;
//! * the chaos harness — [`StorageSupervisor::kill`] is a genuine
//!   `SIGKILL` (no flush, no handshake), and [`StorageSupervisor::respawn`]
//!   restarts the daemon over the *same* data directory, which is what
//!   forces the op-log replay + proxy WAL recovery path the acceptance
//!   test asserts.

use crate::addr::SocketSpec;
use crate::client::RemoteStore;
use obladi_common::error::{ObladiError, Result};
use parking_lot::Mutex;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Environment variable overriding the daemon binary location.
pub const STORED_BIN_ENV: &str = "OBLADI_STORED_BIN";

/// How long to wait for a spawned daemon to answer a ping.
const READY_TIMEOUT: Duration = Duration::from_secs(10);

/// Finds the `obladi-stored` binary: the [`STORED_BIN_ENV`] override
/// first, then next to the current executable and its ancestors (which
/// covers `target/{debug,release}` for tests, benches and examples alike).
pub fn locate_stored_binary() -> Result<PathBuf> {
    if let Ok(path) = std::env::var(STORED_BIN_ENV) {
        let path = PathBuf::from(path);
        if path.is_file() {
            return Ok(path);
        }
        return Err(ObladiError::Config(format!(
            "{STORED_BIN_ENV}={} does not exist",
            path.display()
        )));
    }
    let name = if cfg!(windows) {
        "obladi-stored.exe"
    } else {
        "obladi-stored"
    };
    if let Ok(exe) = std::env::current_exe() {
        let mut dir = exe.parent();
        for _ in 0..3 {
            if let Some(d) = dir {
                let candidate = d.join(name);
                if candidate.is_file() {
                    return Ok(candidate);
                }
                dir = d.parent();
            }
        }
    }
    Err(ObladiError::Config(format!(
        "cannot locate the obladi-stored binary; build it with \
         `cargo build -p obladi-transport` or point {STORED_BIN_ENV} at it"
    )))
}

struct DaemonSlot {
    spec: SocketSpec,
    data_dir: PathBuf,
    child: Option<Child>,
}

/// Owns and supervises one storage daemon per shard.
pub struct StorageSupervisor {
    binary: PathBuf,
    base_dir: PathBuf,
    owns_base_dir: bool,
    /// Op-log snapshot cadence passed to every (re)spawned daemon as
    /// `--compact-every` (`None` = the daemon's default).  Held here so a
    /// respawn after `kill -9` runs with the same cadence the original
    /// did — tests must not steer this through process-global env state.
    compact_every: Option<u64>,
    slots: Vec<Mutex<DaemonSlot>>,
}

/// Distinguishes concurrently created supervisors within one process.
static SUPERVISOR_SEQ: AtomicU64 = AtomicU64::new(0);

impl StorageSupervisor {
    /// A fresh, unique temporary base directory.  Nanosecond timestamp in
    /// the name: pids recycle, and a stale directory left by a killed test
    /// process must never be mistaken for this deployment's (its op-logs
    /// would replay foreign state).
    fn fresh_base_dir() -> PathBuf {
        let nanos = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_nanos())
            .unwrap_or(0);
        std::env::temp_dir().join(format!(
            "obladi-stored-{}-{}-{nanos:x}",
            std::process::id(),
            SUPERVISOR_SEQ.fetch_add(1, Ordering::SeqCst)
        ))
    }

    /// Spawns `count` daemons under a fresh temporary base directory.
    pub fn spawn(count: usize) -> Result<StorageSupervisor> {
        StorageSupervisor::spawn_in(&StorageSupervisor::fresh_base_dir(), count, true)
    }

    /// Like [`StorageSupervisor::spawn`], with an explicit op-log snapshot
    /// cadence for every daemon (`0` disables compaction).
    pub fn spawn_with_compaction(count: usize, compact_every: u64) -> Result<StorageSupervisor> {
        let base = StorageSupervisor::fresh_base_dir();
        let mut supervisor = StorageSupervisor::prepare(&base, count, true)?;
        supervisor.compact_every = Some(compact_every);
        supervisor.spawn_all(count)?;
        Ok(supervisor)
    }

    /// Spawns `count` daemons under `base_dir` (kept on drop unless
    /// `owns_base_dir`; an owned directory is wiped first — a *fresh*
    /// deployment must not inherit whatever a previous occupant of the
    /// path left behind).
    pub fn spawn_in(
        base_dir: &Path,
        count: usize,
        owns_base_dir: bool,
    ) -> Result<StorageSupervisor> {
        let mut supervisor = StorageSupervisor::prepare(base_dir, count, owns_base_dir)?;
        supervisor.spawn_all(count)?;
        Ok(supervisor)
    }

    /// Builds the supervisor and its slot table without spawning anything.
    fn prepare(base_dir: &Path, count: usize, owns_base_dir: bool) -> Result<StorageSupervisor> {
        let binary = locate_stored_binary()?;
        if owns_base_dir && base_dir.exists() {
            let _ = std::fs::remove_dir_all(base_dir);
        }
        std::fs::create_dir_all(base_dir).map_err(|err| {
            ObladiError::Storage(format!(
                "cannot create supervisor dir {}: {err}",
                base_dir.display()
            ))
        })?;
        let mut supervisor = StorageSupervisor {
            binary,
            base_dir: base_dir.to_path_buf(),
            owns_base_dir,
            compact_every: None,
            slots: Vec::with_capacity(count),
        };
        for index in 0..count {
            let data_dir = base_dir.join(format!("shard{index}"));
            let spec = daemon_spec(base_dir, index)?;
            supervisor.slots.push(Mutex::new(DaemonSlot {
                spec,
                data_dir,
                child: None,
            }));
        }
        Ok(supervisor)
    }

    /// First spawn of every slot (after [`StorageSupervisor::prepare`]).
    fn spawn_all(&mut self, count: usize) -> Result<()> {
        for index in 0..count {
            self.respawn(index)?;
        }
        Ok(())
    }

    /// Number of supervised daemons.
    pub fn count(&self) -> usize {
        self.slots.len()
    }

    /// The endpoint daemon `index` listens on.
    pub fn addr(&self, index: usize) -> SocketSpec {
        self.slots[index].lock().spec.clone()
    }

    /// Daemon `index`'s data directory (holds its durable op-log).
    pub fn data_dir(&self, index: usize) -> PathBuf {
        self.slots[index].lock().data_dir.clone()
    }

    /// The daemon's OS process id, if it is currently running.
    pub fn pid(&self, index: usize) -> Option<u32> {
        self.slots[index].lock().child.as_ref().map(Child::id)
    }

    /// Kills daemon `index` abruptly (`SIGKILL`): no flush, no goodbye.
    /// Acknowledged operations must nevertheless survive, courtesy of the
    /// durable op-log.
    pub fn kill(&self, index: usize) -> Result<()> {
        let mut slot = self.slots[index].lock();
        match slot.child.as_mut() {
            Some(child) => {
                child
                    .kill()
                    .map_err(|err| ObladiError::Storage(format!("kill daemon {index}: {err}")))?;
                let _ = child.wait();
                slot.child = None;
                Ok(())
            }
            None => Err(ObladiError::Storage(format!(
                "daemon {index} is not running"
            ))),
        }
    }

    /// (Re)spawns daemon `index` over its existing data directory and
    /// waits until it answers a ping.
    pub fn respawn(&self, index: usize) -> Result<()> {
        let mut slot = self.slots[index].lock();
        if let Some(child) = slot.child.as_mut() {
            if child.try_wait().ok().flatten().is_none() {
                return Err(ObladiError::Storage(format!(
                    "daemon {index} is still running; kill or stop it first"
                )));
            }
            slot.child = None;
        }
        let log_path = slot.data_dir.join("daemon.log");
        std::fs::create_dir_all(&slot.data_dir)
            .map_err(|err| ObladiError::Storage(format!("cannot create daemon data dir: {err}")))?;
        let log = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&log_path)
            .map_err(|err| ObladiError::Storage(format!("cannot open daemon log: {err}")))?;
        let mut command = Command::new(&self.binary);
        command
            .arg("--listen")
            .arg(slot.spec.to_string())
            .arg("--data")
            .arg(&slot.data_dir);
        if let Some(compact_every) = self.compact_every {
            command
                .arg("--compact-every")
                .arg(compact_every.to_string());
        }
        let child = command
            .stdin(Stdio::null())
            .stdout(Stdio::from(log.try_clone().map_err(|err| {
                ObladiError::Storage(format!("cannot clone daemon log handle: {err}"))
            })?))
            .stderr(Stdio::from(log))
            .spawn()
            .map_err(|err| {
                ObladiError::Storage(format!("cannot spawn {}: {err}", self.binary.display()))
            })?;
        slot.child = Some(child);
        let spec = slot.spec.clone();
        drop(slot);
        self.wait_ready(index, &spec)
    }

    /// Stops daemon `index` gracefully: a `Shutdown` request, then a
    /// bounded wait, then `SIGKILL` as the fallback.
    pub fn stop(&self, index: usize) {
        // Nothing to do for a daemon that is already gone (killed, or a
        // second stop from Drop after an explicit stop_all) — connecting
        // to its stale socket would just burn the retry deadline.
        {
            let mut slot = self.slots[index].lock();
            match slot.child.as_mut() {
                None => return,
                Some(child) => {
                    if child.try_wait().ok().flatten().is_some() {
                        slot.child = None;
                        return;
                    }
                }
            }
        }
        let spec = self.addr(index);
        if let Ok(client) = RemoteStore::connect(spec, Duration::from_millis(500)) {
            let _ = client.shutdown_server();
        }
        let mut slot = self.slots[index].lock();
        if let Some(mut child) = slot.child.take() {
            let deadline = std::time::Instant::now() + Duration::from_secs(3);
            loop {
                match child.try_wait() {
                    Ok(Some(_)) => break,
                    Ok(None) if std::time::Instant::now() < deadline => {
                        std::thread::sleep(Duration::from_millis(20));
                    }
                    _ => {
                        let _ = child.kill();
                        let _ = child.wait();
                        break;
                    }
                }
            }
        }
    }

    /// Stops every daemon gracefully.
    pub fn stop_all(&self) {
        for index in 0..self.slots.len() {
            self.stop(index);
        }
    }

    fn wait_ready(&self, index: usize, spec: &SocketSpec) -> Result<()> {
        let probe = RemoteStore::connect(spec.clone(), READY_TIMEOUT).map_err(|err| {
            ObladiError::Storage(format!("daemon {index} never became ready: {err}"))
        })?;
        probe.ping().map_err(|err| {
            ObladiError::Storage(format!("daemon {index} failed its readiness ping: {err}"))
        })?;
        Ok(())
    }
}

impl Drop for StorageSupervisor {
    fn drop(&mut self) {
        self.stop_all();
        if self.owns_base_dir {
            let _ = std::fs::remove_dir_all(&self.base_dir);
        }
    }
}

/// The per-daemon endpoint: a Unix socket in the base directory.  Spawned
/// supervision needs a *stable* address across kill/respawn cycles, which
/// an ephemeral TCP port cannot give; non-Unix platforms should run the
/// daemons themselves on fixed ports and use `StorageBackend::RemoteAddr`.
fn daemon_spec(base_dir: &Path, index: usize) -> Result<SocketSpec> {
    #[cfg(unix)]
    {
        Ok(SocketSpec::Unix(
            base_dir.join(format!("shard{index}.sock")),
        ))
    }
    #[cfg(not(unix))]
    {
        let _ = (base_dir, index);
        Err(ObladiError::Config(
            "RemoteSpawned storage needs unix sockets; use RemoteAddr with fixed tcp: \
             addresses on this platform"
                .into(),
        ))
    }
}
