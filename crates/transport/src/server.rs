//! The server side of the storage RPC: a socket loop hosting any
//! [`UntrustedStore`] — the `obladi-stored` daemon wraps this around a
//! [`DurableStore`](obladi_storage::DurableStore), and tests host plain
//! in-memory stores in-process to get a real socket boundary without a
//! child process.
//!
//! One thread accepts connections (non-blocking, polling a stop flag);
//! each connection gets its own thread that performs the version
//! handshake, then decodes request frames, executes them against the
//! store, and writes responses back — batching all responses of one read
//! chunk into a single flush, mirroring the client's pipelined submission.
//! Requests on one connection execute in order; concurrency comes from
//! the proxy's many executor threads sharing the pipelined client, not
//! from per-request server threads.
//!
//! Shutdown is two-faced on purpose, because the chaos harness needs both:
//! *graceful* ([`ServerHandle::stop`], or a client `Shutdown` request)
//! drains connection threads and removes the socket file; *abrupt* is
//! simply `kill -9` of the hosting process — no flush, no goodbye, exactly
//! the crash the durable op-log and the proxy's WAL recovery must absorb.

use crate::addr::{Listener, SocketSpec, Stream};
use crate::frame::{
    encode_frame, encode_hello, parse_hello, Frame, FrameDecoder, HELLO_LEN, PROTOCOL_VERSION,
};
use obladi_common::error::{ObladiError, Result};
use obladi_storage::{
    StoreRequest, StoreResponse, UntrustedStore, WireError, WireHistogram, WireMetrics,
};
use std::io::{Read, Write};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// How often blocked server loops re-check the stop flag.
const POLL_INTERVAL: Duration = Duration::from_millis(25);

/// Byte budget of one `read_log_from` response page, comfortably inside
/// the frame decoder's bound; clients re-issue from the last sequence
/// number until `truncated` clears.
const LOG_PAGE_BYTES: usize = 8 << 20;

/// A running storage server.
pub struct ServerHandle {
    spec: SocketSpec,
    stop: Arc<AtomicBool>,
    accept_thread: Option<std::thread::JoinHandle<()>>,
    connections: Arc<AtomicU64>,
}

impl ServerHandle {
    /// The endpoint the server actually bound (ephemeral TCP ports
    /// resolved).
    pub fn spec(&self) -> &SocketSpec {
        &self.spec
    }

    /// Whether a stop has been requested (by [`ServerHandle::stop`] or a
    /// client `Shutdown` request).
    pub fn stop_requested(&self) -> bool {
        self.stop.load(Ordering::SeqCst)
    }

    /// Total connections accepted so far.
    pub fn connections_accepted(&self) -> u64 {
        self.connections.load(Ordering::SeqCst)
    }

    /// Blocks until the server stops (a daemon main's parking spot).
    pub fn wait(&mut self) {
        if let Some(thread) = self.accept_thread.take() {
            let _ = thread.join();
        }
    }

    /// Requests a graceful stop and waits for the accept loop to drain.
    pub fn stop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        self.wait();
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.stop();
    }
}

/// Binds `spec` and serves `store` until stopped.  Returns once the
/// listener is bound and accepting — a client connecting after this call
/// will not be refused.
pub fn serve(spec: &SocketSpec, store: Arc<dyn UntrustedStore>) -> Result<ServerHandle> {
    let listener = Listener::bind(spec)?;
    let bound = listener.local_spec()?;
    listener
        .set_nonblocking(true)
        .map_err(|err| ObladiError::Storage(format!("set_nonblocking: {err}")))?;
    let stop = Arc::new(AtomicBool::new(false));
    let connections = Arc::new(AtomicU64::new(0));

    let accept_stop = stop.clone();
    let accept_connections = connections.clone();
    let accept_thread = std::thread::Builder::new()
        .name("obladi-stored-accept".into())
        .spawn(move || {
            let mut conn_threads = Vec::new();
            while !accept_stop.load(Ordering::SeqCst) {
                match listener.accept() {
                    Ok(stream) => {
                        accept_connections.fetch_add(1, Ordering::SeqCst);
                        let store = store.clone();
                        let stop = accept_stop.clone();
                        match std::thread::Builder::new()
                            .name("obladi-stored-conn".into())
                            .spawn(move || serve_connection(stream, store, stop))
                        {
                            Ok(thread) => conn_threads.push(thread),
                            // Thread exhaustion: drop the connection (the
                            // client sees a closed socket and fails fast)
                            // and keep accepting — a panicking accept loop
                            // would leave the daemon half-dead, alive to
                            // the supervisor but deaf to every proxy.
                            Err(_) => std::thread::sleep(POLL_INTERVAL),
                        }
                    }
                    Err(err)
                        if err.kind() == std::io::ErrorKind::WouldBlock
                            || err.kind() == std::io::ErrorKind::TimedOut =>
                    {
                        std::thread::sleep(POLL_INTERVAL);
                    }
                    Err(_) => std::thread::sleep(POLL_INTERVAL),
                }
                conn_threads.retain(|thread| !thread.is_finished());
            }
            listener.cleanup();
            for thread in conn_threads {
                let _ = thread.join();
            }
        })
        .map_err(|err| ObladiError::Storage(format!("spawn accept loop: {err}")))?;

    Ok(ServerHandle {
        spec: bound,
        stop,
        accept_thread: Some(accept_thread),
        connections,
    })
}

/// Handles one client connection until EOF, error or server stop.
fn serve_connection(mut stream: Stream, store: Arc<dyn UntrustedStore>, stop: Arc<AtomicBool>) {
    // Handshake: read the client hello, answer with ours.  On a version
    // mismatch the server still answers (so the client can produce a
    // precise diagnostic) and then closes without framing a single byte.
    let _ = stream.set_read_timeout(Some(Duration::from_secs(5)));
    let mut hello = [0u8; HELLO_LEN];
    if stream.read_exact(&mut hello).is_err() {
        return;
    }
    let client_version = match parse_hello(&hello) {
        Ok(version) => version,
        Err(_) => return,
    };
    if stream.write_all(&encode_hello(PROTOCOL_VERSION)).is_err() || stream.flush().is_err() {
        return;
    }
    if client_version != PROTOCOL_VERSION {
        return;
    }

    let _ = stream.set_read_timeout(Some(POLL_INTERVAL));
    let mut decoder = FrameDecoder::new();
    let mut chunk = [0u8; 64 * 1024];
    let mut out = Vec::with_capacity(16 * 1024);
    loop {
        if stop.load(Ordering::SeqCst) {
            return;
        }
        let n = match stream.read(&mut chunk) {
            Ok(0) => return,
            Ok(n) => n,
            Err(err)
                if err.kind() == std::io::ErrorKind::WouldBlock
                    || err.kind() == std::io::ErrorKind::TimedOut =>
            {
                continue;
            }
            Err(_) => return,
        };
        decoder.extend(&chunk[..n]);
        out.clear();
        loop {
            match decoder.next_frame() {
                Ok(Some(frame)) => {
                    let (response, shutdown) = execute(&store, &frame);
                    let payload = response.encode();
                    // Adversary-view tap: this pair of frames is exactly
                    // what the network just carried.
                    obladi_storage::audit::record_server_op(
                        frame.opcode,
                        &frame.payload,
                        payload.len(),
                    );
                    let reply = Frame {
                        id: frame.id,
                        opcode: payload[0],
                        payload: bytes::Bytes::from(payload),
                    };
                    encode_frame(&mut out, &reply);
                    if shutdown {
                        let _ = stream.write_all(&out);
                        let _ = stream.flush();
                        stop.store(true, Ordering::SeqCst);
                        return;
                    }
                }
                Ok(None) => break,
                Err(_) => {
                    // Framing violation: this peer is desynchronised or
                    // hostile; drop the connection without a reply.
                    return;
                }
            }
        }
        if !out.is_empty() && (stream.write_all(&out).is_err() || stream.flush().is_err()) {
            return;
        }
    }
}

/// Executes one request; the bool asks the server to shut down gracefully.
fn execute(store: &Arc<dyn UntrustedStore>, frame: &Frame) -> (StoreResponse, bool) {
    let request = match StoreRequest::decode(&frame.payload) {
        Ok(request) => request,
        Err(err) => return (StoreResponse::Err(WireError::from_error(&err)), false),
    };
    let response = match request {
        StoreRequest::ReadSlot { bucket, slot } => {
            result_to_response(store.read_slot(bucket, slot).map(StoreResponse::Slot))
        }
        StoreRequest::ReadBucket { bucket } => {
            result_to_response(store.read_bucket(bucket).map(StoreResponse::Bucket))
        }
        StoreRequest::WriteBucket { bucket, slots } => result_to_response(
            store
                .write_bucket(bucket, slots)
                .map(StoreResponse::Version),
        ),
        StoreRequest::BucketVersion { bucket } => {
            result_to_response(store.bucket_version(bucket).map(StoreResponse::Version))
        }
        StoreRequest::RevertBucket { bucket, version } => result_to_response(
            store
                .revert_bucket(bucket, version)
                .map(|()| StoreResponse::Unit),
        ),
        StoreRequest::PutMeta { key, value } => {
            result_to_response(store.put_meta(&key, value).map(|()| StoreResponse::Unit))
        }
        StoreRequest::GetMeta { key } => {
            result_to_response(store.get_meta(&key).map(StoreResponse::MetaValue))
        }
        StoreRequest::AppendLog { record } => {
            result_to_response(store.append_log(record).map(StoreResponse::LogSeq))
        }
        // Paged: a WAL that outgrew one frame must not produce a frame
        // the client's decoder is bound to refuse, and the store-side
        // bounded scan keeps each page linear in what it returns.
        StoreRequest::ReadLogFrom { from } => result_to_response(
            store
                .read_log_page(from, LOG_PAGE_BYTES)
                .map(|(records, truncated)| StoreResponse::LogRecords { records, truncated }),
        ),
        StoreRequest::TruncateLog { up_to } => {
            result_to_response(store.truncate_log(up_to).map(|()| StoreResponse::Unit))
        }
        StoreRequest::TruncateLogTail { from } => {
            result_to_response(store.truncate_log_tail(from).map(|()| StoreResponse::Unit))
        }
        StoreRequest::Stats => StoreResponse::Stats(store.stats()),
        StoreRequest::ResetStats => {
            store.reset_stats();
            StoreResponse::Unit
        }
        StoreRequest::Ping => StoreResponse::Pong(PROTOCOL_VERSION),
        StoreRequest::Shutdown => return (StoreResponse::Unit, true),
        StoreRequest::MetricsSnapshot => StoreResponse::Metrics(daemon_metrics_snapshot()),
    };
    (response, false)
}

/// Scrapes this process's registry down to the daemon's own telemetry.
/// The filter lives server side on purpose: in-thread test servers share
/// the harness process's registry, and answering with everything would
/// mirror the whole proxy registry back per shard.
fn daemon_metrics_snapshot() -> WireMetrics {
    let snapshot = obladi_obs::global().snapshot();
    WireMetrics {
        counters: snapshot
            .counters
            .into_iter()
            .filter(|(name, _)| name.starts_with("daemon."))
            .collect(),
        gauges: snapshot
            .gauges
            .into_iter()
            .filter(|(name, _)| name.starts_with("daemon."))
            .collect(),
        histograms: snapshot
            .histograms
            .into_iter()
            .filter(|(name, _)| name.starts_with("daemon."))
            .map(|(name, histogram)| {
                (
                    name,
                    WireHistogram {
                        count: histogram.count,
                        sum: histogram.sum,
                        max: histogram.max,
                    },
                )
            })
            .collect(),
    }
}

fn result_to_response(result: Result<StoreResponse>) -> StoreResponse {
    match result {
        Ok(response) => response,
        Err(err) => StoreResponse::Err(WireError::from_error(&err)),
    }
}
