//! The client side of the storage RPC: [`RemoteStore`], an
//! [`UntrustedStore`] whose every method ships a framed request to an
//! `obladi-stored` daemon and waits for the matching response.
//!
//! # Pipelining and batched submission
//!
//! The ORAM executor issues many storage requests concurrently from a
//! worker pool, and the paper's whole batching architecture exists to
//! amortise round trips — so the client must not serialise one request per
//! round trip.  A [`RemoteStore`] multiplexes all callers onto **one
//! connection**:
//!
//! * each caller registers its request id, hands the encoded frame to the
//!   *writer thread* and blocks on a private channel;
//! * the writer drains every frame queued at that moment into a single
//!   buffered write and flushes **once** per drain — concurrent callers
//!   share flushes (and, on TCP, packets), which is the measured
//!   `requests / flushes > 1` batching the benchmark asserts;
//! * a *reader thread* decodes response frames and wakes each caller by
//!   request id, so responses interleave freely with in-flight requests.
//!
//! # Failure model
//!
//! The daemon is untrusted *and* killable: any I/O error collapses the
//! whole connection — every in-flight caller gets a `Storage` error (the
//! proxy fate-shares storage faults into a crash + WAL recovery, so
//! "half-failed" batches must not linger).  The next call attempts exactly
//! one reconnect; while the daemon is down that fails fast, and once the
//! supervisor has respawned it the same `RemoteStore` transparently
//! reattaches — which is what lets recovery replay the WAL over the very
//! handle that watched the daemon die.

use crate::addr::{SocketSpec, Stream};
use crate::frame::{
    encode_frame, encode_hello, parse_hello, Frame, FrameDecoder, HELLO_LEN, PROTOCOL_VERSION,
};
use bytes::Bytes;
use obladi_common::error::{ObladiError, Result};
use obladi_common::types::{BucketId, Version};
use obladi_storage::traits::{BucketSnapshot, StoreStats};
use obladi_storage::{StoreRequest, StoreResponse, UntrustedStore};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::io::{Read, Write};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc};
use std::time::{Duration, Instant};

/// Client-side transport counters, cumulative across reconnects.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TransportStats {
    /// Requests submitted to the wire.
    pub requests: u64,
    /// Responses received and matched to a caller.
    pub responses: u64,
    /// Socket flushes issued by the writer (one per drained batch).
    pub flushes: u64,
    /// Connections (re-)established, the first included.
    pub connects: u64,
    /// Encoded frame bytes shipped to the daemon.
    pub bytes_tx: u64,
    /// Raw bytes received from the daemon.
    pub bytes_rx: u64,
}

impl TransportStats {
    /// Mean requests per flush — the pipelining/batching factor.  `1.0`
    /// means every request paid its own flush; larger means concurrent
    /// callers shared round-trip submissions.
    pub fn requests_per_flush(&self) -> f64 {
        if self.flushes == 0 {
            0.0
        } else {
            self.requests as f64 / self.flushes as f64
        }
    }

    /// Reconnects after the initial connection (kill/respawn survivals).
    pub fn reconnects(&self) -> u64 {
        self.connects.saturating_sub(1)
    }
}

/// Bound on one socket connect attempt.  `live()` holds the connection
/// mutex across a mid-run reconnect, so this is also the longest every
/// executor thread on the shard can be stalled behind an unreachable
/// daemon — keep it well under the request timeout.
const SOCKET_CONNECT_TIMEOUT: Duration = Duration::from_secs(5);

/// Raw transport counters plus handles into the process-wide metrics
/// registry, resolved once per store so the hot paths never pay a
/// registry lookup.
struct Counters {
    requests: AtomicU64,
    responses: AtomicU64,
    flushes: AtomicU64,
    connects: AtomicU64,
    bytes_tx: AtomicU64,
    bytes_rx: AtomicU64,
    obs_requests: obladi_obs::Counter,
    obs_responses: obladi_obs::Counter,
    obs_flushes: obladi_obs::Counter,
    obs_connects: obladi_obs::Counter,
    obs_bytes_tx: obladi_obs::Counter,
    obs_bytes_rx: obladi_obs::Counter,
    obs_batch_per_flush: obladi_obs::Histogram,
}

impl Default for Counters {
    fn default() -> Self {
        let obs = obladi_obs::global();
        Counters {
            requests: AtomicU64::new(0),
            responses: AtomicU64::new(0),
            flushes: AtomicU64::new(0),
            connects: AtomicU64::new(0),
            bytes_tx: AtomicU64::new(0),
            bytes_rx: AtomicU64::new(0),
            obs_requests: obs.counter("remote.requests"),
            obs_responses: obs.counter("remote.responses"),
            obs_flushes: obs.counter("remote.flushes"),
            obs_connects: obs.counter("remote.connects"),
            obs_bytes_tx: obs.counter("remote.bytes_tx"),
            obs_bytes_rx: obs.counter("remote.bytes_rx"),
            obs_batch_per_flush: obs.histogram("remote.batch_per_flush"),
        }
    }
}

type PendingMap = Mutex<HashMap<u64, mpsc::Sender<Result<StoreResponse>>>>;

/// One live connection: writer queue, pending-response map, and the means
/// to tear it all down.
struct LiveConn {
    tx: crossbeam::channel::Sender<Frame>,
    pending: Arc<PendingMap>,
    dead: Arc<AtomicBool>,
    stream: Stream,
}

impl LiveConn {
    fn close(&self) {
        self.dead.store(true, Ordering::SeqCst);
        self.stream.shutdown();
        fail_all(&self.pending, "connection closed");
    }
}

fn fail_all(pending: &PendingMap, why: &str) {
    let mut map = pending.lock();
    for (_, waiter) in map.drain() {
        let _ = waiter.send(Err(ObladiError::Storage(format!(
            "storage daemon connection lost: {why}"
        ))));
    }
}

/// An [`UntrustedStore`] served by a storage daemon across a socket.
pub struct RemoteStore {
    spec: SocketSpec,
    conn: Mutex<Option<Arc<LiveConn>>>,
    next_id: AtomicU64,
    /// Arc-shared with the writer/reader threads, which may outlive the
    /// store by the instants it takes them to observe a teardown.
    counters: Arc<Counters>,
    request_timeout: Duration,
}

impl RemoteStore {
    /// Connects to the daemon at `spec`, retrying until `ready_timeout`
    /// elapses (a freshly spawned daemon needs a moment to bind).
    pub fn connect(spec: SocketSpec, ready_timeout: Duration) -> Result<RemoteStore> {
        let store = RemoteStore {
            spec,
            conn: Mutex::new(None),
            next_id: AtomicU64::new(1),
            counters: Arc::new(Counters::default()),
            request_timeout: Duration::from_secs(60),
        };
        let deadline = Instant::now() + ready_timeout;
        loop {
            match store.establish() {
                Ok(conn) => {
                    *store.conn.lock() = Some(conn);
                    return Ok(store);
                }
                Err(err) => {
                    if Instant::now() >= deadline {
                        return Err(ObladiError::Storage(format!(
                            "cannot reach storage daemon at {}: {err}",
                            store.spec
                        )));
                    }
                    std::thread::sleep(Duration::from_millis(20));
                }
            }
        }
    }

    /// The daemon's endpoint.
    pub fn spec(&self) -> &SocketSpec {
        &self.spec
    }

    /// Cumulative transport counters.
    pub fn transport_stats(&self) -> TransportStats {
        TransportStats {
            requests: self.counters.requests.load(Ordering::Relaxed),
            responses: self.counters.responses.load(Ordering::Relaxed),
            flushes: self.counters.flushes.load(Ordering::Relaxed),
            connects: self.counters.connects.load(Ordering::Relaxed),
            bytes_tx: self.counters.bytes_tx.load(Ordering::Relaxed),
            bytes_rx: self.counters.bytes_rx.load(Ordering::Relaxed),
        }
    }

    /// Probes daemon liveness, returning its protocol version.
    pub fn ping(&self) -> Result<u16> {
        match self.call(StoreRequest::Ping)? {
            StoreResponse::Pong(version) => Ok(version),
            other => Err(unexpected("ping", &other)),
        }
    }

    /// Scrapes the daemon's own telemetry (`daemon.*` metrics).
    pub fn metrics_snapshot(&self) -> Result<obladi_storage::WireMetrics> {
        match self.call(StoreRequest::MetricsSnapshot)? {
            StoreResponse::Metrics(metrics) => Ok(metrics),
            other => Err(unexpected("metrics_snapshot", &other)),
        }
    }

    /// Asks the daemon to shut down gracefully (it acknowledges, flushes
    /// its durable state and exits).
    pub fn shutdown_server(&self) -> Result<()> {
        match self.call(StoreRequest::Shutdown)? {
            StoreResponse::Unit => Ok(()),
            other => Err(unexpected("shutdown", &other)),
        }
    }

    /// Drops the current connection (the next call reconnects).  Lets a
    /// supervisor force a clean reattach after respawning the daemon.
    pub fn disconnect(&self) {
        if let Some(conn) = self.conn.lock().take() {
            conn.close();
        }
    }

    /// Opens a socket, performs the version handshake and spawns the
    /// writer/reader threads.
    fn establish(&self) -> Result<Arc<LiveConn>> {
        let mut stream = Stream::connect(&self.spec, SOCKET_CONNECT_TIMEOUT)
            .map_err(|err| ObladiError::Storage(format!("connect {}: {err}", self.spec)))?;
        stream
            .write_all(&encode_hello(PROTOCOL_VERSION))
            .map_err(|err| ObladiError::Storage(format!("handshake send: {err}")))?;
        stream
            .flush()
            .map_err(|err| ObladiError::Storage(format!("handshake flush: {err}")))?;
        let mut hello = [0u8; HELLO_LEN];
        stream
            .read_exact(&mut hello)
            .map_err(|err| ObladiError::Storage(format!("handshake recv: {err}")))?;
        let server_version = parse_hello(&hello)?;
        if server_version != PROTOCOL_VERSION {
            return Err(ObladiError::Codec(format!(
                "protocol version mismatch: client speaks {PROTOCOL_VERSION}, server speaks \
                 {server_version}"
            )));
        }

        let pending: Arc<PendingMap> = Arc::new(Mutex::new(HashMap::new()));
        let dead = Arc::new(AtomicBool::new(false));
        let (tx, rx) = crossbeam::channel::unbounded::<Frame>();

        // Writer: drain everything queued right now into one buffered
        // write, flush once — the batching the bench measures.
        let mut write_half = stream
            .try_clone()
            .map_err(|err| ObladiError::Storage(format!("stream clone: {err}")))?;
        let writer_dead = dead.clone();
        let writer_pending = pending.clone();
        let writer_counters = self.counters.clone();
        std::thread::Builder::new()
            .name("obladi-rpc-writer".into())
            .spawn(move || {
                let mut buf = Vec::with_capacity(16 * 1024);
                while let Ok(first) = rx.recv() {
                    buf.clear();
                    encode_frame(&mut buf, &first);
                    let mut drained = 1u64;
                    while let Some(next) = rx.try_recv() {
                        encode_frame(&mut buf, &next);
                        drained += 1;
                    }
                    if write_half
                        .write_all(&buf)
                        .and_then(|_| write_half.flush())
                        .is_err()
                    {
                        writer_dead.store(true, Ordering::SeqCst);
                        fail_all(&writer_pending, "write failed");
                        return;
                    }
                    writer_counters.flushes.fetch_add(1, Ordering::Relaxed);
                    writer_counters
                        .bytes_tx
                        .fetch_add(buf.len() as u64, Ordering::Relaxed);
                    writer_counters.obs_flushes.inc();
                    writer_counters.obs_bytes_tx.add(buf.len() as u64);
                    writer_counters.obs_batch_per_flush.record(drained);
                }
                // Sender dropped: connection is being torn down.
            })
            .map_err(|err| ObladiError::Storage(format!("spawn writer: {err}")))?;

        // Reader: decode frames, wake waiters by id.
        let mut read_half = stream
            .try_clone()
            .map_err(|err| ObladiError::Storage(format!("stream clone: {err}")))?;
        let reader_dead = dead.clone();
        let reader_pending = pending.clone();
        let reader_counters = self.counters.clone();
        std::thread::Builder::new()
            .name("obladi-rpc-reader".into())
            .spawn(move || {
                let mut decoder = FrameDecoder::new();
                let mut chunk = [0u8; 64 * 1024];
                let why = loop {
                    let n = match read_half.read(&mut chunk) {
                        Ok(0) => break "peer closed".to_string(),
                        Ok(n) => n,
                        Err(err) => break err.to_string(),
                    };
                    reader_counters
                        .bytes_rx
                        .fetch_add(n as u64, Ordering::Relaxed);
                    reader_counters.obs_bytes_rx.add(n as u64);
                    decoder.extend(&chunk[..n]);
                    loop {
                        match decoder.next_frame() {
                            Ok(Some(frame)) => {
                                let waiter = reader_pending.lock().remove(&frame.id);
                                if let Some(waiter) = waiter {
                                    reader_counters.responses.fetch_add(1, Ordering::Relaxed);
                                    reader_counters.obs_responses.inc();
                                    let _ = waiter.send(
                                        StoreResponse::decode(&frame.payload)
                                            .and_then(StoreResponse::into_result),
                                    );
                                }
                            }
                            Ok(None) => break,
                            Err(err) => {
                                reader_dead.store(true, Ordering::SeqCst);
                                fail_all(&reader_pending, &err.to_string());
                                return;
                            }
                        }
                    }
                };
                reader_dead.store(true, Ordering::SeqCst);
                fail_all(&reader_pending, &why);
            })
            .map_err(|err| ObladiError::Storage(format!("spawn reader: {err}")))?;

        self.counters.connects.fetch_add(1, Ordering::Relaxed);
        self.counters.obs_connects.inc();
        if self.counters.connects.load(Ordering::Relaxed) > 1 {
            obladi_obs::global().counter("remote.reconnects").inc();
            obladi_obs::trace::global().record("remote.reconnect", 0, 0);
        }
        Ok(Arc::new(LiveConn {
            tx,
            pending,
            dead,
            stream,
        }))
    }

    /// The current live connection, reconnecting once if it has died.
    fn live(&self) -> Result<Arc<LiveConn>> {
        let mut guard = self.conn.lock();
        if let Some(conn) = guard.as_ref() {
            if !conn.dead.load(Ordering::SeqCst) {
                return Ok(conn.clone());
            }
            conn.close();
            *guard = None;
        }
        let conn = self.establish()?;
        *guard = Some(conn.clone());
        Ok(conn)
    }

    /// Ships one request and blocks for its response.
    fn call(&self, request: StoreRequest) -> Result<StoreResponse> {
        let conn = self.live()?;
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let frame = Frame::for_message(id, request.encode())?;
        let (tx, rx) = mpsc::channel();
        conn.pending.lock().insert(id, tx);
        self.counters.requests.fetch_add(1, Ordering::Relaxed);
        self.counters.obs_requests.inc();
        if conn.tx.send(frame).is_err() {
            conn.pending.lock().remove(&id);
            return Err(ObladiError::Storage(
                "storage daemon connection lost: writer gone".into(),
            ));
        }
        // Close the register/collapse race: if the reader declared the
        // connection dead between our liveness check and the insert above,
        // its fail_all may have drained the map *before* our waiter was in
        // it — and a first write into a dead TCP socket can still succeed
        // into the kernel buffer, so nothing else would ever wake us.  If
        // our entry is still present on a dead connection, fail it
        // ourselves; if it is gone, fail_all owned it and recv() below
        // returns promptly.
        if conn.dead.load(Ordering::SeqCst) && conn.pending.lock().remove(&id).is_some() {
            return Err(ObladiError::Storage(
                "storage daemon connection lost: died while request was in flight".into(),
            ));
        }
        match rx.recv_timeout(self.request_timeout) {
            Ok(result) => result,
            Err(_) => {
                conn.pending.lock().remove(&id);
                conn.close();
                Err(ObladiError::Storage(format!(
                    "storage request {id} timed out after {:?}",
                    self.request_timeout
                )))
            }
        }
    }
}

impl Drop for RemoteStore {
    fn drop(&mut self) {
        self.disconnect();
    }
}

fn unexpected(what: &str, got: &StoreResponse) -> ObladiError {
    ObladiError::Storage(format!("unexpected response to {what}: {got:?}"))
}

impl UntrustedStore for RemoteStore {
    fn read_slot(&self, bucket: BucketId, slot: u32) -> Result<Bytes> {
        match self.call(StoreRequest::ReadSlot { bucket, slot })? {
            StoreResponse::Slot(data) => Ok(data),
            other => Err(unexpected("read_slot", &other)),
        }
    }

    fn read_bucket(&self, bucket: BucketId) -> Result<BucketSnapshot> {
        match self.call(StoreRequest::ReadBucket { bucket })? {
            StoreResponse::Bucket(snapshot) => Ok(snapshot),
            other => Err(unexpected("read_bucket", &other)),
        }
    }

    fn write_bucket(&self, bucket: BucketId, slots: Vec<Bytes>) -> Result<Version> {
        match self.call(StoreRequest::WriteBucket { bucket, slots })? {
            StoreResponse::Version(version) => Ok(version),
            other => Err(unexpected("write_bucket", &other)),
        }
    }

    fn bucket_version(&self, bucket: BucketId) -> Result<Version> {
        match self.call(StoreRequest::BucketVersion { bucket })? {
            StoreResponse::Version(version) => Ok(version),
            other => Err(unexpected("bucket_version", &other)),
        }
    }

    fn revert_bucket(&self, bucket: BucketId, version: Version) -> Result<()> {
        match self.call(StoreRequest::RevertBucket { bucket, version })? {
            StoreResponse::Unit => Ok(()),
            other => Err(unexpected("revert_bucket", &other)),
        }
    }

    fn put_meta(&self, key: &str, value: Bytes) -> Result<()> {
        let request = StoreRequest::PutMeta {
            key: key.to_string(),
            value,
        };
        match self.call(request)? {
            StoreResponse::Unit => Ok(()),
            other => Err(unexpected("put_meta", &other)),
        }
    }

    fn get_meta(&self, key: &str) -> Result<Option<Bytes>> {
        let request = StoreRequest::GetMeta {
            key: key.to_string(),
        };
        match self.call(request)? {
            StoreResponse::MetaValue(value) => Ok(value),
            other => Err(unexpected("get_meta", &other)),
        }
    }

    fn append_log(&self, record: Bytes) -> Result<u64> {
        match self.call(StoreRequest::AppendLog { record })? {
            StoreResponse::LogSeq(seq) => Ok(seq),
            other => Err(unexpected("append_log", &other)),
        }
    }

    fn read_log_from(&self, from: u64) -> Result<Vec<(u64, Bytes)>> {
        // The server pages large logs (a single frame must stay inside the
        // decoder's bound); follow the truncation flag until drained.
        let mut all = Vec::new();
        let mut next = from;
        loop {
            match self.call(StoreRequest::ReadLogFrom { from: next })? {
                StoreResponse::LogRecords { records, truncated } => {
                    let last_seq = records.last().map(|(seq, _)| *seq);
                    all.extend(records);
                    match (truncated, last_seq) {
                        (true, Some(last_seq)) => next = last_seq + 1,
                        // A truncated-but-empty page would loop forever;
                        // treat it as the server's final word.
                        _ => return Ok(all),
                    }
                }
                other => return Err(unexpected("read_log_from", &other)),
            }
        }
    }

    fn truncate_log(&self, up_to: u64) -> Result<()> {
        match self.call(StoreRequest::TruncateLog { up_to })? {
            StoreResponse::Unit => Ok(()),
            other => Err(unexpected("truncate_log", &other)),
        }
    }

    fn truncate_log_tail(&self, from: u64) -> Result<()> {
        match self.call(StoreRequest::TruncateLogTail { from })? {
            StoreResponse::Unit => Ok(()),
            other => Err(unexpected("truncate_log_tail", &other)),
        }
    }

    fn stats(&self) -> StoreStats {
        match self.call(StoreRequest::Stats) {
            Ok(StoreResponse::Stats(stats)) => stats,
            // The trait's stats() is infallible; a dead daemon reports
            // zeros rather than poisoning a stats scrape.
            _ => StoreStats::default(),
        }
    }

    fn reset_stats(&self) {
        let _ = self.call(StoreRequest::ResetStats);
    }

    fn daemon_metrics(&self) -> Option<obladi_storage::WireMetrics> {
        // Best-effort: a daemon that predates the request (or is down)
        // simply contributes nothing to the merged dump.
        self.metrics_snapshot().ok()
    }
}
