//! The framed wire protocol: length-prefixed, versioned frames carrying
//! [`StoreRequest`](obladi_storage::StoreRequest) /
//! [`StoreResponse`](obladi_storage::StoreResponse) payloads.
//!
//! A connection starts with a fixed-size *hello* (`b"OBLD"` magic plus a
//! little-endian protocol version) in each direction; a version mismatch is
//! detected before any frame is parsed, so two incompatible peers can never
//! misinterpret each other's bytes.  After the handshake the stream is a
//! sequence of frames:
//!
//! ```text
//! ┌──────────┬──────────────┬────────┬────────────────┐
//! │ len: u32 │ request: u64 │ op: u8 │ payload bytes  │
//! └──────────┴──────────────┴────────┴────────────────┘
//!   len = 9 + payload.len(), little-endian throughout
//! ```
//!
//! The request id correlates pipelined responses with their requests (the
//! client keeps many frames in flight; the server may only answer in
//! order, but the contract is by-id).  The opcode duplicates the payload's
//! leading tag byte so a desynchronised stream is caught at the framing
//! layer instead of producing a plausible-but-wrong message.
//!
//! [`FrameDecoder`] is incremental: bytes arrive in arbitrary splits (TCP
//! segments, short reads) and frames are yielded exactly when complete.  A
//! torn trailing frame — the bytes a dead peer never finished sending — is
//! reported by [`FrameDecoder::finish`] without ever desynchronising the
//! frames before it.

use bytes::Bytes;
use obladi_common::error::{ObladiError, Result};

/// Magic bytes opening every connection.
pub const MAGIC: [u8; 4] = *b"OBLD";

/// Protocol version spoken by this build.
pub const PROTOCOL_VERSION: u16 = 1;

/// Size of the hello exchanged in each direction.
pub const HELLO_LEN: usize = 6;

/// Frame header size after the length prefix: request id + opcode.
const FRAME_HEADER: usize = 9;

/// Upper bound on one frame's length field: the wire payload maximum plus
/// framing overhead.  Anything larger is a desynchronised or hostile peer.
pub const MAX_FRAME: u32 = (obladi_storage::proto::MAX_WIRE_LEN as u32) + (1 << 16);

/// One frame: a correlation id, an opcode and an opaque payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    /// Client-chosen request id, echoed by the response.
    pub id: u64,
    /// Opcode tag (must match the payload's leading byte).
    pub opcode: u8,
    /// Message payload (a full `StoreRequest` / `StoreResponse` encoding).
    pub payload: Bytes,
}

impl Frame {
    /// Frames a message payload, reading the opcode from its tag byte.
    pub fn for_message(id: u64, payload: Vec<u8>) -> Result<Frame> {
        let opcode = *payload
            .first()
            .ok_or_else(|| ObladiError::Codec("cannot frame an empty message".into()))?;
        Ok(Frame {
            id,
            opcode,
            payload: Bytes::from(payload),
        })
    }
}

/// The hello sent by each side at connection open.
pub fn encode_hello(version: u16) -> [u8; HELLO_LEN] {
    let mut hello = [0u8; HELLO_LEN];
    hello[..4].copy_from_slice(&MAGIC);
    hello[4..].copy_from_slice(&version.to_le_bytes());
    hello
}

/// Parses a received hello, returning the peer's protocol version.
///
/// A bad magic is a hard `Codec` error (the peer is not speaking this
/// protocol at all); the version is returned for the caller to judge, so
/// the mismatch diagnostic can name both versions.
pub fn parse_hello(hello: &[u8; HELLO_LEN]) -> Result<u16> {
    if hello[..4] != MAGIC {
        return Err(ObladiError::Codec(format!(
            "bad protocol magic {:02X?} (expected {:02X?})",
            &hello[..4],
            MAGIC
        )));
    }
    Ok(u16::from_le_bytes(hello[4..].try_into().unwrap()))
}

/// Appends the encoding of `frame` to `buf`.
pub fn encode_frame(buf: &mut Vec<u8>, frame: &Frame) {
    let len = (FRAME_HEADER + frame.payload.len()) as u32;
    buf.extend_from_slice(&len.to_le_bytes());
    buf.extend_from_slice(&frame.id.to_le_bytes());
    buf.push(frame.opcode);
    buf.extend_from_slice(&frame.payload);
}

/// Incremental frame decoder over an in-order byte stream.
#[derive(Debug, Default)]
pub struct FrameDecoder {
    buf: Vec<u8>,
    consumed: usize,
}

impl FrameDecoder {
    /// An empty decoder.
    pub fn new() -> Self {
        FrameDecoder::default()
    }

    /// Feeds newly received bytes.
    pub fn extend(&mut self, data: &[u8]) {
        // Compact lazily: copying the undecoded remainder once the consumed
        // prefix dominates keeps the buffer bounded without per-frame moves.
        if self.consumed > 0 && self.consumed >= self.buf.len() / 2 {
            self.buf.drain(..self.consumed);
            self.consumed = 0;
        }
        self.buf.extend_from_slice(data);
    }

    /// Yields the next complete frame, `None` if more bytes are needed.
    ///
    /// A structurally invalid frame (length below the header size, length
    /// above [`MAX_FRAME`], opcode disagreeing with the payload tag) is a
    /// `Codec` error; the stream is unrecoverable past it by design — a
    /// framing layer that "resynchronises" against an untrusted peer is an
    /// injection vector.
    pub fn next_frame(&mut self) -> Result<Option<Frame>> {
        let avail = &self.buf[self.consumed..];
        if avail.len() < 4 {
            return Ok(None);
        }
        let len = u32::from_le_bytes(avail[..4].try_into().unwrap());
        if len < FRAME_HEADER as u32 {
            return Err(ObladiError::Codec(format!(
                "frame length {len} below header size"
            )));
        }
        if len > MAX_FRAME {
            return Err(ObladiError::Codec(format!(
                "frame length {len} exceeds maximum {MAX_FRAME}"
            )));
        }
        let total = 4 + len as usize;
        if avail.len() < total {
            return Ok(None);
        }
        let id = u64::from_le_bytes(avail[4..12].try_into().unwrap());
        let opcode = avail[12];
        let payload = &avail[13..total];
        match payload.first() {
            Some(&tag) if tag == opcode => {}
            Some(&tag) => {
                return Err(ObladiError::Codec(format!(
                    "frame opcode 0x{opcode:02X} disagrees with payload tag 0x{tag:02X}: \
                     stream desynchronised"
                )))
            }
            None => return Err(ObladiError::Codec("frame carries an empty payload".into())),
        }
        let frame = Frame {
            id,
            opcode,
            payload: Bytes::from(payload.to_vec()),
        };
        self.consumed += total;
        Ok(Some(frame))
    }

    /// Number of buffered, not-yet-decoded bytes.
    pub fn buffered(&self) -> usize {
        self.buf.len() - self.consumed
    }

    /// Declares end-of-stream: any buffered remainder is a torn trailing
    /// frame the peer never finished sending.
    pub fn finish(&self) -> Result<()> {
        match self.buffered() {
            0 => Ok(()),
            torn => Err(ObladiError::Codec(format!(
                "stream ended inside a frame ({torn} torn trailing bytes)"
            ))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frame(id: u64, payload: &[u8]) -> Frame {
        Frame {
            id,
            opcode: payload[0],
            payload: Bytes::from(payload.to_vec()),
        }
    }

    #[test]
    fn hello_round_trip_and_bad_magic() {
        let hello = encode_hello(PROTOCOL_VERSION);
        assert_eq!(parse_hello(&hello).unwrap(), PROTOCOL_VERSION);
        let mut bad = hello;
        bad[0] = b'X';
        assert!(parse_hello(&bad).is_err());
    }

    #[test]
    fn frames_round_trip_under_byte_by_byte_delivery() {
        let frames = [
            frame(1, &[0x0C]),
            frame(u64::MAX, b"\x08some wal record"),
            frame(0, &[0x84]),
        ];
        let mut wire = Vec::new();
        for f in &frames {
            encode_frame(&mut wire, f);
        }
        let mut decoder = FrameDecoder::new();
        let mut decoded = Vec::new();
        for byte in wire {
            decoder.extend(&[byte]);
            while let Some(f) = decoder.next_frame().unwrap() {
                decoded.push(f);
            }
        }
        assert_eq!(decoded, frames);
        decoder.finish().unwrap();
    }

    #[test]
    fn torn_trailing_frame_is_reported_without_desync() {
        let mut wire = Vec::new();
        encode_frame(&mut wire, &frame(7, b"\x01whole"));
        encode_frame(&mut wire, &frame(8, b"\x02torn"));
        let cut = wire.len() - 3;
        let mut decoder = FrameDecoder::new();
        decoder.extend(&wire[..cut]);
        let first = decoder.next_frame().unwrap().unwrap();
        assert_eq!(first.id, 7);
        assert_eq!(decoder.next_frame().unwrap(), None);
        assert!(decoder.finish().is_err());
    }

    #[test]
    fn oversized_and_undersized_lengths_are_rejected() {
        let mut decoder = FrameDecoder::new();
        decoder.extend(&(MAX_FRAME + 1).to_le_bytes());
        assert!(decoder.next_frame().is_err());

        let mut decoder = FrameDecoder::new();
        decoder.extend(&3u32.to_le_bytes());
        assert!(decoder.next_frame().is_err());
    }

    #[test]
    fn opcode_payload_disagreement_is_rejected() {
        let mut wire = Vec::new();
        encode_frame(&mut wire, &frame(1, b"\x05abc"));
        wire[12] = 0x06; // flip the header opcode away from the payload tag
        let mut decoder = FrameDecoder::new();
        decoder.extend(&wire);
        assert!(decoder.next_frame().is_err());
    }

    #[test]
    fn for_message_reads_tag() {
        let f = Frame::for_message(3, vec![0x0E]).unwrap();
        assert_eq!(f.opcode, 0x0E);
        assert!(Frame::for_message(3, Vec::new()).is_err());
    }
}
