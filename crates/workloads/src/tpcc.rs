//! The TPC-C benchmark (§11: 10 warehouses, the de-facto OLTP standard).
//!
//! All five transaction types are implemented against the key-value
//! interface: `NewOrder`, `Payment`, `OrderStatus`, `Delivery` and
//! `StockLevel`, with the standard mix (45/43/4/4/4).  As in the paper's
//! setup, two secondary-index tables are maintained: customers by last name
//! (used by `Payment` and `OrderStatus`) and each customer's latest order
//! (used by `OrderStatus`).
//!
//! Simplifications relative to the full TPC-C specification, chosen to keep
//! rows inside a single ORAM block and documented here for transparency:
//! the `HISTORY` table is represented by a per-customer payment counter,
//! undelivered orders are tracked with a per-district delivery cursor
//! instead of a `NEW-ORDER` table scan, and text columns are represented by
//! numeric identifiers.  None of these change the transactions' read/write
//! footprints on the tables the evaluation exercises.

use crate::driver::Workload;
use crate::encoding::{pack_key, read_row, write_row, Row};
use obladi_common::error::{ObladiError, Result};
use obladi_common::rng::DetRng;
use obladi_core::{KvDatabase, KvTransaction};

const TABLE_WAREHOUSE: u8 = 10;
const TABLE_DISTRICT: u8 = 11;
const TABLE_CUSTOMER: u8 = 12;
const TABLE_CUSTOMER_NAME_IDX: u8 = 13;
const TABLE_ORDER: u8 = 14;
const TABLE_ORDER_LINE: u8 = 16;
const TABLE_ITEM: u8 = 17;
const TABLE_STOCK: u8 = 18;
const TABLE_CUSTOMER_LATEST_ORDER: u8 = 19;

// Row field indices, named for readability.
mod district_fields {
    pub const NEXT_O_ID: usize = 0;
    pub const YTD: usize = 1;
    pub const NEXT_DELIVERY_O_ID: usize = 2;
}
mod customer_fields {
    pub const BALANCE: usize = 0;
    pub const YTD_PAYMENT: usize = 1;
    pub const PAYMENT_CNT: usize = 2;
    pub const DELIVERY_CNT: usize = 3;
    pub const LAST_NAME_ID: usize = 4;
}
mod order_fields {
    pub const C_ID: usize = 0;
    pub const CARRIER_ID: usize = 1;
    pub const OL_CNT: usize = 2;
    pub const ENTRY_D: usize = 3;
}
mod order_line_fields {
    pub const ITEM_ID: usize = 0;
    pub const SUPPLY_W: usize = 1;
    pub const QUANTITY: usize = 2;
    pub const AMOUNT: usize = 3;
    pub const DELIVERY_D: usize = 4;
}
mod stock_fields {
    pub const QUANTITY: usize = 0;
    pub const YTD: usize = 1;
    pub const ORDER_CNT: usize = 2;
    pub const REMOTE_CNT: usize = 3;
}

/// TPC-C configuration.
#[derive(Debug, Clone, Copy)]
pub struct TpccConfig {
    /// Number of warehouses.
    pub warehouses: u64,
    /// Districts per warehouse (10 in the spec).
    pub districts_per_warehouse: u64,
    /// Customers per district (3000 in the spec).
    pub customers_per_district: u64,
    /// Number of items (100 000 in the spec).
    pub items: u64,
    /// Distinct last names used by the by-name index.
    pub last_names: u64,
    /// How many recent orders a `StockLevel` transaction scans (20 in the
    /// spec; smaller values keep transactions inside one Obladi epoch).
    pub stock_level_orders: u64,
    /// Maximum order lines per order (the spec draws 5–15).
    pub max_order_lines: u64,
}

impl TpccConfig {
    /// Tiny configuration for unit tests.
    pub fn small() -> Self {
        TpccConfig {
            warehouses: 1,
            districts_per_warehouse: 2,
            customers_per_district: 8,
            items: 32,
            last_names: 4,
            stock_level_orders: 3,
            max_order_lines: 5,
        }
    }

    /// A scaled-down configuration for benchmarks (the paper uses 10
    /// warehouses with the full table cardinalities; this keeps the shape —
    /// contention on districts — while fitting the simulated store).
    pub fn benchmark(warehouses: u64) -> Self {
        TpccConfig {
            warehouses,
            districts_per_warehouse: 10,
            customers_per_district: 120,
            items: 1000,
            last_names: 32,
            stock_level_orders: 5,
            max_order_lines: 10,
        }
    }
}

/// The five TPC-C transaction types.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TpccTxn {
    /// Place a new order (≈45%).
    NewOrder,
    /// Record a customer payment (≈43%).
    Payment,
    /// Query the status of a customer's latest order (≈4%).
    OrderStatus,
    /// Deliver the oldest undelivered order of every district (≈4%).
    Delivery,
    /// Count low-stock items among recent orders (≈4%).
    StockLevel,
}

impl TpccTxn {
    /// Samples a transaction type from the standard mix.
    pub fn sample(rng: &mut DetRng) -> Self {
        match rng.below(100) {
            0..=44 => TpccTxn::NewOrder,
            45..=87 => TpccTxn::Payment,
            88..=91 => TpccTxn::OrderStatus,
            92..=95 => TpccTxn::Delivery,
            _ => TpccTxn::StockLevel,
        }
    }
}

/// The TPC-C workload.
pub struct TpccWorkload {
    config: TpccConfig,
}

impl TpccWorkload {
    /// Creates the workload.
    pub fn new(config: TpccConfig) -> Self {
        TpccWorkload { config }
    }

    /// The configuration.
    pub fn config(&self) -> &TpccConfig {
        &self.config
    }

    // ---- key helpers ----

    fn warehouse_key(w: u64) -> u64 {
        pack_key(TABLE_WAREHOUSE, w, 0, 0)
    }
    fn district_key(w: u64, d: u64) -> u64 {
        pack_key(TABLE_DISTRICT, w, d, 0)
    }
    fn customer_key(w: u64, d: u64, c: u64) -> u64 {
        pack_key(TABLE_CUSTOMER, c, w, d)
    }
    fn customer_name_idx_key(w: u64, d: u64, name: u64) -> u64 {
        pack_key(TABLE_CUSTOMER_NAME_IDX, name, w, d)
    }
    fn order_key(w: u64, d: u64, o: u64) -> u64 {
        pack_key(TABLE_ORDER, o, w, d)
    }
    fn order_line_key(w: u64, d: u64, o: u64, line: u64) -> u64 {
        pack_key(TABLE_ORDER_LINE, o, w, d * 16 + line)
    }
    fn item_key(i: u64) -> u64 {
        pack_key(TABLE_ITEM, i, 0, 0)
    }
    fn stock_key(w: u64, i: u64) -> u64 {
        pack_key(TABLE_STOCK, i, w, 0)
    }
    fn latest_order_key(w: u64, d: u64, c: u64) -> u64 {
        pack_key(TABLE_CUSTOMER_LATEST_ORDER, c, w, d)
    }

    fn pick_warehouse(&self, rng: &mut DetRng) -> u64 {
        rng.below(self.config.warehouses)
    }
    fn pick_district(&self, rng: &mut DetRng) -> u64 {
        rng.below(self.config.districts_per_warehouse)
    }
    fn pick_customer(&self, rng: &mut DetRng) -> u64 {
        rng.below(self.config.customers_per_district)
    }
    fn pick_item(&self, rng: &mut DetRng) -> u64 {
        rng.below(self.config.items)
    }

    fn customer_last_name(&self, c: u64) -> u64 {
        c % self.config.last_names
    }

    fn map_result(result: Result<()>) -> Result<bool> {
        match result {
            Ok(()) => Ok(true),
            Err(err) if err.is_retryable() => Ok(false),
            Err(err) => Err(err),
        }
    }

    // ---- transactions ----

    /// The NewOrder transaction: reads the district and items, updates stock
    /// levels and creates the order and its lines.
    pub fn new_order<D: KvDatabase>(&self, db: &D, rng: &mut DetRng) -> Result<bool> {
        let w = self.pick_warehouse(rng);
        let d = self.pick_district(rng);
        let c = self.pick_customer(rng);
        let line_count = 2 + rng.below(self.config.max_order_lines.saturating_sub(1).max(1));
        let lines: Vec<(u64, u64, u64)> = (0..line_count)
            .map(|_| {
                // 1% of lines reference a remote warehouse when possible.
                let supply_w = if self.config.warehouses > 1 && rng.chance(0.01) {
                    (w + 1 + rng.below(self.config.warehouses - 1)) % self.config.warehouses
                } else {
                    w
                };
                (self.pick_item(rng), supply_w, 1 + rng.below(10))
            })
            .collect();

        Self::map_result(db.execute(&mut |txn: &mut dyn KvTransaction| {
            // District: allocate the order id.
            let district_key = Self::district_key(w, d);
            let mut district =
                read_row(txn, district_key)?.ok_or(ObladiError::KeyNotFound(district_key))?;
            let o_id = district.num(district_fields::NEXT_O_ID)?;
            district.set_num(district_fields::NEXT_O_ID, o_id + 1);
            write_row(txn, district_key, &district)?;

            // Customer credit check (read only).
            let customer_key = Self::customer_key(w, d, c);
            read_row(txn, customer_key)?.ok_or(ObladiError::KeyNotFound(customer_key))?;

            // Items and stock.
            let mut total = 0u64;
            for (line_no, (item, supply_w, quantity)) in lines.iter().enumerate() {
                let item_key = Self::item_key(*item);
                let item_row =
                    read_row(txn, item_key)?.ok_or(ObladiError::KeyNotFound(item_key))?;
                let price = item_row.num(0)?;

                let stock_key = Self::stock_key(*supply_w, *item);
                let mut stock =
                    read_row(txn, stock_key)?.ok_or(ObladiError::KeyNotFound(stock_key))?;
                let current = stock.num(stock_fields::QUANTITY)?;
                let new_quantity = if current > *quantity + 10 {
                    current - quantity
                } else {
                    current + 91 - quantity
                };
                stock.set_num(stock_fields::QUANTITY, new_quantity);
                stock.set_num(stock_fields::YTD, stock.num(stock_fields::YTD)? + quantity);
                stock.set_num(
                    stock_fields::ORDER_CNT,
                    stock.num(stock_fields::ORDER_CNT)? + 1,
                );
                if *supply_w != w {
                    stock.set_num(
                        stock_fields::REMOTE_CNT,
                        stock.num(stock_fields::REMOTE_CNT)? + 1,
                    );
                }
                write_row(txn, stock_key, &stock)?;

                let amount = price * quantity;
                total += amount;
                let mut line_row = Row::new(vec![0; 5]);
                line_row.set_num(order_line_fields::ITEM_ID, *item);
                line_row.set_num(order_line_fields::SUPPLY_W, *supply_w);
                line_row.set_num(order_line_fields::QUANTITY, *quantity);
                line_row.set_num(order_line_fields::AMOUNT, amount);
                line_row.set_num(order_line_fields::DELIVERY_D, 0);
                write_row(
                    txn,
                    Self::order_line_key(w, d, o_id, line_no as u64),
                    &line_row,
                )?;
            }
            let _ = total;

            // The order itself plus the latest-order secondary index.
            let mut order_row = Row::new(vec![0; 4]);
            order_row.set_num(order_fields::C_ID, c);
            order_row.set_num(order_fields::CARRIER_ID, 0);
            order_row.set_num(order_fields::OL_CNT, lines.len() as u64);
            order_row.set_num(order_fields::ENTRY_D, o_id);
            write_row(txn, Self::order_key(w, d, o_id), &order_row)?;
            write_row(txn, Self::latest_order_key(w, d, c), &Row::new(vec![o_id]))?;
            Ok(())
        }))
    }

    /// The Payment transaction: updates warehouse, district and customer
    /// year-to-date amounts; 60% of customers are selected by last name.
    pub fn payment<D: KvDatabase>(&self, db: &D, rng: &mut DetRng) -> Result<bool> {
        let w = self.pick_warehouse(rng);
        let d = self.pick_district(rng);
        let by_name = rng.chance(0.6);
        let c_direct = self.pick_customer(rng);
        let name = self.customer_last_name(self.pick_customer(rng));
        let amount = 1 + rng.below(5000);

        Self::map_result(db.execute(&mut |txn: &mut dyn KvTransaction| {
            let warehouse_key = Self::warehouse_key(w);
            let mut warehouse =
                read_row(txn, warehouse_key)?.ok_or(ObladiError::KeyNotFound(warehouse_key))?;
            warehouse.set_num(0, warehouse.num(0)? + amount);
            write_row(txn, warehouse_key, &warehouse)?;

            let district_key = Self::district_key(w, d);
            let mut district =
                read_row(txn, district_key)?.ok_or(ObladiError::KeyNotFound(district_key))?;
            district.set_num(
                district_fields::YTD,
                district.num(district_fields::YTD)? + amount,
            );
            write_row(txn, district_key, &district)?;

            // Resolve the customer: direct id or via the last-name index
            // (taking the "middle" customer as the spec prescribes).
            let c = if by_name {
                let idx_key = Self::customer_name_idx_key(w, d, name);
                let idx = read_row(txn, idx_key)?.ok_or(ObladiError::KeyNotFound(idx_key))?;
                let ids = idx.blob_as_ids();
                if ids.is_empty() {
                    return Err(ObladiError::KeyNotFound(idx_key));
                }
                ids[ids.len() / 2]
            } else {
                c_direct
            };

            let customer_key = Self::customer_key(w, d, c);
            let mut customer =
                read_row(txn, customer_key)?.ok_or(ObladiError::KeyNotFound(customer_key))?;
            customer.set_num(
                customer_fields::BALANCE,
                customer
                    .num(customer_fields::BALANCE)?
                    .saturating_sub(amount),
            );
            customer.set_num(
                customer_fields::YTD_PAYMENT,
                customer.num(customer_fields::YTD_PAYMENT)? + amount,
            );
            customer.set_num(
                customer_fields::PAYMENT_CNT,
                customer.num(customer_fields::PAYMENT_CNT)? + 1,
            );
            write_row(txn, customer_key, &customer)?;
            Ok(())
        }))
    }

    /// The OrderStatus transaction: reads a customer's latest order and its
    /// order lines.
    pub fn order_status<D: KvDatabase>(&self, db: &D, rng: &mut DetRng) -> Result<bool> {
        let w = self.pick_warehouse(rng);
        let d = self.pick_district(rng);
        let by_name = rng.chance(0.6);
        let c_direct = self.pick_customer(rng);
        let name = self.customer_last_name(self.pick_customer(rng));

        Self::map_result(db.execute(&mut |txn: &mut dyn KvTransaction| {
            let c = if by_name {
                let idx_key = Self::customer_name_idx_key(w, d, name);
                let idx = read_row(txn, idx_key)?.ok_or(ObladiError::KeyNotFound(idx_key))?;
                let ids = idx.blob_as_ids();
                if ids.is_empty() {
                    return Err(ObladiError::KeyNotFound(idx_key));
                }
                ids[ids.len() / 2]
            } else {
                c_direct
            };
            let customer_key = Self::customer_key(w, d, c);
            read_row(txn, customer_key)?.ok_or(ObladiError::KeyNotFound(customer_key))?;

            let latest = read_row(txn, Self::latest_order_key(w, d, c))?;
            if let Some(latest) = latest {
                let o_id = latest.num(0)?;
                if let Some(order) = read_row(txn, Self::order_key(w, d, o_id))? {
                    let lines = order.num(order_fields::OL_CNT)?;
                    for line in 0..lines {
                        read_row(txn, Self::order_line_key(w, d, o_id, line))?;
                    }
                }
            }
            Ok(())
        }))
    }

    /// The Delivery transaction: for each district of a warehouse, deliver
    /// the oldest undelivered order.
    pub fn delivery<D: KvDatabase>(&self, db: &D, rng: &mut DetRng) -> Result<bool> {
        let w = self.pick_warehouse(rng);
        let carrier = 1 + rng.below(10);
        let districts = self.config.districts_per_warehouse;

        Self::map_result(db.execute(&mut |txn: &mut dyn KvTransaction| {
            for d in 0..districts {
                let district_key = Self::district_key(w, d);
                let mut district =
                    read_row(txn, district_key)?.ok_or(ObladiError::KeyNotFound(district_key))?;
                let next_delivery = district.num(district_fields::NEXT_DELIVERY_O_ID)?;
                let next_o_id = district.num(district_fields::NEXT_O_ID)?;
                if next_delivery >= next_o_id {
                    continue; // nothing to deliver in this district
                }
                let o_id = next_delivery;
                district.set_num(district_fields::NEXT_DELIVERY_O_ID, o_id + 1);
                write_row(txn, district_key, &district)?;

                let order_key = Self::order_key(w, d, o_id);
                let Some(mut order) = read_row(txn, order_key)? else {
                    continue;
                };
                order.set_num(order_fields::CARRIER_ID, carrier);
                write_row(txn, order_key, &order)?;

                let mut amount_total = 0u64;
                let lines = order.num(order_fields::OL_CNT)?;
                for line in 0..lines {
                    let line_key = Self::order_line_key(w, d, o_id, line);
                    if let Some(mut line_row) = read_row(txn, line_key)? {
                        amount_total += line_row.num(order_line_fields::AMOUNT)?;
                        line_row.set_num(order_line_fields::DELIVERY_D, carrier);
                        write_row(txn, line_key, &line_row)?;
                    }
                }

                let c = order.num(order_fields::C_ID)?;
                let customer_key = Self::customer_key(w, d, c);
                if let Some(mut customer) = read_row(txn, customer_key)? {
                    customer.set_num(
                        customer_fields::BALANCE,
                        customer.num(customer_fields::BALANCE)? + amount_total,
                    );
                    customer.set_num(
                        customer_fields::DELIVERY_CNT,
                        customer.num(customer_fields::DELIVERY_CNT)? + 1,
                    );
                    write_row(txn, customer_key, &customer)?;
                }
            }
            Ok(())
        }))
    }

    /// The StockLevel transaction: counts items in recent orders whose stock
    /// is below a threshold.
    pub fn stock_level<D: KvDatabase>(&self, db: &D, rng: &mut DetRng) -> Result<bool> {
        let w = self.pick_warehouse(rng);
        let d = self.pick_district(rng);
        let threshold = 10 + rng.below(11);
        let scan = self.config.stock_level_orders;

        Self::map_result(db.execute(&mut |txn: &mut dyn KvTransaction| {
            let district_key = Self::district_key(w, d);
            let district =
                read_row(txn, district_key)?.ok_or(ObladiError::KeyNotFound(district_key))?;
            let next_o_id = district.num(district_fields::NEXT_O_ID)?;
            let first = next_o_id.saturating_sub(scan);

            let mut low_stock = 0u64;
            let mut seen = std::collections::HashSet::new();
            for o_id in first..next_o_id {
                let Some(order) = read_row(txn, Self::order_key(w, d, o_id))? else {
                    continue;
                };
                let lines = order.num(order_fields::OL_CNT)?;
                for line in 0..lines {
                    let Some(line_row) = read_row(txn, Self::order_line_key(w, d, o_id, line))?
                    else {
                        continue;
                    };
                    let item = line_row.num(order_line_fields::ITEM_ID)?;
                    if !seen.insert(item) {
                        continue;
                    }
                    let stock_key = Self::stock_key(w, item);
                    if let Some(stock) = read_row(txn, stock_key)? {
                        if stock.num(stock_fields::QUANTITY)? < threshold {
                            low_stock += 1;
                        }
                    }
                }
            }
            let _ = low_stock;
            Ok(())
        }))
    }

    /// Runs a specific transaction type.
    pub fn run_txn<D: KvDatabase>(&self, db: &D, kind: TpccTxn, rng: &mut DetRng) -> Result<bool> {
        match kind {
            TpccTxn::NewOrder => self.new_order(db, rng),
            TpccTxn::Payment => self.payment(db, rng),
            TpccTxn::OrderStatus => self.order_status(db, rng),
            TpccTxn::Delivery => self.delivery(db, rng),
            TpccTxn::StockLevel => self.stock_level(db, rng),
        }
    }

    /// Reads the next order id of a district (test helper).
    pub fn district_next_order<D: KvDatabase>(&self, db: &D, w: u64, d: u64) -> Result<u64> {
        db.execute(&mut |txn: &mut dyn KvTransaction| {
            let district = read_row(txn, Self::district_key(w, d))?
                .ok_or(ObladiError::KeyNotFound(Self::district_key(w, d)))?;
            district.num(district_fields::NEXT_O_ID)
        })
    }
}

impl Workload for TpccWorkload {
    fn setup<D: KvDatabase>(&self, db: &D) -> Result<()> {
        let cfg = &self.config;

        // Items and per-warehouse stock.
        let chunk = 16u64;
        let mut start = 0;
        while start < cfg.items {
            let end = (start + chunk).min(cfg.items);
            db.execute(&mut |txn: &mut dyn KvTransaction| {
                for item in start..end {
                    write_row(
                        txn,
                        Self::item_key(item),
                        &Row::new(vec![1 + item % 100, item, item]),
                    )?;
                }
                Ok(())
            })?;
            start = end;
        }
        for w in 0..cfg.warehouses {
            let mut start = 0;
            while start < cfg.items {
                let end = (start + chunk).min(cfg.items);
                db.execute(&mut |txn: &mut dyn KvTransaction| {
                    for item in start..end {
                        write_row(
                            txn,
                            Self::stock_key(w, item),
                            &Row::new(vec![50 + (item % 50), 0, 0, 0]),
                        )?;
                    }
                    Ok(())
                })?;
                start = end;
            }
        }

        // Warehouses, districts, customers and the by-name index.
        for w in 0..cfg.warehouses {
            db.execute(&mut |txn: &mut dyn KvTransaction| {
                write_row(txn, Self::warehouse_key(w), &Row::new(vec![0]))
            })?;
            for d in 0..cfg.districts_per_warehouse {
                db.execute(&mut |txn: &mut dyn KvTransaction| {
                    write_row(txn, Self::district_key(w, d), &Row::new(vec![0, 0, 0]))
                })?;
                let mut start = 0;
                while start < cfg.customers_per_district {
                    let end = (start + chunk).min(cfg.customers_per_district);
                    db.execute(&mut |txn: &mut dyn KvTransaction| {
                        for c in start..end {
                            let name = self.customer_last_name(c);
                            let mut row = Row::new(vec![0; 5]);
                            row.set_num(customer_fields::BALANCE, 1000);
                            row.set_num(customer_fields::LAST_NAME_ID, name);
                            write_row(txn, Self::customer_key(w, d, c), &row)?;
                        }
                        Ok(())
                    })?;
                    start = end;
                }
                // Name index rows (one per last name).
                db.execute(&mut |txn: &mut dyn KvTransaction| {
                    for name in 0..cfg.last_names {
                        let ids: Vec<u64> = (0..cfg.customers_per_district)
                            .filter(|c| self.customer_last_name(*c) == name)
                            .collect();
                        let mut row = Row::new(vec![ids.len() as u64]);
                        row.set_blob_ids(&ids);
                        write_row(txn, Self::customer_name_idx_key(w, d, name), &row)?;
                    }
                    Ok(())
                })?;
            }
        }
        Ok(())
    }

    fn run_one<D: KvDatabase>(&self, db: &D, rng: &mut DetRng) -> Result<bool> {
        let kind = TpccTxn::sample(rng);
        self.run_txn(db, kind, rng)
    }

    fn name(&self) -> &'static str {
        "tpcc"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::run_fixed_count;
    use obladi_core::TwoPhaseLockingDb;

    fn setup() -> (TwoPhaseLockingDb, TpccWorkload) {
        let db = TwoPhaseLockingDb::new();
        let workload = TpccWorkload::new(TpccConfig::small());
        workload.setup(&db).unwrap();
        (db, workload)
    }

    #[test]
    fn new_order_advances_district_counter_and_creates_rows() {
        let (db, workload) = setup();
        let mut rng = DetRng::new(1);
        let before: u64 = (0..2)
            .map(|d| workload.district_next_order(&db, 0, d).unwrap())
            .sum();
        for _ in 0..5 {
            assert!(workload.new_order(&db, &mut rng).unwrap());
        }
        let after: u64 = (0..2)
            .map(|d| workload.district_next_order(&db, 0, d).unwrap())
            .sum();
        assert_eq!(after - before, 5, "five orders must have been placed");
    }

    #[test]
    fn payment_decreases_customer_balance() {
        let (db, workload) = setup();
        let mut rng = DetRng::new(2);
        for _ in 0..10 {
            assert!(workload.payment(&db, &mut rng).unwrap());
        }
        // Warehouse YTD must have grown.
        let ytd = db
            .execute(&mut |txn: &mut dyn KvTransaction| {
                let row = read_row(txn, TpccWorkload::warehouse_key(0))?.unwrap();
                row.num(0)
            })
            .unwrap();
        assert!(ytd > 0);
    }

    #[test]
    fn order_status_and_stock_level_after_orders() {
        let (db, workload) = setup();
        let mut rng = DetRng::new(3);
        for _ in 0..10 {
            workload.new_order(&db, &mut rng).unwrap();
        }
        assert!(workload.order_status(&db, &mut rng).unwrap());
        assert!(workload.stock_level(&db, &mut rng).unwrap());
    }

    #[test]
    fn delivery_assigns_carriers_and_pays_customers() {
        let (db, workload) = setup();
        let mut rng = DetRng::new(4);
        for _ in 0..6 {
            workload.new_order(&db, &mut rng).unwrap();
        }
        assert!(workload.delivery(&db, &mut rng).unwrap());
        // After delivery, the delivery cursor of at least one district moved.
        let moved = db
            .execute(&mut |txn: &mut dyn KvTransaction| {
                let mut moved = false;
                for d in 0..2u64 {
                    let row = read_row(txn, TpccWorkload::district_key(0, d))?.unwrap();
                    if row.num(district_fields::NEXT_DELIVERY_O_ID)? > 0 {
                        moved = true;
                    }
                }
                Ok(moved)
            })
            .unwrap();
        assert!(moved);
    }

    #[test]
    fn full_mix_commits_mostly() {
        let (db, workload) = setup();
        let stats = run_fixed_count(&db, &workload, 120, 5).unwrap();
        assert_eq!(stats.committed + stats.aborted, 120);
        assert!(
            stats.committed as f64 / 120.0 > 0.8,
            "commit rate too low: {}",
            stats.summary()
        );
    }

    #[test]
    fn transaction_mix_matches_spec_proportions() {
        let mut rng = DetRng::new(6);
        let mut counts = std::collections::HashMap::new();
        for _ in 0..10_000 {
            *counts
                .entry(format!("{:?}", TpccTxn::sample(&mut rng)))
                .or_insert(0u64) += 1;
        }
        let new_order = counts["NewOrder"] as f64 / 10_000.0;
        let payment = counts["Payment"] as f64 / 10_000.0;
        assert!((new_order - 0.45).abs() < 0.03);
        assert!((payment - 0.43).abs() < 0.03);
        assert_eq!(counts.len(), 5);
    }
}
