//! The FreeHealth electronic health record workload (§11, Figure 8).
//!
//! FreeHealth is a real, actively used cloud EHR system; the paper ports its
//! storage layer onto Obladi and reports that it "consists of 21 transaction
//! types that doctors use to create patients and look up medical history,
//! prescriptions, and drug interactions".  This module re-implements the
//! Figure 8 schema — `Users`, `Patients`, `Episodes`, `EpisodeContents`,
//! `Prescriptions`, `Drugs`, `PMH` (past medical history) — and 21
//! transaction types over it, keeping the workload's defining properties:
//! short, read-heavy transactions centred on episode creation and lookup.

use crate::driver::Workload;
use crate::encoding::{pack_key, read_row, write_row, Row};
use obladi_common::error::{ObladiError, Result};
use obladi_common::rng::DetRng;
use obladi_core::{KvDatabase, KvTransaction};

const TABLE_USER: u8 = 30;
const TABLE_PATIENT: u8 = 31;
const TABLE_EPISODE: u8 = 32;
const TABLE_EPISODE_CONTENT: u8 = 33;
const TABLE_PRESCRIPTION: u8 = 34;
const TABLE_DRUG: u8 = 35;
const TABLE_PMH: u8 = 36;
/// Per-patient counters: number of episodes, prescriptions and PMH entries.
const TABLE_PATIENT_COUNTERS: u8 = 37;
/// Global allocation counters (next patient id, next episode id, ...).
const TABLE_SEQUENCES: u8 = 38;

mod patient_fields {
    pub const CREATOR: usize = 0;
    pub const IS_ACTIVE: usize = 1;
    pub const METADATA: usize = 2;
}
mod counter_fields {
    pub const EPISODES: usize = 0;
    pub const PRESCRIPTIONS: usize = 1;
    pub const PMH: usize = 2;
}

/// The 21 FreeHealth transaction types.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum FreeHealthTxn {
    CreateUser,
    LookupUser,
    CreatePatient,
    LookupPatient,
    UpdatePatientMetadata,
    DeactivatePatient,
    ReactivatePatient,
    CreateEpisode,
    AddEpisodeContent,
    ListEpisodes,
    ReadEpisodeContents,
    CreatePrescription,
    RenewPrescription,
    ListPrescriptions,
    CheckDrugInteractions,
    AddDrug,
    LookupDrug,
    AddMedicalHistory,
    ListMedicalHistory,
    PatientSummary,
    PrescribeWithInteractionCheck,
}

impl FreeHealthTxn {
    /// All transaction types.
    pub const ALL: [FreeHealthTxn; 21] = [
        FreeHealthTxn::CreateUser,
        FreeHealthTxn::LookupUser,
        FreeHealthTxn::CreatePatient,
        FreeHealthTxn::LookupPatient,
        FreeHealthTxn::UpdatePatientMetadata,
        FreeHealthTxn::DeactivatePatient,
        FreeHealthTxn::ReactivatePatient,
        FreeHealthTxn::CreateEpisode,
        FreeHealthTxn::AddEpisodeContent,
        FreeHealthTxn::ListEpisodes,
        FreeHealthTxn::ReadEpisodeContents,
        FreeHealthTxn::CreatePrescription,
        FreeHealthTxn::RenewPrescription,
        FreeHealthTxn::ListPrescriptions,
        FreeHealthTxn::CheckDrugInteractions,
        FreeHealthTxn::AddDrug,
        FreeHealthTxn::LookupDrug,
        FreeHealthTxn::AddMedicalHistory,
        FreeHealthTxn::ListMedicalHistory,
        FreeHealthTxn::PatientSummary,
        FreeHealthTxn::PrescribeWithInteractionCheck,
    ];

    /// Samples a transaction according to a read-heavy clinic-style mix:
    /// episode creation and record lookups dominate, administrative
    /// operations are rare.
    pub fn sample(rng: &mut DetRng) -> Self {
        match rng.below(100) {
            0..=17 => FreeHealthTxn::CreateEpisode,
            18..=29 => FreeHealthTxn::ReadEpisodeContents,
            30..=39 => FreeHealthTxn::ListEpisodes,
            40..=49 => FreeHealthTxn::PatientSummary,
            50..=57 => FreeHealthTxn::LookupPatient,
            58..=64 => FreeHealthTxn::ListPrescriptions,
            65..=70 => FreeHealthTxn::CheckDrugInteractions,
            71..=76 => FreeHealthTxn::CreatePrescription,
            77..=80 => FreeHealthTxn::AddEpisodeContent,
            81..=84 => FreeHealthTxn::ListMedicalHistory,
            85..=87 => FreeHealthTxn::PrescribeWithInteractionCheck,
            88..=89 => FreeHealthTxn::AddMedicalHistory,
            90..=91 => FreeHealthTxn::LookupDrug,
            92..=93 => FreeHealthTxn::LookupUser,
            94 => FreeHealthTxn::RenewPrescription,
            95 => FreeHealthTxn::UpdatePatientMetadata,
            96 => FreeHealthTxn::CreatePatient,
            97 => FreeHealthTxn::DeactivatePatient,
            98 => FreeHealthTxn::ReactivatePatient,
            99 => FreeHealthTxn::AddDrug,
            _ => FreeHealthTxn::CreateUser,
        }
    }
}

/// FreeHealth configuration.
#[derive(Debug, Clone, Copy)]
pub struct FreeHealthConfig {
    /// Number of users (doctors / nurses).
    pub users: u64,
    /// Number of patients pre-loaded.
    pub patients: u64,
    /// Number of drugs in the formulary.
    pub drugs: u64,
    /// Episodes pre-loaded per patient.
    pub episodes_per_patient: u64,
    /// Maximum episodes a list transaction scans.
    pub list_limit: u64,
}

impl FreeHealthConfig {
    /// Small configuration for unit tests.
    pub fn small() -> Self {
        FreeHealthConfig {
            users: 4,
            patients: 20,
            drugs: 16,
            episodes_per_patient: 2,
            list_limit: 3,
        }
    }

    /// Benchmark-scale configuration.
    pub fn benchmark() -> Self {
        FreeHealthConfig {
            users: 50,
            patients: 2000,
            drugs: 500,
            episodes_per_patient: 3,
            list_limit: 5,
        }
    }
}

/// The FreeHealth workload.
pub struct FreeHealthWorkload {
    config: FreeHealthConfig,
}

impl FreeHealthWorkload {
    /// Creates the workload.
    pub fn new(config: FreeHealthConfig) -> Self {
        FreeHealthWorkload { config }
    }

    /// The configuration.
    pub fn config(&self) -> &FreeHealthConfig {
        &self.config
    }

    fn user_key(user: u64) -> u64 {
        pack_key(TABLE_USER, user, 0, 0)
    }
    fn patient_key(patient: u64) -> u64 {
        pack_key(TABLE_PATIENT, patient, 0, 0)
    }
    fn counters_key(patient: u64) -> u64 {
        pack_key(TABLE_PATIENT_COUNTERS, patient, 0, 0)
    }
    fn episode_key(patient: u64, episode: u64) -> u64 {
        pack_key(TABLE_EPISODE, patient, episode % (1 << 16), 0)
    }
    fn episode_content_key(patient: u64, episode: u64, content: u64) -> u64 {
        pack_key(
            TABLE_EPISODE_CONTENT,
            patient,
            episode % (1 << 16),
            content % (1 << 16),
        )
    }
    fn prescription_key(patient: u64, prescription: u64) -> u64 {
        pack_key(TABLE_PRESCRIPTION, patient, prescription % (1 << 16), 0)
    }
    fn drug_key(drug: u64) -> u64 {
        pack_key(TABLE_DRUG, drug, 0, 0)
    }
    fn pmh_key(patient: u64, entry: u64) -> u64 {
        pack_key(TABLE_PMH, patient, entry % (1 << 16), 0)
    }
    fn sequence_key(name: u64) -> u64 {
        pack_key(TABLE_SEQUENCES, name, 0, 0)
    }

    fn pick_patient(&self, rng: &mut DetRng) -> u64 {
        rng.below(self.config.patients)
    }
    fn pick_user(&self, rng: &mut DetRng) -> u64 {
        rng.below(self.config.users)
    }
    fn pick_drug(&self, rng: &mut DetRng) -> u64 {
        rng.below(self.config.drugs)
    }

    fn map_result(result: Result<()>) -> Result<bool> {
        match result {
            Ok(()) => Ok(true),
            Err(err) if err.is_retryable() => Ok(false),
            Err(err) => Err(err),
        }
    }

    fn read_counters(txn: &mut dyn KvTransaction, patient: u64) -> Result<Row> {
        Ok(read_row(txn, Self::counters_key(patient))?.unwrap_or_else(|| Row::new(vec![0, 0, 0])))
    }

    /// Runs a specific transaction type (also used directly by tests).
    pub fn run_txn<D: KvDatabase>(
        &self,
        db: &D,
        kind: FreeHealthTxn,
        rng: &mut DetRng,
    ) -> Result<bool> {
        let patient = self.pick_patient(rng);
        let user = self.pick_user(rng);
        let drug = self.pick_drug(rng);
        let list_limit = self.config.list_limit;

        let result: Result<()> = match kind {
            FreeHealthTxn::CreateUser => db.execute(&mut |txn: &mut dyn KvTransaction| {
                let seq_key = Self::sequence_key(0);
                let next = read_row(txn, seq_key)?
                    .map(|r| r.num(0).unwrap_or(0))
                    .unwrap_or(self.config.users);
                write_row(txn, seq_key, &Row::new(vec![next + 1]))?;
                write_row(txn, Self::user_key(next), &Row::new(vec![1, next]))
            }),
            FreeHealthTxn::LookupUser => db.execute(&mut |txn: &mut dyn KvTransaction| {
                read_row(txn, Self::user_key(user))?;
                Ok(())
            }),
            FreeHealthTxn::CreatePatient => db.execute(&mut |txn: &mut dyn KvTransaction| {
                let seq_key = Self::sequence_key(1);
                let next = read_row(txn, seq_key)?
                    .map(|r| r.num(0).unwrap_or(0))
                    .unwrap_or(self.config.patients);
                write_row(txn, seq_key, &Row::new(vec![next + 1]))?;
                let mut row = Row::new(vec![0; 3]);
                row.set_num(patient_fields::CREATOR, user);
                row.set_num(patient_fields::IS_ACTIVE, 1);
                write_row(txn, Self::patient_key(next), &row)?;
                write_row(txn, Self::counters_key(next), &Row::new(vec![0, 0, 0]))
            }),
            FreeHealthTxn::LookupPatient => db.execute(&mut |txn: &mut dyn KvTransaction| {
                let key = Self::patient_key(patient);
                read_row(txn, key)?.ok_or(ObladiError::KeyNotFound(key))?;
                Ok(())
            }),
            FreeHealthTxn::UpdatePatientMetadata => {
                db.execute(&mut |txn: &mut dyn KvTransaction| {
                    let key = Self::patient_key(patient);
                    let mut row = read_row(txn, key)?.ok_or(ObladiError::KeyNotFound(key))?;
                    row.set_num(
                        patient_fields::METADATA,
                        row.num(patient_fields::METADATA)? + 1,
                    );
                    write_row(txn, key, &row)
                })
            }
            FreeHealthTxn::DeactivatePatient | FreeHealthTxn::ReactivatePatient => {
                let active = matches!(kind, FreeHealthTxn::ReactivatePatient) as u64;
                db.execute(&mut |txn: &mut dyn KvTransaction| {
                    let key = Self::patient_key(patient);
                    let mut row = read_row(txn, key)?.ok_or(ObladiError::KeyNotFound(key))?;
                    row.set_num(patient_fields::IS_ACTIVE, active);
                    write_row(txn, key, &row)
                })
            }
            FreeHealthTxn::CreateEpisode => db.execute(&mut |txn: &mut dyn KvTransaction| {
                // Episode creation is the contention point the paper calls
                // out: it reads the patient, bumps the per-patient episode
                // counter and inserts the episode plus its first content row.
                let patient_key = Self::patient_key(patient);
                read_row(txn, patient_key)?.ok_or(ObladiError::KeyNotFound(patient_key))?;
                let counters_key = Self::counters_key(patient);
                let mut counters = Self::read_counters(txn, patient)?;
                let episode = counters.num(counter_fields::EPISODES)?;
                counters.set_num(counter_fields::EPISODES, episode + 1);
                write_row(txn, counters_key, &counters)?;
                write_row(
                    txn,
                    Self::episode_key(patient, episode),
                    &Row::new(vec![patient, user, 1]),
                )?;
                write_row(
                    txn,
                    Self::episode_content_key(patient, episode, 0),
                    &Row::with_blob(vec![0], vec![0xE0; 48]),
                )
            }),
            FreeHealthTxn::AddEpisodeContent => db.execute(&mut |txn: &mut dyn KvTransaction| {
                let counters = Self::read_counters(txn, patient)?;
                let episodes = counters.num(counter_fields::EPISODES)?;
                if episodes == 0 {
                    return Ok(());
                }
                let episode = rng_free(episodes, patient);
                let episode_key = Self::episode_key(patient, episode);
                let mut episode_row = match read_row(txn, episode_key)? {
                    Some(row) => row,
                    None => return Ok(()),
                };
                let content_count = episode_row.num(2)?;
                episode_row.set_num(2, content_count + 1);
                write_row(txn, episode_key, &episode_row)?;
                write_row(
                    txn,
                    Self::episode_content_key(patient, episode, content_count),
                    &Row::with_blob(vec![content_count], vec![0xE1; 48]),
                )
            }),
            FreeHealthTxn::ListEpisodes => db.execute(&mut |txn: &mut dyn KvTransaction| {
                let counters = Self::read_counters(txn, patient)?;
                let episodes = counters.num(counter_fields::EPISODES)?;
                let first = episodes.saturating_sub(list_limit);
                for episode in first..episodes {
                    read_row(txn, Self::episode_key(patient, episode))?;
                }
                Ok(())
            }),
            FreeHealthTxn::ReadEpisodeContents => db.execute(&mut |txn: &mut dyn KvTransaction| {
                let counters = Self::read_counters(txn, patient)?;
                let episodes = counters.num(counter_fields::EPISODES)?;
                if episodes == 0 {
                    return Ok(());
                }
                let episode = rng_free(episodes, patient);
                if let Some(episode_row) = read_row(txn, Self::episode_key(patient, episode))? {
                    let contents = episode_row.num(2)?.min(list_limit);
                    for content in 0..contents {
                        read_row(txn, Self::episode_content_key(patient, episode, content))?;
                    }
                }
                Ok(())
            }),
            FreeHealthTxn::CreatePrescription | FreeHealthTxn::PrescribeWithInteractionCheck => {
                db.execute(&mut |txn: &mut dyn KvTransaction| {
                    let patient_key = Self::patient_key(patient);
                    read_row(txn, patient_key)?.ok_or(ObladiError::KeyNotFound(patient_key))?;
                    if matches!(kind, FreeHealthTxn::PrescribeWithInteractionCheck) {
                        // Check interactions against the patient's current
                        // prescriptions before adding a new one.
                        let counters = Self::read_counters(txn, patient)?;
                        let prescriptions = counters.num(counter_fields::PRESCRIPTIONS)?;
                        let first = prescriptions.saturating_sub(list_limit);
                        for p in first..prescriptions {
                            if let Some(row) = read_row(txn, Self::prescription_key(patient, p))? {
                                let existing_drug = row.num(0)?;
                                read_row(txn, Self::drug_key(existing_drug))?;
                            }
                        }
                    }
                    read_row(txn, Self::drug_key(drug))?
                        .ok_or(ObladiError::KeyNotFound(Self::drug_key(drug)))?;
                    let counters_key = Self::counters_key(patient);
                    let mut counters = Self::read_counters(txn, patient)?;
                    let prescription = counters.num(counter_fields::PRESCRIPTIONS)?;
                    counters.set_num(counter_fields::PRESCRIPTIONS, prescription + 1);
                    write_row(txn, counters_key, &counters)?;
                    write_row(
                        txn,
                        Self::prescription_key(patient, prescription),
                        &Row::new(vec![drug, user, 30]),
                    )
                })
            }
            FreeHealthTxn::RenewPrescription => db.execute(&mut |txn: &mut dyn KvTransaction| {
                let counters = Self::read_counters(txn, patient)?;
                let prescriptions = counters.num(counter_fields::PRESCRIPTIONS)?;
                if prescriptions == 0 {
                    return Ok(());
                }
                let key = Self::prescription_key(patient, prescriptions - 1);
                if let Some(mut row) = read_row(txn, key)? {
                    row.set_num(2, row.num(2)? + 30);
                    write_row(txn, key, &row)?;
                }
                Ok(())
            }),
            FreeHealthTxn::ListPrescriptions => db.execute(&mut |txn: &mut dyn KvTransaction| {
                let counters = Self::read_counters(txn, patient)?;
                let prescriptions = counters.num(counter_fields::PRESCRIPTIONS)?;
                let first = prescriptions.saturating_sub(list_limit);
                for p in first..prescriptions {
                    read_row(txn, Self::prescription_key(patient, p))?;
                }
                Ok(())
            }),
            FreeHealthTxn::CheckDrugInteractions => {
                db.execute(&mut |txn: &mut dyn KvTransaction| {
                    let a = Self::drug_key(drug);
                    let b = Self::drug_key((drug + 1) % self.config.drugs.max(1));
                    read_row(txn, a)?;
                    read_row(txn, b)?;
                    Ok(())
                })
            }
            FreeHealthTxn::AddDrug => db.execute(&mut |txn: &mut dyn KvTransaction| {
                let seq_key = Self::sequence_key(2);
                let next = read_row(txn, seq_key)?
                    .map(|r| r.num(0).unwrap_or(0))
                    .unwrap_or(self.config.drugs);
                write_row(txn, seq_key, &Row::new(vec![next + 1]))?;
                write_row(txn, Self::drug_key(next), &Row::new(vec![next, 0]))
            }),
            FreeHealthTxn::LookupDrug => db.execute(&mut |txn: &mut dyn KvTransaction| {
                read_row(txn, Self::drug_key(drug))?;
                Ok(())
            }),
            FreeHealthTxn::AddMedicalHistory => db.execute(&mut |txn: &mut dyn KvTransaction| {
                let counters_key = Self::counters_key(patient);
                let mut counters = Self::read_counters(txn, patient)?;
                let entry = counters.num(counter_fields::PMH)?;
                counters.set_num(counter_fields::PMH, entry + 1);
                write_row(txn, counters_key, &counters)?;
                write_row(
                    txn,
                    Self::pmh_key(patient, entry),
                    &Row::new(vec![entry % 7, user]),
                )
            }),
            FreeHealthTxn::ListMedicalHistory => db.execute(&mut |txn: &mut dyn KvTransaction| {
                let counters = Self::read_counters(txn, patient)?;
                let entries = counters.num(counter_fields::PMH)?;
                let first = entries.saturating_sub(list_limit);
                for entry in first..entries {
                    read_row(txn, Self::pmh_key(patient, entry))?;
                }
                Ok(())
            }),
            FreeHealthTxn::PatientSummary => db.execute(&mut |txn: &mut dyn KvTransaction| {
                // The doctor's landing page: patient record, latest episode,
                // latest prescription, latest history entry.
                let patient_key = Self::patient_key(patient);
                read_row(txn, patient_key)?.ok_or(ObladiError::KeyNotFound(patient_key))?;
                let counters = Self::read_counters(txn, patient)?;
                let episodes = counters.num(counter_fields::EPISODES)?;
                if episodes > 0 {
                    read_row(txn, Self::episode_key(patient, episodes - 1))?;
                }
                let prescriptions = counters.num(counter_fields::PRESCRIPTIONS)?;
                if prescriptions > 0 {
                    read_row(txn, Self::prescription_key(patient, prescriptions - 1))?;
                }
                let pmh = counters.num(counter_fields::PMH)?;
                if pmh > 0 {
                    read_row(txn, Self::pmh_key(patient, pmh - 1))?;
                }
                Ok(())
            }),
        };
        Self::map_result(result)
    }
}

/// Deterministic pseudo-random pick of an episode/prescription index without
/// threading the RNG into the transaction closure (keeps retries touching the
/// same rows).
fn rng_free(modulus: u64, salt: u64) -> u64 {
    if modulus == 0 {
        0
    } else {
        (salt.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 17) % modulus
    }
}

impl Workload for FreeHealthWorkload {
    fn setup<D: KvDatabase>(&self, db: &D) -> Result<()> {
        let cfg = &self.config;
        // Users.
        db.execute(&mut |txn: &mut dyn KvTransaction| {
            for user in 0..cfg.users {
                write_row(txn, Self::user_key(user), &Row::new(vec![1, user]))?;
            }
            Ok(())
        })?;
        // Drugs.
        let chunk = 16u64;
        let mut start = 0;
        while start < cfg.drugs {
            let end = (start + chunk).min(cfg.drugs);
            db.execute(&mut |txn: &mut dyn KvTransaction| {
                for drug in start..end {
                    write_row(txn, Self::drug_key(drug), &Row::new(vec![drug, drug % 5]))?;
                }
                Ok(())
            })?;
            start = end;
        }
        // Patients, counters and initial episodes.
        let mut patient = 0;
        while patient < cfg.patients {
            let end = (patient + 8).min(cfg.patients);
            db.execute(&mut |txn: &mut dyn KvTransaction| {
                for p in patient..end {
                    let mut row = Row::new(vec![0; 3]);
                    row.set_num(patient_fields::CREATOR, p % cfg.users.max(1));
                    row.set_num(patient_fields::IS_ACTIVE, 1);
                    write_row(txn, Self::patient_key(p), &row)?;
                    write_row(
                        txn,
                        Self::counters_key(p),
                        &Row::new(vec![cfg.episodes_per_patient, 0, 0]),
                    )?;
                    for episode in 0..cfg.episodes_per_patient {
                        write_row(
                            txn,
                            Self::episode_key(p, episode),
                            &Row::new(vec![p, p % cfg.users.max(1), 1]),
                        )?;
                        write_row(
                            txn,
                            Self::episode_content_key(p, episode, 0),
                            &Row::with_blob(vec![0], vec![0xE0; 48]),
                        )?;
                    }
                }
                Ok(())
            })?;
            patient = end;
        }
        Ok(())
    }

    fn run_one<D: KvDatabase>(&self, db: &D, rng: &mut DetRng) -> Result<bool> {
        let kind = FreeHealthTxn::sample(rng);
        self.run_txn(db, kind, rng)
    }

    fn name(&self) -> &'static str {
        "freehealth"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::run_fixed_count;
    use obladi_core::TwoPhaseLockingDb;

    fn setup() -> (TwoPhaseLockingDb, FreeHealthWorkload) {
        let db = TwoPhaseLockingDb::new();
        let workload = FreeHealthWorkload::new(FreeHealthConfig::small());
        workload.setup(&db).unwrap();
        (db, workload)
    }

    #[test]
    fn there_are_exactly_21_transaction_types() {
        assert_eq!(FreeHealthTxn::ALL.len(), 21);
        let unique: std::collections::HashSet<_> = FreeHealthTxn::ALL.iter().collect();
        assert_eq!(unique.len(), 21);
    }

    #[test]
    fn sampler_reaches_a_wide_range_of_types() {
        let mut rng = DetRng::new(1);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..5000 {
            seen.insert(FreeHealthTxn::sample(&mut rng));
        }
        assert!(seen.len() >= 18, "only {} types sampled", seen.len());
    }

    #[test]
    fn create_episode_increments_patient_counter() {
        let (db, workload) = setup();
        let mut rng = DetRng::new(2);
        for _ in 0..5 {
            assert!(workload
                .run_txn(&db, FreeHealthTxn::CreateEpisode, &mut rng)
                .unwrap());
        }
        // Total episode count across patients must have grown by 5.
        let mut total = 0u64;
        db.execute(&mut |txn: &mut dyn KvTransaction| {
            for p in 0..20u64 {
                let counters = FreeHealthWorkload::read_counters(txn, p)?;
                total += counters.num(counter_fields::EPISODES)?;
            }
            Ok(())
        })
        .unwrap();
        assert_eq!(total, 20 * 2 + 5);
    }

    #[test]
    fn prescriptions_can_be_created_listed_and_renewed() {
        let (db, workload) = setup();
        let mut rng = DetRng::new(3);
        for _ in 0..10 {
            workload
                .run_txn(&db, FreeHealthTxn::CreatePrescription, &mut rng)
                .unwrap();
        }
        assert!(workload
            .run_txn(&db, FreeHealthTxn::ListPrescriptions, &mut rng)
            .unwrap());
        assert!(workload
            .run_txn(&db, FreeHealthTxn::RenewPrescription, &mut rng)
            .unwrap());
        assert!(workload
            .run_txn(&db, FreeHealthTxn::PrescribeWithInteractionCheck, &mut rng)
            .unwrap());
    }

    #[test]
    fn patient_lifecycle_transactions_work() {
        let (db, workload) = setup();
        let mut rng = DetRng::new(4);
        for kind in [
            FreeHealthTxn::CreatePatient,
            FreeHealthTxn::LookupPatient,
            FreeHealthTxn::UpdatePatientMetadata,
            FreeHealthTxn::DeactivatePatient,
            FreeHealthTxn::ReactivatePatient,
            FreeHealthTxn::PatientSummary,
            FreeHealthTxn::AddMedicalHistory,
            FreeHealthTxn::ListMedicalHistory,
            FreeHealthTxn::CreateUser,
            FreeHealthTxn::LookupUser,
            FreeHealthTxn::AddDrug,
            FreeHealthTxn::LookupDrug,
            FreeHealthTxn::CheckDrugInteractions,
            FreeHealthTxn::AddEpisodeContent,
            FreeHealthTxn::ListEpisodes,
            FreeHealthTxn::ReadEpisodeContents,
        ] {
            assert!(
                workload.run_txn(&db, kind, &mut rng).unwrap(),
                "transaction {kind:?} must commit"
            );
        }
    }

    #[test]
    fn full_mix_commits_mostly() {
        let (db, workload) = setup();
        let stats = run_fixed_count(&db, &workload, 200, 5).unwrap();
        assert_eq!(stats.committed + stats.aborted, 200);
        assert!(
            stats.committed as f64 / 200.0 > 0.9,
            "commit rate too low: {}",
            stats.summary()
        );
    }
}
