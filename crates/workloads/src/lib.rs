//! Application workloads and the load driver for the Obladi evaluation.
//!
//! The paper evaluates Obladi on three applications plus YCSB
//! microbenchmarks (§11):
//!
//! * [`tpcc`] — TPC-C with 10 warehouses (the de-facto OLTP standard);
//! * [`smallbank`] — SmallBank with one million accounts;
//! * [`freehealth`] — the FreeHealth EHR schema of Figure 8 with its 21
//!   transaction types;
//! * [`ycsb`] — the YCSB generator used by the microbenchmarks of §11.2.
//!
//! All workloads are written against `obladi_core::KvDatabase`, so they run
//! unchanged on Obladi, NoPriv and the 2PL baseline.  [`driver`] provides
//! the closed-loop load generator and [`encoding`] the relational-to-KV row
//! mapping.

#![warn(missing_docs)]

pub mod driver;
pub mod encoding;
pub mod freehealth;
pub mod smallbank;
pub mod tpcc;
pub mod ycsb;

pub use driver::{run_closed_loop, run_deployment, run_fixed_count, Workload};
pub use encoding::{pack_key, Row};
pub use freehealth::{FreeHealthConfig, FreeHealthTxn, FreeHealthWorkload};
pub use smallbank::{SmallBankConfig, SmallBankTxn, SmallBankWorkload};
pub use tpcc::{TpccConfig, TpccTxn, TpccWorkload};
pub use ycsb::{YcsbConfig, YcsbWorkload};
