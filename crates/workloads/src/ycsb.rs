//! YCSB-style microbenchmark workload (§11: "Our microbenchmarks use the
//! YCSB workload generator").
//!
//! Each transaction performs a configurable number of point reads/updates on
//! keys drawn from a Zipfian (or uniform) distribution over a fixed key
//! population, matching the YCSB core workloads A–C depending on the
//! read/write mix.

use crate::driver::Workload;
use crate::encoding::{pack_key, read_row, write_row, Row};
use obladi_common::error::Result;
use obladi_common::rng::DetRng;
use obladi_common::zipf::Zipf;
use obladi_core::{KvDatabase, KvTransaction};

/// Table id used for YCSB rows.
const TABLE_YCSB: u8 = 1;

/// YCSB workload parameters.
#[derive(Debug, Clone, Copy)]
pub struct YcsbConfig {
    /// Number of keys in the table.
    pub num_keys: u64,
    /// Fraction of operations that are reads (the rest are updates).
    pub read_proportion: f64,
    /// Operations per transaction.
    pub ops_per_txn: usize,
    /// Zipfian skew (0.0 = uniform, 0.99 = standard YCSB skew).
    pub zipf_theta: f64,
    /// Size of each value in bytes.
    pub value_size: usize,
}

impl YcsbConfig {
    /// A small configuration suitable for unit tests.
    pub fn default_small() -> Self {
        YcsbConfig {
            num_keys: 200,
            read_proportion: 0.5,
            ops_per_txn: 3,
            zipf_theta: 0.99,
            value_size: 32,
        }
    }

    /// Read-heavy configuration (YCSB-B: 95% reads).
    pub fn read_heavy(num_keys: u64) -> Self {
        YcsbConfig {
            num_keys,
            read_proportion: 0.95,
            ops_per_txn: 4,
            zipf_theta: 0.99,
            value_size: 64,
        }
    }

    /// Update-heavy configuration (YCSB-A: 50% reads).
    pub fn update_heavy(num_keys: u64) -> Self {
        YcsbConfig {
            num_keys,
            read_proportion: 0.5,
            ops_per_txn: 4,
            zipf_theta: 0.99,
            value_size: 64,
        }
    }
}

/// The YCSB workload generator.
pub struct YcsbWorkload {
    config: YcsbConfig,
    zipf: Zipf,
}

impl YcsbWorkload {
    /// Creates a workload from its configuration.
    pub fn new(config: YcsbConfig) -> Self {
        YcsbWorkload {
            zipf: Zipf::new(config.num_keys.max(1), config.zipf_theta),
            config,
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &YcsbConfig {
        &self.config
    }

    fn key_for(&self, index: u64) -> u64 {
        pack_key(TABLE_YCSB, index, 0, 0)
    }

    fn value_row(&self, index: u64, version: u64) -> Row {
        Row::with_blob(
            vec![index, version],
            vec![(index % 251) as u8; self.config.value_size],
        )
    }
}

impl Workload for YcsbWorkload {
    fn setup<D: KvDatabase>(&self, db: &D) -> Result<()> {
        // Load keys in chunks so each load transaction stays small enough
        // for Obladi's write batches.
        let chunk = 32u64;
        let mut start = 0u64;
        while start < self.config.num_keys {
            let end = (start + chunk).min(self.config.num_keys);
            // Retries absorb the retryable epoch-boundary aborts a sharded,
            // pipelined deployment can hand a multi-shard load transaction.
            db.execute_with_retries(100, &mut |txn: &mut dyn KvTransaction| {
                for index in start..end {
                    write_row(txn, self.key_for(index), &self.value_row(index, 0))?;
                }
                Ok(())
            })?;
            start = end;
        }
        Ok(())
    }

    fn run_one<D: KvDatabase>(&self, db: &D, rng: &mut DetRng) -> Result<bool> {
        // Choose the operation mix and key set up front so aborted attempts
        // are comparable.
        let ops: Vec<(u64, bool)> = (0..self.config.ops_per_txn)
            .map(|_| {
                (
                    self.zipf.sample(rng),
                    rng.unit() < self.config.read_proportion,
                )
            })
            .collect();
        let result = db.execute(&mut |txn: &mut dyn KvTransaction| {
            for (index, is_read) in &ops {
                let key = self.key_for(*index);
                if *is_read {
                    read_row(txn, key)?;
                } else {
                    let current = read_row(txn, key)?;
                    let version = current.map(|r| r.num(1).unwrap_or(0)).unwrap_or(0);
                    write_row(txn, key, &self.value_row(*index, version + 1))?;
                }
            }
            Ok(())
        });
        match result {
            Ok(()) => Ok(true),
            Err(err) if err.is_retryable() => Ok(false),
            Err(err) => Err(err),
        }
    }

    fn name(&self) -> &'static str {
        "ycsb"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::run_fixed_count;
    use obladi_core::TwoPhaseLockingDb;

    #[test]
    fn setup_populates_all_keys() {
        let db = TwoPhaseLockingDb::new();
        let workload = YcsbWorkload::new(YcsbConfig {
            num_keys: 50,
            read_proportion: 1.0,
            ops_per_txn: 1,
            zipf_theta: 0.0,
            value_size: 8,
        });
        workload.setup(&db).unwrap();
        db.execute(&mut |txn: &mut dyn KvTransaction| {
            for index in 0..50u64 {
                let row = read_row(txn, pack_key(TABLE_YCSB, index, 0, 0))?;
                assert!(row.is_some(), "key {index} must exist");
            }
            Ok(())
        })
        .unwrap();
    }

    #[test]
    fn updates_bump_version_counters() {
        let db = TwoPhaseLockingDb::new();
        let workload = YcsbWorkload::new(YcsbConfig {
            num_keys: 10,
            read_proportion: 0.0,
            ops_per_txn: 2,
            zipf_theta: 0.0,
            value_size: 8,
        });
        workload.setup(&db).unwrap();
        let stats = run_fixed_count(&db, &workload, 30, 7).unwrap();
        assert!(stats.committed > 0);
        // At least one key must have a version greater than zero.
        let mut any_updated = false;
        db.execute(&mut |txn: &mut dyn KvTransaction| {
            for index in 0..10u64 {
                if let Some(row) = read_row(txn, pack_key(TABLE_YCSB, index, 0, 0))? {
                    if row.num(1)? > 0 {
                        any_updated = true;
                    }
                }
            }
            Ok(())
        })
        .unwrap();
        assert!(any_updated);
    }

    #[test]
    fn value_sizes_are_respected() {
        let workload = YcsbWorkload::new(YcsbConfig {
            num_keys: 5,
            read_proportion: 0.5,
            ops_per_txn: 1,
            zipf_theta: 0.0,
            value_size: 100,
        });
        assert_eq!(workload.value_row(1, 0).blob.len(), 100);
        assert_eq!(workload.name(), "ycsb");
    }
}
