//! The SmallBank benchmark (§11: one million accounts).
//!
//! SmallBank models a simple banking application.  Each customer has a
//! checking and a savings account; the six standard transaction types are
//! implemented, with the canonical mix used by OLTP-Bench:
//!
//! | Transaction      | Reads | Writes | Mix  |
//! |------------------|-------|--------|------|
//! | Balance          | 2     | 0      | 15 % |
//! | DepositChecking  | 1     | 1      | 15 % |
//! | TransactSavings  | 1     | 1      | 15 % |
//! | Amalgamate       | 2     | 2      | 15 % |
//! | WriteCheck       | 2     | 1      | 25 % |
//! | SendPayment      | 2     | 2      | 15 % |

use crate::driver::Workload;
use crate::encoding::{pack_key, read_row, write_row, Row};
use obladi_common::error::{ObladiError, Result};
use obladi_common::rng::DetRng;
use obladi_common::zipf::Zipf;
use obladi_core::{KvDatabase, KvTransaction};

const TABLE_CHECKING: u8 = 2;
const TABLE_SAVINGS: u8 = 3;

/// Initial balance loaded into every account.
pub const INITIAL_BALANCE: u64 = 10_000;

/// SmallBank configuration.
#[derive(Debug, Clone, Copy)]
pub struct SmallBankConfig {
    /// Number of customer accounts.
    pub num_accounts: u64,
    /// Fraction of accounts considered "hot" (accessed preferentially).
    pub hotspot_fraction: f64,
    /// Probability that a transaction targets the hot set.
    pub hotspot_probability: f64,
}

impl SmallBankConfig {
    /// Small configuration for tests.
    pub fn small() -> Self {
        SmallBankConfig {
            num_accounts: 100,
            hotspot_fraction: 0.1,
            hotspot_probability: 0.25,
        }
    }

    /// The paper's configuration: one million accounts.
    pub fn paper() -> Self {
        SmallBankConfig {
            num_accounts: 1_000_000,
            hotspot_fraction: 0.01,
            hotspot_probability: 0.25,
        }
    }
}

/// The six SmallBank transaction types.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SmallBankTxn {
    /// Read both balances of one customer.
    Balance,
    /// Add to a checking account.
    DepositChecking,
    /// Add to a savings account.
    TransactSavings,
    /// Move the entire savings balance of one customer into another's
    /// checking account.
    Amalgamate,
    /// Deduct a check from a checking account (allowing overdraft flagging).
    WriteCheck,
    /// Transfer between two customers' checking accounts.
    SendPayment,
}

impl SmallBankTxn {
    /// Picks a transaction type according to the standard mix.
    pub fn sample(rng: &mut DetRng) -> Self {
        match rng.below(100) {
            0..=14 => SmallBankTxn::Balance,
            15..=29 => SmallBankTxn::DepositChecking,
            30..=44 => SmallBankTxn::TransactSavings,
            45..=59 => SmallBankTxn::Amalgamate,
            60..=84 => SmallBankTxn::WriteCheck,
            _ => SmallBankTxn::SendPayment,
        }
    }
}

/// The SmallBank workload.
pub struct SmallBankWorkload {
    config: SmallBankConfig,
    account_dist: Zipf,
}

impl SmallBankWorkload {
    /// Creates the workload.
    pub fn new(config: SmallBankConfig) -> Self {
        SmallBankWorkload {
            account_dist: Zipf::uniform(config.num_accounts.max(1)),
            config,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &SmallBankConfig {
        &self.config
    }

    fn checking_key(account: u64) -> u64 {
        pack_key(TABLE_CHECKING, account, 0, 0)
    }

    fn savings_key(account: u64) -> u64 {
        pack_key(TABLE_SAVINGS, account, 0, 0)
    }

    fn pick_account(&self, rng: &mut DetRng) -> u64 {
        let hot_count =
            ((self.config.num_accounts as f64) * self.config.hotspot_fraction).max(1.0) as u64;
        if rng.unit() < self.config.hotspot_probability {
            rng.below(hot_count)
        } else {
            self.account_dist.sample(rng)
        }
    }

    fn pick_two_accounts(&self, rng: &mut DetRng) -> (u64, u64) {
        let a = self.pick_account(rng);
        let mut b = self.pick_account(rng);
        let mut guard = 0;
        while b == a && guard < 16 {
            b = self.pick_account(rng);
            guard += 1;
        }
        if b == a {
            b = (a + 1) % self.config.num_accounts.max(2);
        }
        (a, b)
    }

    fn read_balance(txn: &mut dyn KvTransaction, key: u64) -> Result<u64> {
        match read_row(txn, key)? {
            Some(row) => row.num(0),
            None => Err(ObladiError::KeyNotFound(key)),
        }
    }

    fn write_balance(txn: &mut dyn KvTransaction, key: u64, balance: u64) -> Result<()> {
        write_row(txn, key, &Row::new(vec![balance]))
    }

    /// Executes one specific transaction type (exposed for tests).
    pub fn run_txn<D: KvDatabase>(
        &self,
        db: &D,
        kind: SmallBankTxn,
        rng: &mut DetRng,
    ) -> Result<bool> {
        let result = match kind {
            SmallBankTxn::Balance => {
                let account = self.pick_account(rng);
                db.execute(&mut |txn: &mut dyn KvTransaction| {
                    let checking = Self::read_balance(txn, Self::checking_key(account))?;
                    let savings = Self::read_balance(txn, Self::savings_key(account))?;
                    Ok(checking + savings)
                })
                .map(|_| ())
            }
            SmallBankTxn::DepositChecking => {
                let account = self.pick_account(rng);
                let amount = 1 + rng.below(100);
                db.execute(&mut |txn: &mut dyn KvTransaction| {
                    let key = Self::checking_key(account);
                    let balance = Self::read_balance(txn, key)?;
                    Self::write_balance(txn, key, balance + amount)
                })
            }
            SmallBankTxn::TransactSavings => {
                let account = self.pick_account(rng);
                let amount = 1 + rng.below(100);
                db.execute(&mut |txn: &mut dyn KvTransaction| {
                    let key = Self::savings_key(account);
                    let balance = Self::read_balance(txn, key)?;
                    Self::write_balance(txn, key, balance + amount)
                })
            }
            SmallBankTxn::Amalgamate => {
                let (from, to) = self.pick_two_accounts(rng);
                db.execute(&mut |txn: &mut dyn KvTransaction| {
                    let savings_key = Self::savings_key(from);
                    let checking_key = Self::checking_key(to);
                    let savings = Self::read_balance(txn, savings_key)?;
                    let checking = Self::read_balance(txn, checking_key)?;
                    Self::write_balance(txn, savings_key, 0)?;
                    Self::write_balance(txn, checking_key, checking + savings)
                })
            }
            SmallBankTxn::WriteCheck => {
                let account = self.pick_account(rng);
                let amount = 1 + rng.below(200);
                db.execute(&mut |txn: &mut dyn KvTransaction| {
                    let checking_key = Self::checking_key(account);
                    let savings = Self::read_balance(txn, Self::savings_key(account))?;
                    let checking = Self::read_balance(txn, checking_key)?;
                    // Overdraft penalty of 1 if the check exceeds total funds.
                    let penalty = if amount > checking + savings { 1 } else { 0 };
                    Self::write_balance(
                        txn,
                        checking_key,
                        checking.saturating_sub(amount + penalty),
                    )
                })
            }
            SmallBankTxn::SendPayment => {
                let (from, to) = self.pick_two_accounts(rng);
                let amount = 1 + rng.below(50);
                db.execute(&mut |txn: &mut dyn KvTransaction| {
                    let from_key = Self::checking_key(from);
                    let to_key = Self::checking_key(to);
                    let from_balance = Self::read_balance(txn, from_key)?;
                    let to_balance = Self::read_balance(txn, to_key)?;
                    if from_balance < amount {
                        // Insufficient funds: the transaction still commits,
                        // having only read.
                        return Ok(());
                    }
                    Self::write_balance(txn, from_key, from_balance - amount)?;
                    Self::write_balance(txn, to_key, to_balance + amount)
                })
            }
        };
        match result {
            Ok(()) => Ok(true),
            Err(err) if err.is_retryable() => Ok(false),
            Err(err) => Err(err),
        }
    }

    /// Sum of all balances (conservation check used by tests).
    ///
    /// Reads are issued in small chunks (one transaction each) so the scan
    /// also works on Obladi, where a transaction's sequential reads are
    /// bounded by the number of read batches per epoch.
    pub fn total_balance<D: KvDatabase>(&self, db: &D) -> Result<u64> {
        let mut total = 0u64;
        let accounts = self.config.num_accounts;
        let chunk = 8u64;
        let mut start = 0;
        while start < accounts {
            let end = (start + chunk).min(accounts);
            let partial = db.execute(&mut |txn: &mut dyn KvTransaction| {
                let mut sum = 0u64;
                for account in start..end {
                    sum += Self::read_balance(txn, Self::checking_key(account))?;
                    sum += Self::read_balance(txn, Self::savings_key(account))?;
                }
                Ok(sum)
            })?;
            total += partial;
            start = end;
        }
        Ok(total)
    }
}

impl Workload for SmallBankWorkload {
    fn setup<D: KvDatabase>(&self, db: &D) -> Result<()> {
        let chunk = 16u64;
        let mut start = 0u64;
        while start < self.config.num_accounts {
            let end = (start + chunk).min(self.config.num_accounts);
            db.execute(&mut |txn: &mut dyn KvTransaction| {
                for account in start..end {
                    Self::write_balance(txn, Self::checking_key(account), INITIAL_BALANCE)?;
                    Self::write_balance(txn, Self::savings_key(account), INITIAL_BALANCE)?;
                }
                Ok(())
            })?;
            start = end;
        }
        Ok(())
    }

    fn run_one<D: KvDatabase>(&self, db: &D, rng: &mut DetRng) -> Result<bool> {
        let kind = SmallBankTxn::sample(rng);
        self.run_txn(db, kind, rng)
    }

    fn name(&self) -> &'static str {
        "smallbank"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::run_fixed_count;
    use obladi_core::TwoPhaseLockingDb;

    fn setup_small() -> (TwoPhaseLockingDb, SmallBankWorkload) {
        let db = TwoPhaseLockingDb::new();
        let workload = SmallBankWorkload::new(SmallBankConfig::small());
        workload.setup(&db).unwrap();
        (db, workload)
    }

    #[test]
    fn setup_gives_every_account_initial_balances() {
        let (db, workload) = setup_small();
        let total = workload.total_balance(&db).unwrap();
        assert_eq!(total, 100 * 2 * INITIAL_BALANCE);
    }

    #[test]
    fn send_payment_conserves_money() {
        let (db, workload) = setup_small();
        let before = workload.total_balance(&db).unwrap();
        let mut rng = DetRng::new(4);
        for _ in 0..50 {
            workload
                .run_txn(&db, SmallBankTxn::SendPayment, &mut rng)
                .unwrap();
        }
        let after = workload.total_balance(&db).unwrap();
        assert_eq!(before, after, "payments only move money around");
    }

    #[test]
    fn amalgamate_empties_savings() {
        let (db, workload) = setup_small();
        let mut rng = DetRng::new(5);
        workload
            .run_txn(&db, SmallBankTxn::Amalgamate, &mut rng)
            .unwrap();
        // At least one savings account is now zero.
        let mut any_zero = false;
        db.execute(&mut |txn: &mut dyn KvTransaction| {
            for account in 0..100u64 {
                let savings =
                    SmallBankWorkload::read_balance(txn, SmallBankWorkload::savings_key(account))?;
                if savings == 0 {
                    any_zero = true;
                }
            }
            Ok(())
        })
        .unwrap();
        assert!(any_zero);
    }

    #[test]
    fn deposits_increase_total() {
        let (db, workload) = setup_small();
        let before = workload.total_balance(&db).unwrap();
        let mut rng = DetRng::new(6);
        for _ in 0..20 {
            workload
                .run_txn(&db, SmallBankTxn::DepositChecking, &mut rng)
                .unwrap();
        }
        assert!(workload.total_balance(&db).unwrap() > before);
    }

    #[test]
    fn mixed_workload_runs_cleanly() {
        let (db, workload) = setup_small();
        let stats = run_fixed_count(&db, &workload, 100, 9).unwrap();
        assert_eq!(stats.committed + stats.aborted, 100);
        assert!(stats.committed > 80, "most transactions should commit");
    }

    #[test]
    fn transaction_mix_covers_all_types() {
        let mut rng = DetRng::new(7);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..500 {
            seen.insert(format!("{:?}", SmallBankTxn::sample(&mut rng)));
        }
        assert_eq!(seen.len(), 6, "all six transaction types must appear");
    }
}
