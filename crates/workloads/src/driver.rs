//! Closed-loop load driver and the [`Workload`] abstraction.
//!
//! The evaluation (§11) runs each application with a pool of closed-loop
//! clients for a fixed duration and reports committed-transaction throughput
//! and latency.  [`run_closed_loop`] reproduces that methodology: `clients`
//! threads repeatedly pick a transaction from the workload mix, execute it
//! against any [`KvDatabase`] engine, and record per-transaction latency and
//! commit/abort counts.

use obladi_common::error::Result;
use obladi_common::rng::DetRng;
use obladi_common::stats::{LatencyRecorder, RunStats};
use obladi_core::{FrontDoor, KvDatabase};
use std::time::{Duration, Instant};

/// A transactional workload (TPC-C, SmallBank, FreeHealth, YCSB).
pub trait Workload: Send + Sync {
    /// Loads the initial database state.
    fn setup<D: KvDatabase>(&self, db: &D) -> Result<()>;

    /// Executes one transaction chosen from the workload mix.
    ///
    /// Returns `Ok(true)` if the transaction committed, `Ok(false)` if it
    /// aborted for a retryable reason (counted as an abort, not an error).
    fn run_one<D: KvDatabase>(&self, db: &D, rng: &mut DetRng) -> Result<bool>;

    /// Workload name for reporting.
    fn name(&self) -> &'static str;
}

/// Runs `workload` against `db` with `clients` closed-loop threads for
/// `duration`, returning aggregate statistics.
pub fn run_closed_loop<D, W>(
    db: &D,
    workload: &W,
    clients: usize,
    duration: Duration,
    seed: u64,
) -> RunStats
where
    D: KvDatabase,
    W: Workload,
{
    let clients = clients.max(1);
    let deadline = Instant::now() + duration;
    let start = Instant::now();

    let mut per_thread: Vec<RunStats> = std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(clients);
        for client in 0..clients {
            let mut rng = DetRng::new(seed ^ (client as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
            handles.push(scope.spawn(move || {
                let mut committed = 0u64;
                let mut aborted = 0u64;
                let mut latency = LatencyRecorder::new();
                while Instant::now() < deadline {
                    let txn_start = Instant::now();
                    match workload.run_one(db, &mut rng) {
                        Ok(true) => {
                            committed += 1;
                            latency.record(txn_start.elapsed());
                        }
                        Ok(false) => aborted += 1,
                        Err(err) if err.is_retryable() => aborted += 1,
                        Err(_) => aborted += 1,
                    }
                }
                RunStats::new(committed, aborted, Duration::ZERO, latency)
            }));
        }
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    let elapsed = start.elapsed();
    let mut total = RunStats::new(0, 0, elapsed, LatencyRecorder::new());
    for stats in per_thread.drain(..) {
        total.committed += stats.committed;
        total.aborted += stats.aborted;
        total.latency.merge(&stats.latency);
    }
    total
}

/// Sets up `workload` on a deployment and drives it closed-loop, returning
/// the deployment's label together with the run statistics.
///
/// This is the entry point benchmarks use to compare *deployment shapes* —
/// a single proxy vs. a sharded front door with varying shard counts — with
/// identical load logic: anything implementing
/// [`FrontDoor`](obladi_core::FrontDoor) slots in.
pub fn run_deployment<D, W>(
    db: &D,
    workload: &W,
    clients: usize,
    duration: Duration,
    seed: u64,
) -> Result<(String, RunStats)>
where
    D: FrontDoor,
    W: Workload,
{
    workload.setup(db)?;
    let stats = run_closed_loop(db, workload, clients, duration, seed);
    Ok((db.deployment(), stats))
}

/// Runs exactly `count` transactions on a single thread (used by tests that
/// need determinism rather than wall-clock-driven load).
pub fn run_fixed_count<D, W>(db: &D, workload: &W, count: usize, seed: u64) -> Result<RunStats>
where
    D: KvDatabase,
    W: Workload,
{
    let mut rng = DetRng::new(seed);
    let mut committed = 0u64;
    let mut aborted = 0u64;
    let mut latency = LatencyRecorder::new();
    let start = Instant::now();
    for _ in 0..count {
        let txn_start = Instant::now();
        match workload.run_one(db, &mut rng) {
            Ok(true) => {
                committed += 1;
                latency.record(txn_start.elapsed());
            }
            Ok(false) => aborted += 1,
            Err(err) if err.is_retryable() => aborted += 1,
            Err(err) => return Err(err),
        }
    }
    Ok(RunStats::new(committed, aborted, start.elapsed(), latency))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ycsb::{YcsbConfig, YcsbWorkload};
    use obladi_core::TwoPhaseLockingDb;

    #[test]
    fn closed_loop_driver_produces_throughput() {
        let db = TwoPhaseLockingDb::new();
        let workload = YcsbWorkload::new(YcsbConfig {
            num_keys: 100,
            read_proportion: 0.5,
            ops_per_txn: 2,
            zipf_theta: 0.0,
            value_size: 16,
        });
        workload.setup(&db).unwrap();
        let stats = run_closed_loop(&db, &workload, 2, Duration::from_millis(100), 1);
        assert!(stats.committed > 0);
        assert!(stats.throughput() > 0.0);
    }

    #[test]
    fn fixed_count_driver_runs_exact_number() {
        let db = TwoPhaseLockingDb::new();
        let workload = YcsbWorkload::new(YcsbConfig::default_small());
        workload.setup(&db).unwrap();
        let stats = run_fixed_count(&db, &workload, 50, 3).unwrap();
        assert_eq!(stats.committed + stats.aborted, 50);
    }
}
