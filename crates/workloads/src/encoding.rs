//! Mapping relational rows onto the key-value interface.
//!
//! Obladi exposes a flat 64-bit key space; the application benchmarks
//! (TPC-C, SmallBank, FreeHealth) are relational.  Each table gets a small
//! numeric identifier packed into the top byte of the key, and the primary
//! key columns are packed into the remaining bits.  Secondary indexes (e.g.
//! TPC-C's customer-by-last-name, as described in §11) are ordinary tables
//! whose rows hold lists of primary keys.
//!
//! Row payloads are encoded with a tiny self-describing codec: a sequence of
//! `u64` fields followed by one optional byte-string field.  This keeps rows
//! compact (they must fit into an ORAM block) while still letting each
//! workload store what its transactions actually touch.

use obladi_common::error::{ObladiError, Result};
use obladi_common::types::Key;

/// Packs a table id and up to three numeric key parts into a 64-bit key.
///
/// Layout: `table (8 bits) | a (24 bits) | b (16 bits) | c (16 bits)`.
///
/// # Panics
///
/// Panics (in debug builds) if a component exceeds its bit budget; the
/// workloads use ranges well inside these limits.
pub fn pack_key(table: u8, a: u64, b: u64, c: u64) -> Key {
    debug_assert!(a < (1 << 24), "key component a={a} out of range");
    debug_assert!(b < (1 << 16), "key component b={b} out of range");
    debug_assert!(c < (1 << 16), "key component c={c} out of range");
    ((table as u64) << 56) | ((a & 0xFF_FFFF) << 32) | ((b & 0xFFFF) << 16) | (c & 0xFFFF)
}

/// Extracts the table id from a packed key.
pub fn table_of(key: Key) -> u8 {
    (key >> 56) as u8
}

/// A compact row: a list of numeric fields plus an optional blob.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Row {
    /// Numeric fields, in schema order.
    pub nums: Vec<u64>,
    /// Optional trailing byte payload (e.g. serialized id lists).
    pub blob: Vec<u8>,
}

impl Row {
    /// Creates a row from numeric fields only.
    pub fn new(nums: Vec<u64>) -> Self {
        Row {
            nums,
            blob: Vec::new(),
        }
    }

    /// Creates a row with numeric fields and a blob.
    pub fn with_blob(nums: Vec<u64>, blob: Vec<u8>) -> Self {
        Row { nums, blob }
    }

    /// Returns numeric field `idx`, or an error if the row is too short.
    pub fn num(&self, idx: usize) -> Result<u64> {
        self.nums.get(idx).copied().ok_or_else(|| {
            ObladiError::Codec(format!(
                "row has {} numeric fields, wanted index {idx}",
                self.nums.len()
            ))
        })
    }

    /// Sets numeric field `idx`, growing the row if needed.
    pub fn set_num(&mut self, idx: usize, value: u64) {
        if self.nums.len() <= idx {
            self.nums.resize(idx + 1, 0);
        }
        self.nums[idx] = value;
    }

    /// Interprets the blob as a list of u64 identifiers.
    pub fn blob_as_ids(&self) -> Vec<u64> {
        self.blob
            .chunks_exact(8)
            .map(|c| u64::from_le_bytes([c[0], c[1], c[2], c[3], c[4], c[5], c[6], c[7]]))
            .collect()
    }

    /// Replaces the blob with a list of u64 identifiers.
    pub fn set_blob_ids(&mut self, ids: &[u64]) {
        self.blob.clear();
        for id in ids {
            self.blob.extend_from_slice(&id.to_le_bytes());
        }
    }

    /// Appends an identifier to the blob list, keeping at most `cap` entries
    /// (oldest dropped first).
    pub fn push_blob_id(&mut self, id: u64, cap: usize) {
        let mut ids = self.blob_as_ids();
        ids.push(id);
        if ids.len() > cap {
            let excess = ids.len() - cap;
            ids.drain(..excess);
        }
        self.set_blob_ids(&ids);
    }

    /// Serialises the row.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(2 + self.nums.len() * 8 + 2 + self.blob.len());
        out.extend_from_slice(&(self.nums.len() as u16).to_le_bytes());
        for n in &self.nums {
            out.extend_from_slice(&n.to_le_bytes());
        }
        out.extend_from_slice(&(self.blob.len() as u16).to_le_bytes());
        out.extend_from_slice(&self.blob);
        out
    }

    /// Deserialises a row.
    pub fn decode(bytes: &[u8]) -> Result<Row> {
        if bytes.len() < 2 {
            return Err(ObladiError::Codec("row too short".into()));
        }
        let count = u16::from_le_bytes([bytes[0], bytes[1]]) as usize;
        let mut offset = 2;
        let mut nums = Vec::with_capacity(count);
        for _ in 0..count {
            if offset + 8 > bytes.len() {
                return Err(ObladiError::Codec("row numeric field truncated".into()));
            }
            let mut field = [0u8; 8];
            field.copy_from_slice(&bytes[offset..offset + 8]);
            nums.push(u64::from_le_bytes(field));
            offset += 8;
        }
        if offset + 2 > bytes.len() {
            return Err(ObladiError::Codec("row blob length truncated".into()));
        }
        let blob_len = u16::from_le_bytes([bytes[offset], bytes[offset + 1]]) as usize;
        offset += 2;
        if offset + blob_len > bytes.len() {
            return Err(ObladiError::Codec("row blob truncated".into()));
        }
        let blob = bytes[offset..offset + blob_len].to_vec();
        Ok(Row { nums, blob })
    }
}

/// Reads and decodes a row through a transaction.
pub fn read_row(txn: &mut dyn obladi_core::KvTransaction, key: Key) -> Result<Option<Row>> {
    match txn.read(key)? {
        Some(bytes) => Ok(Some(Row::decode(&bytes)?)),
        None => Ok(None),
    }
}

/// Encodes and writes a row through a transaction.
pub fn write_row(txn: &mut dyn obladi_core::KvTransaction, key: Key, row: &Row) -> Result<()> {
    txn.write(key, row.encode())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pack_key_separates_tables_and_components() {
        let a = pack_key(1, 10, 20, 30);
        let b = pack_key(2, 10, 20, 30);
        let c = pack_key(1, 11, 20, 30);
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_eq!(table_of(a), 1);
        assert_eq!(table_of(b), 2);
    }

    #[test]
    fn pack_key_is_injective_over_small_ranges() {
        use std::collections::HashSet;
        let mut seen = HashSet::new();
        for a in 0..20u64 {
            for b in 0..20u64 {
                for c in 0..20u64 {
                    assert!(seen.insert(pack_key(3, a, b, c)));
                }
            }
        }
    }

    #[test]
    fn row_roundtrip() {
        let row = Row::with_blob(vec![1, 2, 3, u64::MAX], b"payload".to_vec());
        let decoded = Row::decode(&row.encode()).unwrap();
        assert_eq!(decoded, row);
        assert_eq!(decoded.num(3).unwrap(), u64::MAX);
        assert!(decoded.num(4).is_err());
    }

    #[test]
    fn row_set_num_grows() {
        let mut row = Row::new(vec![1]);
        row.set_num(3, 9);
        assert_eq!(row.nums, vec![1, 0, 0, 9]);
    }

    #[test]
    fn blob_id_list_roundtrip_and_cap() {
        let mut row = Row::default();
        row.set_blob_ids(&[1, 2, 3]);
        assert_eq!(row.blob_as_ids(), vec![1, 2, 3]);
        for id in 4..10 {
            row.push_blob_id(id, 5);
        }
        assert_eq!(row.blob_as_ids(), vec![5, 6, 7, 8, 9]);
    }

    #[test]
    fn decode_rejects_truncation() {
        let row = Row::with_blob(vec![7; 4], vec![1; 16]);
        let bytes = row.encode();
        for cut in [1usize, 5, bytes.len() - 1] {
            assert!(Row::decode(&bytes[..cut]).is_err());
        }
    }
}
