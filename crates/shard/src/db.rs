//! The sharded front door: [`ShardedDb`] and [`ShardedTxn`].
//!
//! `ShardedDb` runs `N` fully independent Obladi pipelines — each with its
//! own storage backend, Ring ORAM tree, MVTSO unit, epoch driver and
//! recovery unit — and presents the same `begin` / `read` / `write` /
//! `commit` surface as a single [`ObladiDb`].  Three shared pieces make the
//! ensemble behave like one serializable database:
//!
//! * the [`ShardRouter`](crate::ShardRouter) assigns every key to one shard
//!   by keyed hash, so any key's reads and writes always meet the same MVTSO
//!   unit;
//! * the [`TimestampOracle`](crate::TimestampOracle) stamps every
//!   transaction once, globally, so all shards serialize in the same order;
//! * the [`EpochCoordinator`](crate::EpochCoordinator) ends all shards'
//!   epochs at one rendezvous and vetoes any cross-shard transaction that is
//!   not unanimously ready, so delayed visibility stays atomic across
//!   shards.
//!
//! Transactions open their per-shard legs lazily on first access, which
//! keeps single-shard transactions (the overwhelming majority under a
//! uniform router) exactly as cheap as on an unsharded proxy.

use crate::coordinator::{EpochCoordinator, ShardGate, TxnDecision};
use crate::oracle::TimestampOracle;
use crate::router::ShardRouter;
use obladi_common::config::{ShardConfig, StorageBackend};
use obladi_common::error::{ObladiError, Result};
use obladi_common::types::{AbortReason, Key, TxnId, TxnOutcome, Value};
use obladi_core::durability::RecoveryReport;
use obladi_core::proxy::{ObladiDb, ObladiTxn, ProxyStats};
use obladi_core::{KvDatabase, KvTransaction};
use obladi_crypto::KeyMaterial;
use obladi_storage::{build_backend, TrustedCounter, UntrustedStore};
use obladi_transport::{RemoteStore, SocketSpec, StorageSupervisor};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Aggregate statistics of a sharded deployment.
#[derive(Debug, Clone, Default)]
pub struct ShardedStats {
    /// Per-shard proxy statistics, indexed by shard.
    pub shards: Vec<ProxyStats>,
    /// Completed global epochs (coordinator rounds).
    pub global_epochs: u64,
    /// Transactions that committed through the front door.
    pub committed: u64,
    /// Transactions that aborted through the front door.
    pub aborted: u64,
    /// Committed transactions that spanned two or more shards.
    pub cross_shard_committed: u64,
}

impl ShardedStats {
    /// Sum of committed transactions reported by the shards themselves
    /// (includes per-shard legs, so a 2-shard commit counts twice here).
    pub fn shard_committed_total(&self) -> u64 {
        self.shards.iter().map(|s| s.committed).sum()
    }
}

/// How long remote-storage connects wait for a daemon to become ready.
const CONNECT_TIMEOUT: Duration = Duration::from_secs(10);

/// A sharded Obladi deployment behind a single transactional front door.
pub struct ShardedDb {
    shards: Vec<ObladiDb>,
    router: ShardRouter,
    oracle: TimestampOracle,
    coordinator: Arc<EpochCoordinator>,
    config: ShardConfig,
    committed: AtomicU64,
    aborted: AtomicU64,
    cross_shard_committed: AtomicU64,
    /// Owns the `obladi-stored` daemon processes when the deployment was
    /// opened with [`StorageBackend::RemoteSpawned`].
    supervisor: Option<StorageSupervisor>,
    /// Per-shard store handles, retained for operational scrapes
    /// ([`ShardedDb::publish_daemon_metrics`]) after the pipelines have
    /// consumed them.
    stores: Vec<Arc<dyn UntrustedStore>>,
}

impl ShardedDb {
    /// Opens `config.shards` independent proxies behind one front door,
    /// placing each shard's storage as `config.storage` directs:
    ///
    /// * [`StorageBackend::InProcess`] — trait-object stores in this
    ///   process (the seed deployment shape);
    /// * [`StorageBackend::RemoteSpawned`] — one `obladi-stored` daemon
    ///   process per shard, spawned and supervised by the deployment, each
    ///   shard's ORAM pipeline talking framed RPC over its own socket;
    /// * [`StorageBackend::RemoteAddr`] — daemons already running at the
    ///   given addresses (one per shard), connected to but not supervised.
    pub fn open(config: ShardConfig) -> Result<ShardedDb> {
        config.validate()?;
        match config.storage.clone() {
            StorageBackend::InProcess => {
                let stores = (0..config.shards)
                    .map(|index| {
                        let shard_config = config.shard_config(index);
                        build_backend(
                            shard_config.backend,
                            shard_config.latency_scale,
                            shard_config.seed,
                        )
                    })
                    .collect();
                ShardedDb::open_with_stores(config, stores)
            }
            StorageBackend::RemoteSpawned => {
                let supervisor = StorageSupervisor::spawn(config.shards)?;
                let stores = (0..config.shards)
                    .map(|index| {
                        RemoteStore::connect(supervisor.addr(index), CONNECT_TIMEOUT)
                            .map(|store| Arc::new(store) as Arc<dyn UntrustedStore>)
                    })
                    .collect::<Result<Vec<_>>>()?;
                let mut db = ShardedDb::open_with_stores(config, stores)?;
                db.supervisor = Some(supervisor);
                Ok(db)
            }
            StorageBackend::RemoteAddr(addrs) => {
                let stores = addrs
                    .iter()
                    .map(|addr| {
                        let spec = SocketSpec::parse(addr)?;
                        RemoteStore::connect(spec, CONNECT_TIMEOUT)
                            .map(|store| Arc::new(store) as Arc<dyn UntrustedStore>)
                    })
                    .collect::<Result<Vec<_>>>()?;
                ShardedDb::open_with_stores(config, stores)
            }
        }
    }

    /// Opens the deployment over caller-supplied per-shard storage backends.
    ///
    /// Fault-injection harnesses use this to wrap individual shards in
    /// `FaultyStore` so crashes can be triggered at precise points of the
    /// cross-shard commit protocol.
    pub fn open_with_stores(
        config: ShardConfig,
        stores: Vec<Arc<dyn UntrustedStore>>,
    ) -> Result<ShardedDb> {
        config.validate()?;
        if stores.len() != config.shards {
            return Err(ObladiError::Config(format!(
                "{} stores supplied for {} shards",
                stores.len(),
                config.shards
            )));
        }
        let keys = KeyMaterial::for_tests(config.shard.seed);
        let router = ShardRouter::new(&keys, config.shards);
        let coordinator =
            Arc::new(EpochCoordinator::new(config.shards).with_watchdog(config.barrier_watchdog));
        let mut shards = Vec::with_capacity(config.shards);
        for (index, store) in stores.iter().enumerate() {
            let shard_config = config.shard_config(index);
            let shard_keys = KeyMaterial::for_tests(shard_config.seed);
            let db = ObladiDb::open_with(
                shard_config,
                store.clone(),
                TrustedCounter::new(),
                shard_keys,
            )?;
            db.set_epoch_gate(Arc::new(ShardGate::new(coordinator.clone(), index)));
            shards.push(db);
        }
        Ok(ShardedDb {
            shards,
            router,
            oracle: TimestampOracle::new(),
            coordinator,
            config,
            committed: AtomicU64::new(0),
            aborted: AtomicU64::new(0),
            cross_shard_committed: AtomicU64::new(0),
            supervisor: None,
            stores,
        })
    }

    /// The deployment configuration.
    pub fn config(&self) -> &ShardConfig {
        &self.config
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.shards.len()
    }

    /// Direct access to one shard's proxy (tests, benches, operations).
    pub fn shard(&self, index: usize) -> &ObladiDb {
        &self.shards[index]
    }

    /// The router used for key placement.
    pub fn router(&self) -> &ShardRouter {
        &self.router
    }

    /// Completed global epochs.
    pub fn global_epoch(&self) -> u64 {
        self.coordinator.global_epoch()
    }

    /// 2PC commit decisions still awaiting participant acknowledgements
    /// (a healthy deployment trends to zero; a nonzero steady state means
    /// some shard never made a voted transaction durable).
    pub fn pending_decisions(&self) -> usize {
        self.coordinator.pending_decisions()
    }

    /// Pulls each storage daemon's own telemetry over the RPC transport
    /// and publishes it into this process's registry, namespaced
    /// `daemon.{shard}.{metric}`, so `--metrics-out` dumps stop silently
    /// omitting the daemon side on remote profiles.  Histograms arrive as
    /// wire summaries and land as `.count` / `.sum` / `.max` gauges.
    /// In-process stores contribute nothing (their metrics already live
    /// here); unreachable daemons are skipped.
    pub fn publish_daemon_metrics(&self) {
        let registry = obladi_obs::global();
        for (index, store) in self.stores.iter().enumerate() {
            let Some(metrics) = store.daemon_metrics() else {
                continue;
            };
            let local = |name: &str| {
                let rest = name.strip_prefix("daemon.").unwrap_or(name);
                format!("daemon.{index}.{rest}")
            };
            for (name, total) in &metrics.counters {
                registry.gauge(&local(name)).set(*total as i64);
            }
            for (name, level) in &metrics.gauges {
                registry.gauge(&local(name)).set(*level);
            }
            for (name, histogram) in &metrics.histograms {
                let base = local(name);
                registry
                    .gauge(&format!("{base}.count"))
                    .set(histogram.count as i64);
                registry
                    .gauge(&format!("{base}.sum"))
                    .set(histogram.sum as i64);
                registry
                    .gauge(&format!("{base}.max"))
                    .set(histogram.max as i64);
            }
        }
    }

    /// Aggregated statistics snapshot.
    pub fn stats(&self) -> ShardedStats {
        ShardedStats {
            shards: self.shards.iter().map(|s| s.stats()).collect(),
            global_epochs: self.coordinator.global_epoch(),
            committed: self.committed.load(Ordering::SeqCst),
            aborted: self.aborted.load(Ordering::SeqCst),
            cross_shard_committed: self.cross_shard_committed.load(Ordering::SeqCst),
        }
    }

    /// Begins a transaction stamped by the global timestamp oracle.  Shard
    /// legs open lazily on first access to a key the shard owns.
    ///
    /// Beginning never blocks on an epoch rollover or the coordinator: the
    /// transaction samples each shard's current epoch *generation* (before
    /// drawing its timestamp — the order matters, see
    /// [`ShardedDb::stamp`]), and each leg later verifies at open, inside
    /// the shard's own state lock, that the shard is still in that epoch.
    pub fn begin(&self) -> Result<ShardedTxn<'_>> {
        let (id, targets) = self.stamp();
        Ok(ShardedTxn {
            db: self,
            targets,
            primary: LegPlan::new(id, self.shards.len()),
            oplog: Vec::new(),
            rebuilds: 0,
            finished: false,
        })
    }

    /// Samples each shard's target epochs (executing generation plus the
    /// open deciding generation, if any — see
    /// [`obladi_core::ObladiDb::stamp_targets`]), *then* draws a global
    /// timestamp.  In that order a shard epoch rollover between the steps
    /// only makes the sampled generations stale (the leg open detects it
    /// and the transaction retries); the reverse order could smuggle a
    /// timestamp drawn before a rollover into the epoch after it, where it
    /// may be smaller than timestamps already folded into the epoch's base
    /// versions.
    fn stamp(&self) -> (TxnId, Vec<(u64, Option<u64>)>) {
        let targets = self
            .shards
            .iter()
            .map(|shard| shard.stamp_targets())
            .collect();
        (self.oracle.next_ts(), targets)
    }

    /// Crashes one shard: its volatile state is dropped, its in-flight
    /// transactions abort, and the coordinator excludes it from epoch
    /// rendezvous until [`ShardedDb::recover_shard`] brings it back.  The
    /// remaining shards keep serving transactions that do not touch it.
    pub fn crash_shard(&self, index: usize) {
        // Exclude the shard's votes *before* wiping it so a rendezvous
        // completing concurrently can neither count them nor block on it.
        self.coordinator.set_live(index, false);
        self.shards[index].crash();
    }

    /// Recovers a crashed shard from its recovery unit (§8) and re-admits it
    /// to the epoch rendezvous.
    ///
    /// In-doubt 2PC prepares found in the shard's WAL — transactions it
    /// voted to commit whose epoch never became durable — are resolved
    /// through the coordinator's decision log: committed ones are replayed
    /// from their prepare records and made durable *before* the shard
    /// rejoins (so cross-shard atomic visibility holds the moment it serves
    /// again), everything else is presumed aborted.
    pub fn recover_shard(&self, index: usize) -> Result<RecoveryReport> {
        let coordinator = self.coordinator.clone();
        let resolve = move |txn: TxnId| coordinator.decision(txn) == TxnDecision::Committed;
        let (report, recovered) = self.shards[index].recover_resolving(&resolve)?;
        // Acknowledge everything this shard can vouch for — the halves just
        // replayed *and* prepares that were already durable before the
        // crash (the crash may have interrupted the normal epoch-durable
        // acknowledgement, which would pin the decision forever) — so fully
        // acknowledged decisions can retire, then rejoin the rendezvous.
        self.coordinator.ack_durable(index, &recovered.replayed);
        self.coordinator
            .ack_durable(index, &recovered.stale_prepared);
        self.coordinator.set_live(index, true);
        Ok(report)
    }

    /// Whether the given shard is currently crashed.
    pub fn is_shard_crashed(&self, index: usize) -> bool {
        self.shards[index].is_crashed()
    }

    /// Whether this deployment supervises its own storage daemons
    /// (`StorageBackend::RemoteSpawned`).
    pub fn has_storage_supervisor(&self) -> bool {
        self.supervisor.is_some()
    }

    /// OS process id of shard `index`'s storage daemon, when supervised
    /// and running.
    pub fn storage_daemon_pid(&self, index: usize) -> Option<u32> {
        self.supervisor.as_ref().and_then(|s| s.pid(index))
    }

    /// `SIGKILL`s shard `index`'s storage daemon — no flush, no goodbye.
    ///
    /// The shard's next storage operation fails, and the proxy fate-shares
    /// the fault into a shard crash; once the daemon is respawned
    /// ([`ShardedDb::respawn_shard_storage`]), [`ShardedDb::recover_shard`]
    /// replays the WAL over the daemon's op-log-restored state.  Only
    /// available on `RemoteSpawned` deployments.
    pub fn kill_shard_storage(&self, index: usize) -> Result<()> {
        match &self.supervisor {
            Some(supervisor) => supervisor.kill(index),
            None => Err(ObladiError::Config(
                "storage daemons are not supervised by this deployment".into(),
            )),
        }
    }

    /// Respawns shard `index`'s storage daemon over its existing data
    /// directory and waits for it to become ready.
    pub fn respawn_shard_storage(&self, index: usize) -> Result<()> {
        match &self.supervisor {
            Some(supervisor) => supervisor.respawn(index),
            None => Err(ObladiError::Config(
                "storage daemons are not supervised by this deployment".into(),
            )),
        }
    }

    /// Stops every shard's epoch driver, the coordinator and (when
    /// supervised) the storage daemons.
    pub fn shutdown(&self) {
        self.coordinator.shutdown();
        for shard in &self.shards {
            shard.shutdown();
        }
        // Daemons stop last: the epoch drivers above may still be flushing
        // their final write-backs through the sockets.
        if let Some(supervisor) = &self.supervisor {
            supervisor.stop_all();
        }
    }

    fn record_outcome(&self, outcome: &TxnOutcome, shards_touched: usize) {
        let obs = obladi_obs::global();
        if outcome.is_committed() {
            self.committed.fetch_add(1, Ordering::SeqCst);
            obs.counter("shard.txn.committed").inc();
            if shards_touched > 1 {
                self.cross_shard_committed.fetch_add(1, Ordering::SeqCst);
                obs.counter("shard.txn.cross_shard_committed").inc();
            }
        } else {
            self.aborted.fetch_add(1, Ordering::SeqCst);
            obs.counter("shard.txn.aborted").inc();
        }
    }
}

impl Drop for ShardedDb {
    fn drop(&mut self) {
        self.shutdown();
    }
}

impl obladi_core::FrontDoor for ShardedDb {
    fn deployment(&self) -> String {
        format!("obladi-{}shards", self.shards.len())
    }

    fn stop(&self) {
        self.shutdown();
    }
}

impl KvDatabase for ShardedDb {
    fn execute<T>(&self, body: &mut dyn FnMut(&mut dyn KvTransaction) -> Result<T>) -> Result<T> {
        let mut txn = self.begin()?;
        match body(&mut txn) {
            Ok(value) => {
                // Client-observed commit latency: from the commit request to
                // the slowest leg's acknowledged outcome.
                let commit_started = std::time::Instant::now();
                let outcome = txn.commit()?;
                obladi_common::stats::record_commit_latency(commit_started.elapsed());
                obladi_core::api::outcome_to_result(outcome)?;
                Ok(value)
            }
            Err(err) => {
                txn.rollback();
                Err(err)
            }
        }
    }

    fn engine_name(&self) -> &'static str {
        "obladi-sharded"
    }
}

/// One candidate *epoch-set* for a transaction: a global timestamp plus the
/// per-shard legs opened against the epochs that decide at one rendezvous
/// class.
///
/// A [`ShardedTxn`] drives one plan at a time.  When the live plan's
/// epoch-set is contradicted mid-flight — a rendezvous one of its legs
/// cannot join, a stale target generation, a declined late read, a lost
/// commit vote — the transaction builds a *twin* plan under a fresh
/// timestamp against freshly sampled generations and replays its operation
/// log onto it, promoting the twin only if every replayed read observes
/// exactly what the client already saw.  The contradicted epoch-set is
/// *discarded* — rolled back and forgotten — rather than surfaced to the
/// client as an abort.
struct LegPlan<'db> {
    /// The plan's own global MVTSO timestamp.
    id: TxnId,
    /// Which rendezvous the plan's legs decide at (see
    /// [`select_leg_target`]); `None` until the first leg fixes it.
    class: Option<u8>,
    subs: Vec<Option<ObladiTxn<'db>>>,
    /// Successful operations across all legs; while zero the plan is
    /// *virgin* and the transaction may be restarted from scratch.
    ops: u32,
}

impl<'db> LegPlan<'db> {
    fn new(id: TxnId, shards: usize) -> LegPlan<'db> {
        LegPlan {
            id,
            class: None,
            subs: (0..shards).map(|_| None).collect(),
            ops: 0,
        }
    }

    /// A plan whose round class is pinned up front instead of chosen by
    /// its first operation — used for twin rebuilds, which know the whole
    /// shard footprint in advance and need the class that composes with
    /// every shard.
    fn pinned(id: TxnId, class: u8, shards: usize) -> LegPlan<'db> {
        LegPlan {
            id,
            class: Some(class),
            subs: (0..shards).map(|_| None).collect(),
            ops: 0,
        }
    }

    /// Returns the plan's leg on `shard`, opening it against the right
    /// target generation if this is the first touch.
    ///
    /// The first leg fixes which rendezvous the plan decides at (its
    /// *round class*); later legs must pick whichever of their shard's
    /// target epochs decides at the same rendezvous.  Class 0 composes
    /// with every shard and is chosen whenever the first operation
    /// tolerates it: a write works fine in a deciding epoch, while a read
    /// wants the executing epoch's full fetch power — worth paying class 1
    /// (and its rendezvous mismatches) for.
    fn leg(
        &mut self,
        db: &'db ShardedDb,
        targets: &[(u64, Option<u64>)],
        shard: usize,
        for_write: bool,
    ) -> Result<&mut ObladiTxn<'db>> {
        if self.subs[shard].is_none() {
            let (exec_gen, deciding_gen) = targets[shard];
            let class = *self
                .class
                .get_or_insert(u8::from(deciding_gen.is_some() && !for_write));
            let target = select_leg_target(shard, class, exec_gen, deciding_gen)?;
            // The generation check runs inside the shard's own state lock,
            // atomically with its epoch rollover: a leg can never open in a
            // later epoch than its timestamp was sampled against, and no
            // coordinator rendezvous is consulted — opening a leg does not
            // block on an in-flight epoch decision.
            let sub = db.shards[shard].begin_at_generation(self.id, target)?;
            db.coordinator.register_participant(self.id, shard);
            self.subs[shard] = Some(sub);
        }
        Ok(self.subs[shard].as_mut().expect("leg just installed"))
    }

    /// Rolls back every opened leg of this plan.
    fn rollback_legs(&mut self) {
        for sub in &mut self.subs {
            if let Some(sub) = sub.take() {
                sub.rollback();
            }
        }
    }
}

/// One client-visible operation, recorded so a twin epoch-set can replay
/// the transaction and prove it observes the same history.
enum LoggedOp {
    /// A read and the value the client saw.
    Read(Key, Option<Value>),
    /// A write and the value it installed.
    Write(Key, Value),
}

/// What a twin replay must do for one logged read.
#[derive(Debug, PartialEq)]
enum ReplayRead {
    /// The key was already fetched — or written — earlier in this same
    /// replay; the read must observe exactly this value.  No fetch.
    Cached(Option<Value>),
    /// First touch of the key: fetch through the twin's leg, validate,
    /// then [`ReplayCache::note_fetched`] the result.
    NeedsFetch,
}

/// Deduplicates repeated touches of one key inside a single twin replay.
///
/// A transaction that read the same key `n` times logs `n` reads, but the
/// twin needs only one physical fetch: within one MVTSO transaction every
/// re-read observes the first fetch (or the transaction's own latest
/// write), so replaying the fetch `n` times would spend `n` read-batch
/// slots to learn a value the replay already holds — and those slots are
/// scarcest exactly when twins are being rebuilt, since a declined
/// late-read batch is a common rebuild trigger.  The cache binds each key
/// to the value the replay has proven for it: fetched values via
/// [`ReplayCache::note_fetched`], the transaction's own writes via
/// [`ReplayCache::note_write`] (read-your-writes — a logged read after a
/// logged write must observe the write, not the base version).
struct ReplayCache {
    seen: HashMap<Key, Option<Value>>,
}

impl ReplayCache {
    fn new() -> Self {
        Self {
            seen: HashMap::new(),
        }
    }

    /// How a logged read of `key` replays: served from the cache, or a
    /// first-touch fetch.
    fn check_read(&self, key: Key) -> ReplayRead {
        match self.seen.get(&key) {
            Some(value) => ReplayRead::Cached(value.clone()),
            None => ReplayRead::NeedsFetch,
        }
    }

    /// Records the value a first-touch fetch returned for `key`.
    fn note_fetched(&mut self, key: Key, value: Option<Value>) {
        self.seen.insert(key, value);
    }

    /// Records a replayed write: later logged reads of `key` must observe
    /// this value (read-your-writes).
    fn note_write(&mut self, key: Key, value: Value) {
        self.seen.insert(key, Some(value));
    }
}

/// A transaction spanning one or more shards of a [`ShardedDb`].
///
/// # Timestamps and shard epochs
///
/// Serializability across shards requires that a timestamp be *used* in the
/// same shard epoch it was *drawn* in: each epoch's ORAM base versions are
/// re-registered at timestamp 0, so a stale low timestamp operating in a
/// later epoch would read higher-timestamped data as if it preceded it.
/// Every shard leg therefore verifies, at open, that its shard is still in
/// the epoch generation sampled when the transaction was stamped — a purely
/// local check inside that shard's state lock, so opening a leg never
/// blocks on the (pipelined) epoch rendezvous.  A transaction that has not
/// yet completed any operation is transparently re-stamped and retried when
/// it trips that check (or any other retryable abort); one that has already
/// observed or written data rebuilds a twin epoch-set instead (below), and
/// only aborts to the client when the twin cannot reproduce its history.
///
/// # Dual-epoch legs
///
/// The first operation fixes the live plan's round class adaptively: a
/// read starting on a sealed shard takes class 1 (the shard's *executing*
/// epoch — full fetch power), everything else takes class 0 (sealed shards
/// contribute their deciding epochs, unsealed ones their executing epochs,
/// so the class composes with every shard).  Either way the plan places a
/// rendezvous bet the rest of the transaction can contradict: a class-1
/// leg cannot open on an unsealed shard
/// ([`ObladiError::PipelineIncompatible`]), while a class-0 leg in a
/// deciding epoch races that epoch's decision, its reads riding the
/// proxy's per-epoch late-read batch, which can *decline* once the spare
/// batch capacity runs out.  A contradicted bet no longer aborts the
/// client: the transaction re-stamps against freshly sampled generations
/// and replays its operation log onto a *twin* epoch-set — writes verbatim
/// and reads speculatively, each replayed read checked against the value
/// the client already observed.  If the whole log replays identically the
/// twin is promoted and the contradicted epoch-set is discarded; a
/// divergent read means the observed history is no longer reproducible,
/// and only then does the abort surface.
pub struct ShardedTxn<'db> {
    db: &'db ShardedDb,
    /// Per-shard target epochs sampled when the live plan's timestamp was
    /// drawn: the executing generation plus the open deciding generation,
    /// if any.  A leg may only open while its shard still hosts the chosen
    /// epoch.
    targets: Vec<(u64, Option<u64>)>,
    /// The live epoch-set, the one [`ShardedTxn::commit`] drives; replaced
    /// wholesale when a twin is promoted.
    primary: LegPlan<'db>,
    /// Every operation the client has completed, in order, with the values
    /// it observed — the replay script for twin rebuilds.
    oplog: Vec<LoggedOp>,
    /// Twin rebuilds consumed (bounded per transaction).
    rebuilds: u32,
    finished: bool,
}

impl<'db> ShardedTxn<'db> {
    /// The transaction's global MVTSO timestamp.
    ///
    /// Stable once the transaction has completed its first operation *and*
    /// kept its live epoch-set: a still-virgin transaction may be
    /// transparently re-stamped, and a promoted twin plan carries its own
    /// timestamp — so record-keeping harnesses should sample the id after
    /// the transaction's outcome is known.
    pub fn id(&self) -> TxnId {
        self.primary.id
    }

    /// The shards this transaction has touched so far.
    pub fn touched_shards(&self) -> Vec<usize> {
        self.primary
            .subs
            .iter()
            .enumerate()
            .filter_map(|(index, sub)| sub.as_ref().map(|_| index))
            .collect()
    }

    fn primary_leg(&mut self, shard: usize, for_write: bool) -> Result<&mut ObladiTxn<'db>> {
        self.primary.leg(self.db, &self.targets, shard, for_write)
    }

    /// Maximum twin rebuilds per transaction: each rebuild replays the
    /// whole operation log, so the budget bounds the amplification a
    /// pathologically unlucky transaction can inflict on the read batches.
    const TWIN_REBUILDS: u32 = 3;

    /// Rebuilds the transaction as a *twin* epoch-set and promotes it.
    ///
    /// The twin is a distinct transaction as far as MVTSO and the
    /// coordinator are concerned: a fresh timestamp drawn against freshly
    /// sampled shard generations (sampling before drawing preserves the
    /// [`ShardedDb::stamp`] ordering argument), with its round class
    /// chosen against the transaction's known shard footprint.  The operation
    /// log is replayed onto it — writes verbatim, reads speculatively, each
    /// replayed read compared against the value the client already
    /// observed.  Promotion happens only on *proven equivalence*: if every
    /// replayed operation succeeds and every read matches, the twin *is*
    /// the same transaction at a different serialization point, so it
    /// replaces the contradicted primary epoch-set.  Any replay failure
    /// discards the twin and leaves the primary untouched for the caller
    /// to abort.
    fn rebuild_twin(&mut self, pending_shard: Option<usize>) -> Result<()> {
        let (id, targets) = self.db.stamp();
        // Unlike a first operation, the rebuild knows the transaction's
        // whole shard footprint, so the round class is picked against the
        // freshly sampled generations of exactly the shards the replay
        // will touch — the logged operations plus the shard of the
        // operation whose failure triggered the rebuild (that one is not
        // in the log yet, and ignoring it would re-trip the very
        // contradiction being escaped): if every one of them is sealed,
        // class 1 gives the twin full-power executing-epoch reads and a
        // target that stays valid until the rendezvous after next; if any
        // is unsealed, only class 0 composes, its deciding-epoch reads
        // riding the late-read batch.
        let all_sealed = self
            .oplog
            .iter()
            .map(|logged| match logged {
                LoggedOp::Read(key, _) | LoggedOp::Write(key, _) => self.db.router.route(*key),
            })
            .chain(pending_shard)
            .all(|shard| targets[shard].1.is_some());
        let class = u8::from(all_sealed);
        let mut twin = LegPlan::pinned(id, class, self.db.shards.len());
        obladi_obs::global().counter("shard.twin.rebuilt").inc();
        let mut replay_error: Option<(&'static str, ObladiError)> = None;
        // Repeated touches of one key replay against the cache instead of
        // re-fetching: the first touch fetches (or writes) through a real
        // leg, every later logged read of that key validates against the
        // value the replay already proved — one batch slot per distinct
        // key, not per logged read.
        let mut cache = ReplayCache::new();
        for logged in &self.oplog {
            let result = match logged {
                LoggedOp::Read(key, observed) => {
                    let replayed = match cache.check_read(*key) {
                        ReplayRead::Cached(value) => Ok(value),
                        ReplayRead::NeedsFetch => {
                            let shard = self.db.router.route(*key);
                            twin.leg(self.db, &targets, shard, false)
                                .and_then(|leg| leg.read(*key))
                                .inspect(|value| cache.note_fetched(*key, value.clone()))
                        }
                    };
                    match replayed {
                        Ok(value) if value == *observed => Ok(()),
                        Ok(_) => Err((
                            "read_divergence",
                            ObladiError::TxnAborted(
                                "twin replay observed a different value".into(),
                            ),
                        )),
                        Err(err) => Err((err.cause_label(), err)),
                    }
                }
                LoggedOp::Write(key, value) => {
                    let shard = self.db.router.route(*key);
                    twin.leg(self.db, &targets, shard, true)
                        .and_then(|leg| leg.write(*key, value.clone()))
                        .inspect(|_| cache.note_write(*key, value.clone()))
                        .map_err(|err| (err.cause_label(), err))
                }
            };
            if let Err(labelled) = result {
                replay_error = Some(labelled);
                break;
            }
            twin.ops += 1;
        }
        if let Some((cause, err)) = replay_error {
            twin.rollback_legs();
            self.db.coordinator.forget_txn(twin.id);
            obladi_obs::global()
                .counter(&format!("shard.twin.discarded.{cause}"))
                .inc();
            return Err(err);
        }
        let mut losing = std::mem::replace(&mut self.primary, twin);
        losing.rollback_legs();
        self.db.coordinator.forget_txn(losing.id);
        self.targets = targets;
        obladi_obs::global().counter("shard.twin.promoted").inc();
        Ok(())
    }

    /// Restarts a still-virgin transaction from scratch: every opened leg
    /// is rolled back and forgotten, the epoch gets a chance to roll over,
    /// and the transaction is re-stamped — a fresh timestamp drawn against
    /// freshly re-sampled shard target generations.  Reusing the
    /// generations captured at `begin` would trip the same stale-epoch
    /// check forever.
    fn restart_fresh(&mut self, shard: usize) {
        self.primary.rollback_legs();
        self.db.coordinator.forget_txn(self.primary.id);
        self.db.shards[shard].wait_epoch_rollover(Duration::from_secs(2));
        let (id, targets) = self.db.stamp();
        self.primary = LegPlan::new(id, self.db.shards.len());
        self.targets = targets;
    }

    /// Aborts every open leg and reports the transaction as aborted.
    fn abort_all(&mut self) {
        if self.finished {
            return;
        }
        self.finished = true;
        self.primary.rollback_legs();
        self.db.coordinator.forget_txn(self.primary.id);
        self.db
            .record_outcome(&TxnOutcome::Aborted(AbortReason::UserRequested), 0);
    }

    /// Runs one operation on the shard leg owning `key`, transparently
    /// re-opening a *fresh* leg (one with no completed operations) in the
    /// shard's next epoch when the operation hits a retryable abort.
    ///
    /// The sharded epoch barrier stretches the tail of every local epoch —
    /// the driver parks at the rendezvous with its read batches exhausted —
    /// so a leg that happens to open in that window gets a `BatchFull` or
    /// epoch-end abort through no fault of the transaction.  A fresh leg can
    /// be re-begun safely (no state left behind); a plan that already
    /// performed operations cannot restart, but the transaction can rebuild
    /// itself as a twin epoch-set ([`ShardedTxn::rebuild_twin`]) and retry
    /// the operation there.  Only when the twin cannot reproduce the
    /// client's observed history does the abort reach the client.
    fn run_on_leg<T>(
        &mut self,
        key: Key,
        for_write: bool,
        op: impl Fn(&mut ObladiTxn<'db>, Key) -> Result<T>,
    ) -> Result<T> {
        const FRESH_LEG_RETRIES: usize = 3;
        if self.finished {
            return Err(ObladiError::TxnAborted(
                "transaction already finished".into(),
            ));
        }
        let shard = self.db.router.route(key);
        let mut attempt = 0;
        let result = loop {
            let result = self
                .primary_leg(shard, for_write)
                .and_then(|leg| op(leg, key));
            match result {
                Ok(value) => {
                    self.primary.ops += 1;
                    break Ok(value);
                }
                Err(err)
                    if err.is_retryable()
                        && self.primary.ops == 0
                        && attempt < FRESH_LEG_RETRIES =>
                {
                    attempt += 1;
                    obladi_obs::global()
                        .counter(&format!("shard.{shard}.retry.{}", err.cause_label()))
                        .inc();
                    self.restart_fresh(shard);
                }
                Err(err) if err.is_retryable() && self.rebuilds < Self::TWIN_REBUILDS => {
                    // The live epoch-set lost its rendezvous bet: a class-1
                    // leg met an unsealed shard, a class-0 deciding leg's
                    // late read declined or its epoch went stale.  Rebuild
                    // the transaction as a twin epoch-set and re-run the
                    // failed operation there; the rebuild succeeds only if
                    // the twin reproduced every value the client observed.
                    self.rebuilds += 1;
                    obladi_obs::global()
                        .counter(&format!("shard.{shard}.retry.{}", err.cause_label()))
                        .inc();
                    if matches!(err, ObladiError::BatchFull(_)) {
                        // The shard's epoch has no spare read-batch budget
                        // left; a twin stamped into the same congested
                        // epoch would replay straight into the exhausted
                        // batches.  Let the epoch roll over first so the
                        // twin samples fresh capacity.
                        self.db.shards[shard].wait_epoch_rollover(Duration::from_secs(2));
                    }
                    if self.rebuild_twin(Some(shard)).is_err() {
                        obladi_obs::global()
                            .counter(&format!("shard.{shard}.abort.{}", err.cause_label()))
                            .inc();
                        break Err(err);
                    }
                }
                Err(err) => {
                    obladi_obs::global()
                        .counter(&format!("shard.{shard}.abort.{}", err.cause_label()))
                        .inc();
                    break Err(err);
                }
            }
        };
        if result.is_err() {
            // The failing leg has aborted inside the shard; a partial
            // transaction must not survive on the others.
            self.abort_all();
        }
        result
    }

    /// Reads `key` from the shard that owns it, recording the observation
    /// in the operation log.
    pub fn read(&mut self, key: Key) -> Result<Option<Value>> {
        let value = self.run_on_leg(key, false, |leg, key| leg.read(key))?;
        self.oplog.push(LoggedOp::Read(key, value.clone()));
        Ok(value)
    }

    /// Writes `key` on the shard that owns it, recording the write in the
    /// operation log.
    pub fn write(&mut self, key: Key, value: Value) -> Result<()> {
        self.run_on_leg(key, true, {
            let value = value.clone();
            move |leg, key| leg.write(key, value.clone())
        })?;
        self.oplog.push(LoggedOp::Write(key, value));
        Ok(())
    }

    /// Requests commit on every touched shard, waits for the coordinated
    /// epoch decision and returns it.
    ///
    /// The two-phase shape matters: commit is *requested* on every leg first
    /// (so all shards list the transaction as a candidate at the same epoch
    /// rendezvous), and only then are the outcomes collected.  The
    /// coordinator guarantees the legs agree — all commit in the same global
    /// epoch, or all abort.
    pub fn commit(mut self) -> Result<TxnOutcome> {
        self.commit_inner()
    }

    /// Commits like [`ShardedTxn::commit`] but also reports the id the
    /// transaction finally serialized under.
    ///
    /// A twin rebuild — mid-flight or inside the commit's own denied-vote
    /// retry loop — moves the transaction to a fresh timestamp, so an id
    /// sampled earlier can be stale by the time the decision lands.
    /// History-recording harnesses must order committed writers by their
    /// *actual* serialization point; this is the only way to learn it.
    pub fn commit_reported(mut self) -> Result<(TxnId, TxnOutcome)> {
        let outcome = self.commit_inner()?;
        Ok((self.primary.id, outcome))
    }

    fn commit_inner(&mut self) -> Result<TxnOutcome> {
        if self.finished {
            return Err(ObladiError::TxnAborted(
                "transaction already finished".into(),
            ));
        }
        self.finished = true;

        let shards_touched = self.primary.subs.iter().filter(|sub| sub.is_some()).count();

        // A transaction that touched nothing commits vacuously.
        if shards_touched == 0 {
            self.db.coordinator.forget_txn(self.primary.id);
            let outcome = TxnOutcome::Committed;
            self.db.record_outcome(&outcome, 0);
            return Ok(outcome);
        }

        let mut result = commit_plan(self.db, &mut self.primary);
        self.db.coordinator.forget_txn(self.primary.id);

        // A denied vote most often means the final legs' rendezvous
        // contradicted the live epoch-set — typically a deciding epoch
        // whose decision sampled its candidates before this commit request
        // arrived.  The denial is authoritative and all-or-nothing, so the
        // plan's fate is settled; but the *transaction* may still be
        // salvageable: rebuild it as a twin epoch-set (replaying the log,
        // validating every observed read) and drive the twin's two-phase
        // commit at its own rendezvous instead of surfacing a liveness
        // abort to the client.  A real conflict makes the replay diverge,
        // so genuine aborts still surface.
        while matches!(&result, Ok(outcome) if !outcome.is_committed())
            && self.rebuilds < Self::TWIN_REBUILDS
        {
            self.rebuilds += 1;
            if self.rebuild_twin(None).is_err() {
                break;
            }
            result = commit_plan(self.db, &mut self.primary);
            self.db.coordinator.forget_txn(self.primary.id);
        }

        match result {
            Ok(outcome) => {
                self.db.record_outcome(&outcome, shards_touched);
                Ok(outcome)
            }
            Err(err) => {
                self.db
                    .record_outcome(&TxnOutcome::Aborted(AbortReason::EpochEnd), shards_touched);
                Err(err)
            }
        }
    }

    /// Consumes the transaction, committing it and mapping aborts to errors.
    pub fn commit_or_err(self) -> Result<()> {
        obladi_core::api::outcome_to_result(self.commit()?)
    }

    /// Aborts the transaction on every shard it touched.
    pub fn rollback(mut self) {
        self.abort_all();
    }
}

impl KvTransaction for ShardedTxn<'_> {
    fn read(&mut self, key: Key) -> Result<Option<Value>> {
        ShardedTxn::read(self, key)
    }

    fn write(&mut self, key: Key, value: Value) -> Result<()> {
        ShardedTxn::write(self, key, value)
    }

    fn id(&self) -> u64 {
        self.primary.id
    }
}

impl Drop for ShardedTxn<'_> {
    fn drop(&mut self) {
        self.abort_all();
    }
}

/// Drives one leg plan's two-phase commit against the coordinated epoch
/// decision.
///
/// Phase 1 registers the commit request on every leg inside a commit-intake
/// window, so the whole burst is atomic with respect to the coordinator's
/// epoch decision (no decision can observe half of it).  A request failure
/// means the leg already aborted (conflict, cascading abort, crash); the
/// gate will then deny the transaction everywhere, so the remaining
/// outcomes are still collected to unpark cleanly before the error is
/// returned.
///
/// Phase 2 collects the coordinated outcomes.  The authoritative record of
/// a cross-shard fate is the coordinator's decision log: a leg can only
/// report `Committed` if the transaction was permitted, and the permit is
/// all-or-nothing across shards, so any committed leg — or a still-pending
/// commit decision, which covers the case where *every* participating leg
/// crashed after the decision — means the transaction is (or will be, once
/// recovery replays the durable prepares) committed everywhere.  Reporting
/// an abort in those cases would be the lie.
fn commit_plan<'db>(db: &'db ShardedDb, plan: &mut LegPlan<'db>) -> Result<TxnOutcome> {
    let legs: Vec<(usize, ObladiTxn<'db>)> = plan
        .subs
        .iter_mut()
        .enumerate()
        .filter_map(|(index, sub)| sub.take().map(|sub| (index, sub)))
        .collect();

    let mut request_error: Option<ObladiError> = None;
    let mut awaiting = Vec::with_capacity(legs.len());
    {
        let _intake = db.coordinator.begin_commit_intake();
        for (index, mut leg) in legs {
            match leg.request_commit() {
                Ok(()) => awaiting.push((index, leg)),
                Err(err) => {
                    obladi_obs::global()
                        .counter(&format!("shard.{index}.abort.{}", err.cause_label()))
                        .inc();
                    request_error = Some(err.clone_for_report(index));
                }
            }
        }
    }

    let mut any_committed = false;
    let mut abort: Option<TxnOutcome> = None;
    for (_, leg) in awaiting {
        match leg.await_outcome()? {
            TxnOutcome::Committed => any_committed = true,
            aborted @ TxnOutcome::Aborted(_) => abort = Some(aborted),
        }
    }
    if let Some(err) = request_error {
        return Err(err);
    }
    if any_committed || db.coordinator.was_committed(plan.id) {
        Ok(TxnOutcome::Committed)
    } else {
        Ok(abort.unwrap_or(TxnOutcome::Committed))
    }
}

/// Picks the epoch generation a leg on `shard` must open in so it decides
/// at its plan's fixed rendezvous (`class`), given the shard's sampled
/// target generations.
///
/// Class 0 — the shards' next rendezvous — composes with *every* shard: a
/// sealed shard contributes its deciding epoch, an unsealed one its
/// executing epoch.  Class 1 — the rendezvous after — joins only a sealed
/// shard's executing epoch, and `(1, None)` is its expected contradiction:
/// an unsealed shard offers no epoch deciding at that later rendezvous.  A
/// class-1 plan hitting that arm is not doomed — its opposite-class twin
/// (which composes) takes over via promotion, and only when no twin is
/// live does the error abort the transaction.  The typed
/// [`ObladiError::PipelineIncompatible`] — with the conflicting
/// generations attached — lets callers and tests tell this liveness
/// condition apart from real conflicts (and from capacity aborts).
pub fn select_leg_target(
    shard: usize,
    class: u8,
    exec_generation: u64,
    deciding_generation: Option<u64>,
) -> Result<u64> {
    match (class, deciding_generation) {
        (0, Some(deciding)) => Ok(deciding),
        (0, None) | (1, Some(_)) => Ok(exec_generation),
        _ => Err(ObladiError::PipelineIncompatible {
            shard,
            round_class: class,
            exec_generation,
            deciding_generation,
        }),
    }
}

/// Attaches the shard index to an error message for diagnosis.
trait CloneForReport {
    fn clone_for_report(&self, shard: usize) -> ObladiError;
}

impl CloneForReport for ObladiError {
    fn clone_for_report(&self, shard: usize) -> ObladiError {
        match self {
            ObladiError::TxnAborted(reason) => {
                ObladiError::TxnAborted(format!("shard {shard}: {reason}"))
            }
            other => other.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn twin_replay_fetches_each_key_once() {
        // Replay script: the client read key 1 twice, wrote it, re-read it
        // (observing its own write), and read key 2 — five logged ops, but
        // only the two first touches may cost a fetch.
        let value = |byte: u8| Value::from(vec![byte]);
        let log = [
            LoggedOp::Read(1, Some(value(10))),
            LoggedOp::Read(1, Some(value(10))),
            LoggedOp::Write(1, value(20)),
            LoggedOp::Read(1, Some(value(20))),
            LoggedOp::Read(2, None),
        ];
        let mut cache = ReplayCache::new();
        let mut fetches = 0;
        for logged in &log {
            match logged {
                LoggedOp::Read(key, observed) => {
                    let replayed = match cache.check_read(*key) {
                        ReplayRead::Cached(value) => value,
                        ReplayRead::NeedsFetch => {
                            fetches += 1;
                            // Deterministic stand-in for the leg fetch: the
                            // value the client originally observed.
                            cache.note_fetched(*key, observed.clone());
                            observed.clone()
                        }
                    };
                    assert_eq!(&replayed, observed, "replay must revalidate");
                }
                LoggedOp::Write(key, value) => cache.note_write(*key, value.clone()),
            }
        }
        assert_eq!(fetches, 2, "one fetch per distinct key, not per read");
        // Read-your-writes: after the write, the cache serves the written
        // value, not the fetched one.
        assert_eq!(cache.check_read(1), ReplayRead::Cached(Some(value(20))));
        assert_eq!(cache.check_read(2), ReplayRead::Cached(None));
        assert_eq!(cache.check_read(3), ReplayRead::NeedsFetch);
    }

    #[test]
    fn leg_targets_align_on_one_rendezvous() {
        // Class 0 composes with every shard: a sealed shard contributes its
        // deciding epoch, an unsealed one its executing epoch.
        assert_eq!(select_leg_target(0, 0, 7, Some(6)).unwrap(), 6);
        assert_eq!(select_leg_target(0, 0, 7, None).unwrap(), 7);
        // Class 1 needs the sealed shard's executing epoch.
        assert_eq!(select_leg_target(0, 1, 7, Some(6)).unwrap(), 7);
    }

    #[test]
    fn incompatible_phases_surface_as_a_typed_liveness_retry() {
        let err = select_leg_target(2, 1, 9, None).unwrap_err();
        match &err {
            ObladiError::PipelineIncompatible {
                shard,
                round_class,
                exec_generation,
                deciding_generation,
            } => {
                assert_eq!((*shard, *round_class), (2, 1));
                assert_eq!(*exec_generation, 9);
                assert_eq!(*deciding_generation, None);
            }
            other => panic!("expected PipelineIncompatible, got {other:?}"),
        }
        assert!(err.is_retryable(), "liveness retries must stay retryable");
        assert!(err.is_liveness_retry());
        // Real conflicts are NOT liveness retries.
        assert!(!ObladiError::TxnAborted("write-write conflict".into()).is_liveness_retry());
        let msg = err.to_string();
        assert!(
            msg.contains("shard 2") && msg.contains("generation 9"),
            "the conflicting generations must be in the message: {msg}"
        );
    }

    #[test]
    fn virgin_retry_restamps_with_freshly_sampled_targets() {
        let db = ShardedDb::open(ShardConfig::small_for_tests(2, 256)).unwrap();
        let mut setup = db.begin().unwrap();
        setup.write(7, vec![7]).unwrap();
        assert!(setup.commit().unwrap().is_committed());

        let mut txn = db.begin().unwrap();
        let stale_id = txn.primary.id;
        // Simulate the shard generations advancing out from under the
        // transaction between `begin` and its first operation: poison every
        // sampled target so the first leg-open trips the stale-generation
        // check.  The transparent restart must re-sample `stamp_targets`
        // fresh — re-deriving the leg plan from the poisoned generations
        // would fail the same way on every attempt.
        for target in &mut txn.targets {
            *target = (u64::MAX, None);
        }
        assert_eq!(
            txn.read(7).unwrap(),
            Some(vec![7]),
            "the restarted leg must serve the read"
        );
        assert!(
            txn.primary.id > stale_id,
            "restart must draw a fresh timestamp"
        );
        assert!(
            txn.targets.iter().all(|&(exec, _)| exec != u64::MAX),
            "restart must re-sample the shard targets, not reuse the stale ones"
        );
        assert!(txn.commit().unwrap().is_committed());
        db.shutdown();
    }
}
