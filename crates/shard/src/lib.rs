//! Sharded scale-out deployment of Obladi.
//!
//! A single Obladi proxy serializes every read and write batch through one
//! Ring ORAM tree, so its throughput is capped by one epoch pipeline no
//! matter how many cores the machine has (§7 of the paper parallelizes
//! *within* a tree, not across trees).  This crate scales *out* instead: it
//! runs `N` fully independent proxy+ORAM pipelines — each with its own
//! storage backend, write-ahead log and recovery unit — behind a single
//! transactional front door with the same `begin` / `read` / `write` /
//! `commit` surface as [`obladi_core::ObladiDb`].
//!
//! | Piece | Job |
//! |---|---|
//! | [`ShardRouter`] | keyed-hash key placement (workload-independent, leak-free) |
//! | [`TimestampOracle`] | one global MVTSO timestamp stream, so the serial order is total across shards |
//! | [`EpochCoordinator`] | epoch barrier + unanimous commit vote, so delayed visibility stays atomic across shards |
//! | [`ShardedDb`] / [`ShardedTxn`] | the front door |
//!
//! See `crates/shard/README.md` for why hashed placement leaks nothing
//! beyond a uniform distribution.
//!
//! # Quick start
//!
//! ```
//! use obladi_common::config::ShardConfig;
//! use obladi_shard::ShardedDb;
//!
//! // Four independent ORAM pipelines behind one front door.
//! let db = ShardedDb::open(ShardConfig::small_for_tests(4, 512)).unwrap();
//!
//! let mut txn = db.begin().unwrap();
//! for key in 0..8u64 {
//!     txn.write(key, vec![key as u8]).unwrap(); // routed across shards
//! }
//! assert!(txn.commit().unwrap().is_committed());
//!
//! let mut txn = db.begin().unwrap();
//! assert_eq!(txn.read(3).unwrap(), Some(vec![3]));
//! txn.commit().unwrap();
//! db.shutdown();
//! ```

#![warn(missing_docs)]

pub mod coordinator;
pub mod db;
pub mod oracle;
pub mod router;

pub use coordinator::{EpochCoordinator, ShardGate, TxnDecision};
pub use db::{select_leg_target, ShardedDb, ShardedStats, ShardedTxn};
pub use oracle::TimestampOracle;
pub use router::ShardRouter;
