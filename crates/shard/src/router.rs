//! Keyed-hash placement of logical keys onto shards.
//!
//! Placement must satisfy two properties:
//!
//! * **Workload independence** — which shard a key lives on may depend only
//!   on the key and a secret, never on access frequency or order, so the
//!   sequence of shards an adversary sees batches flow to is exactly what a
//!   uniform random assignment would produce (see `crates/shard/README.md`
//!   for the full obliviousness argument).
//! * **Stability** — the same key must route to the same shard across
//!   processes and restarts, or recovery would lose data.
//!
//! Both come from an HMAC-SHA-256 over the key's little-endian encoding,
//! keyed by a routing secret derived from the proxy's master key material.
//! The first eight MAC bytes are folded onto `0..shards` with the unbiased
//! multiply-shift reduction.

use obladi_common::types::Key;
use obladi_crypto::{HmacSha256, KeyMaterial};

/// Deterministic keyed-hash router mapping keys to shard indices.
#[derive(Clone)]
pub struct ShardRouter {
    mac: HmacSha256,
    shards: usize,
}

impl ShardRouter {
    /// Builds a router over `shards` shards keyed from `keys`.
    ///
    /// The routing subkey is derived HKDF-style from the master secret with
    /// a dedicated label, so it is independent of the encryption and MAC
    /// subkeys while still surviving crashes with the master key.
    pub fn new(keys: &KeyMaterial, shards: usize) -> Self {
        let kdf = HmacSha256::new(keys.master());
        let routing_key = kdf.mac(b"obladi:shard-routing-key:v1");
        ShardRouter {
            mac: HmacSha256::new(&routing_key),
            shards: shards.max(1),
        }
    }

    /// Number of shards this router spreads keys over.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// The shard that owns `key`.
    pub fn route(&self, key: Key) -> usize {
        let tag = self.mac.mac(&key.to_le_bytes());
        let mut prefix = [0u8; 8];
        prefix.copy_from_slice(&tag[..8]);
        let hash = u64::from_le_bytes(prefix);
        // Multiply-shift folds the 64-bit hash onto 0..shards with bias
        // below 2^-64 per bucket.
        (((hash as u128) * (self.shards as u128)) >> 64) as usize
    }
}

impl std::fmt::Debug for ShardRouter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardRouter")
            .field("shards", &self.shards)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn routing_is_deterministic_and_in_range() {
        let keys = KeyMaterial::for_tests(7);
        let router = ShardRouter::new(&keys, 5);
        for key in 0..200u64 {
            let shard = router.route(key);
            assert!(shard < 5);
            assert_eq!(shard, router.route(key), "key {key} moved");
        }
    }

    #[test]
    fn different_secrets_produce_different_placements() {
        let a = ShardRouter::new(&KeyMaterial::for_tests(1), 8);
        let b = ShardRouter::new(&KeyMaterial::for_tests(2), 8);
        let moved = (0..256u64).filter(|&k| a.route(k) != b.route(k)).count();
        assert!(moved > 64, "placement must depend on the routing secret");
    }

    #[test]
    fn single_shard_routes_everything_to_zero() {
        let router = ShardRouter::new(&KeyMaterial::for_tests(3), 1);
        assert!((0..64u64).all(|k| router.route(k) == 0));
    }
}
