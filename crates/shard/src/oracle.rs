//! The global timestamp oracle.
//!
//! MVTSO serializes transactions by timestamp, and a sharded deployment is
//! serializable only if that order is *total across shards*: every shard
//! must agree on the relative order of any two transactions.  The simplest
//! way to get there is a single monotonic counter all shards draw from —
//! the same design TrueTime-free systems (e.g. Percolator) use at rack
//! scale.  One atomic fetch-add per transaction is orders of magnitude
//! cheaper than the ORAM work the transaction triggers, so the oracle is
//! nowhere near the bottleneck.

use std::sync::atomic::{AtomicU64, Ordering};

/// Monotonic timestamp dispenser shared by every shard of a deployment.
#[derive(Debug)]
pub struct TimestampOracle {
    next: AtomicU64,
}

impl TimestampOracle {
    /// Creates an oracle whose first issued timestamp is `2` (timestamp `1`
    /// is reserved, matching the single-proxy generator's first value).
    pub fn new() -> Self {
        TimestampOracle {
            next: AtomicU64::new(1),
        }
    }

    /// Issues the next globally unique timestamp.
    pub fn next_ts(&self) -> u64 {
        self.next.fetch_add(1, Ordering::SeqCst) + 1
    }

    /// The most recently issued timestamp (diagnostics).
    pub fn last_issued(&self) -> u64 {
        self.next.load(Ordering::SeqCst)
    }
}

impl Default for TimestampOracle {
    fn default() -> Self {
        TimestampOracle::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use std::sync::Arc;

    #[test]
    fn timestamps_are_unique_and_monotonic_across_threads() {
        let oracle = Arc::new(TimestampOracle::new());
        let mut handles = Vec::new();
        for _ in 0..8 {
            let oracle = oracle.clone();
            handles.push(std::thread::spawn(move || {
                let mut seen = Vec::new();
                for _ in 0..500 {
                    seen.push(oracle.next_ts());
                }
                seen
            }));
        }
        let mut all: Vec<u64> = Vec::new();
        for handle in handles {
            let seen = handle.join().unwrap();
            assert!(seen.windows(2).all(|w| w[0] < w[1]), "per-thread monotonic");
            all.extend(seen);
        }
        let unique: HashSet<u64> = all.iter().copied().collect();
        assert_eq!(unique.len(), all.len(), "timestamps must never repeat");
    }
}
