//! The epoch barrier coordinator: lockstep epochs and cross-shard commit
//! votes.
//!
//! Obladi's correctness rests on *delayed visibility*: a transaction's
//! writes become visible only when its epoch ends, and either every effect
//! of the epoch becomes durable or none does.  With several independent
//! shards that guarantee has to be lifted to the deployment level — a
//! transaction that wrote on shards A and B must become visible on A and B
//! in the *same* global epoch, or on neither.
//!
//! The coordinator achieves this with one rendezvous per global epoch.
//! Every shard's epoch driver, just before finalising its local epoch, calls
//! [`EpochCoordinator::arrive`] through its [`ShardGate`], handing over a
//! *candidate source* — a closure the coordinator can sample for the shard's
//! current commit-requested transactions.  The call blocks until every live
//! shard has arrived; the coordinator then samples every shard's candidates
//! **at decision time** and decides, atomically for the whole deployment:
//!
//! * a transaction commits iff **every shard it touched** is live and lists
//!   it as a candidate (unanimous vote);
//! * everything else aborts with a retryable reason on every shard.
//!
//! Sampling at decision time (rather than at each shard's arrival) matters:
//! shards arrive at the barrier at different moments, and a multi-shard
//! commit whose per-shard requests land while some shard is already parked
//! would otherwise be counted on some shards but not others — aborting a
//! perfectly good transaction.  For the same reason the front door brackets
//! its burst of per-shard commit requests in a [`CommitIntake`] guard: the
//! decision waits for in-flight bursts, and new bursts wait for a pending
//! decision, so no burst ever straddles a decision.
//!
//! Crashed shards are excluded from the rendezvous (a barrier over a dead
//! shard would halt the world); transactions touching a crashed shard abort
//! until it recovers and re-joins.

use obladi_common::types::{EpochId, TxnId};
use obladi_core::{CandidateSource, EpochGate};
use parking_lot::{Condvar, Mutex};
use std::collections::{HashMap, HashSet};
use std::sync::Arc;

struct CoordState {
    /// Which shards currently participate in the rendezvous.
    live: Vec<bool>,
    /// Candidate sources of shards that have arrived for the current round.
    arrivals: HashMap<usize, CandidateSource>,
    /// Decided-but-uncollected permit lists, one entry per arrived shard.
    permits: HashMap<usize, Vec<TxnId>>,
    /// Completed rounds — the deployment's global epoch counter.
    round: u64,
    /// Which shards each in-flight transaction has touched.
    participants: HashMap<TxnId, HashSet<usize>>,
    /// Commit-request bursts currently in flight (see [`CommitIntake`]).
    intake_in_flight: usize,
    /// A decision is waiting for in-flight bursts to drain.
    decision_pending: bool,
    shutdown: bool,
}

impl CoordState {
    fn all_live_arrived(&self) -> bool {
        let live: Vec<usize> = (0..self.live.len()).filter(|&s| self.live[s]).collect();
        !live.is_empty() && live.iter().all(|s| self.arrivals.contains_key(s))
    }
}

/// Barrier + commit-vote coordinator shared by all shards of a deployment.
pub struct EpochCoordinator {
    state: Mutex<CoordState>,
    changed: Condvar,
}

impl EpochCoordinator {
    /// Creates a coordinator for `shards` shards, all initially live.
    pub fn new(shards: usize) -> Self {
        EpochCoordinator {
            state: Mutex::new(CoordState {
                live: vec![true; shards],
                arrivals: HashMap::new(),
                permits: HashMap::new(),
                round: 0,
                participants: HashMap::new(),
                intake_in_flight: 0,
                decision_pending: false,
                shutdown: false,
            }),
            changed: Condvar::new(),
        }
    }

    /// Number of completed global epochs.
    pub fn global_epoch(&self) -> u64 {
        self.state.lock().round
    }

    /// Records that `txn` has begun work on `shard`.
    pub fn register_participant(&self, txn: TxnId, shard: usize) {
        self.state
            .lock()
            .participants
            .entry(txn)
            .or_default()
            .insert(shard);
    }

    /// The shards `txn` has touched (diagnostics and tests).
    pub fn participants(&self, txn: TxnId) -> Vec<usize> {
        let state = self.state.lock();
        let mut shards: Vec<usize> = state
            .participants
            .get(&txn)
            .map(|set| set.iter().copied().collect())
            .unwrap_or_default();
        shards.sort_unstable();
        shards
    }

    /// Drops the participant registration of a finished transaction.
    pub fn forget_txn(&self, txn: TxnId) {
        self.state.lock().participants.remove(&txn);
    }

    /// Opens a commit-intake window: while the guard lives, no rendezvous
    /// decision is taken, so a burst of per-shard commit requests is atomic
    /// with respect to the vote.  Blocks while a decision is pending.
    pub fn begin_commit_intake(&self) -> CommitIntake<'_> {
        let mut state = self.state.lock();
        while state.decision_pending && !state.shutdown {
            self.changed.wait(&mut state);
        }
        state.intake_in_flight += 1;
        CommitIntake { coordinator: self }
    }

    /// Marks a shard live (recovered) or dead (crashed).  Dead shards are
    /// dropped from the rendezvous, which may complete the current round.
    pub fn set_live(&self, shard: usize, alive: bool) {
        let mut state = self.state.lock();
        if state.live[shard] == alive {
            return;
        }
        state.live[shard] = alive;
        if !alive {
            // A stale arrival from a now-dead shard must not vote.
            state.arrivals.remove(&shard);
        }
        drop(state);
        // The change may have completed the round (one fewer shard to wait
        // for) — wake everyone so the last arriver re-evaluates.
        self.changed.notify_all();
    }

    /// Releases every blocked shard and disables future rendezvous (used on
    /// deployment shutdown).  Blocked and future arrivals get their own
    /// candidates back unchanged, matching single-proxy shutdown semantics.
    pub fn shutdown(&self) {
        self.state.lock().shutdown = true;
        self.changed.notify_all();
    }

    /// The rendezvous: blocks until all live shards have arrived for this
    /// round, samples every shard's candidates, and returns those the
    /// coordinator permits `shard` to commit.
    ///
    /// On shutdown the shard's own candidates pass through unchanged
    /// (matching single-proxy shutdown semantics).  A shard that has been
    /// marked dead gets an *empty* permit set: its crash is imminent, and
    /// committing locally after the deployment has already excluded its
    /// votes could make half of a cross-shard transaction durable.
    pub fn arrive(&self, shard: usize, candidates: CandidateSource) -> Vec<TxnId> {
        let mut state = self.state.lock();
        if state.shutdown {
            drop(state);
            return candidates();
        }
        if !state.live[shard] {
            return Vec::new();
        }
        state.arrivals.insert(shard, candidates.clone());
        let target = state.round + 1;

        // Wait until this round is decided; the last arriver (or a waiter
        // woken by a liveness change that completed the barrier) performs
        // the decision itself.
        loop {
            if state.round >= target || state.shutdown || !state.live[shard] {
                break;
            }
            if state.all_live_arrived() && !state.decision_pending {
                // This thread decides.  First drain in-flight commit bursts
                // so no burst straddles the decision.
                state.decision_pending = true;
                self.changed.notify_all();
                while state.intake_in_flight > 0 && !state.shutdown {
                    self.changed.wait(&mut state);
                }
                if state.shutdown {
                    state.decision_pending = false;
                    break;
                }
                // Liveness may have changed while draining; re-check that
                // the barrier still holds before deciding.
                if state.all_live_arrived() {
                    self.decide(&mut state);
                }
                state.decision_pending = false;
                self.changed.notify_all();
                continue;
            }
            self.changed.wait(&mut state);
        }

        if state.round < target {
            // Released early: pass through on shutdown, abort-all when the
            // shard itself was marked dead mid-wait.
            if state.shutdown {
                drop(state);
                return candidates();
            }
            return Vec::new();
        }
        state.permits.remove(&shard).unwrap_or_default()
    }

    /// Samples every arrived shard's candidates and completes the round.
    /// Runs with the coordinator lock held; candidate sources take their
    /// shard's state lock, which no caller of the coordinator holds.
    fn decide(&self, state: &mut CoordState) {
        let arrivals = std::mem::take(&mut state.arrivals);
        let sampled: HashMap<usize, Vec<TxnId>> = arrivals
            .iter()
            .map(|(&shard, source)| (shard, source()))
            .collect();

        // Which shards are ready to commit each transaction.
        let mut ready: HashMap<TxnId, HashSet<usize>> = HashMap::new();
        for (&shard, candidates) in &sampled {
            for &txn in candidates {
                ready.entry(txn).or_default().insert(shard);
            }
        }

        // Unanimity: every shard the transaction touched must be live and
        // ready to commit it.  Transactions with no registration are local
        // to the listing shard by construction.
        let mut permitted: HashSet<TxnId> = HashSet::new();
        for (&txn, ready_on) in &ready {
            let unanimous = match state.participants.get(&txn) {
                Some(touched) => touched
                    .iter()
                    .all(|shard| state.live[*shard] && ready_on.contains(shard)),
                None => true,
            };
            if unanimous {
                permitted.insert(txn);
            }
        }

        for (shard, candidates) in sampled {
            let permits = candidates
                .into_iter()
                .filter(|txn| permitted.contains(txn))
                .collect();
            state.permits.insert(shard, permits);
        }
        state.round += 1;
    }
}

/// RAII window during which no rendezvous decision is taken (see
/// [`EpochCoordinator::begin_commit_intake`]).
pub struct CommitIntake<'a> {
    coordinator: &'a EpochCoordinator,
}

impl Drop for CommitIntake<'_> {
    fn drop(&mut self) {
        let mut state = self.coordinator.state.lock();
        state.intake_in_flight -= 1;
        drop(state);
        self.coordinator.changed.notify_all();
    }
}

/// The per-shard [`EpochGate`] wired into each [`obladi_core::ObladiDb`]:
/// forwards the proxy's commit candidates to the deployment coordinator.
pub struct ShardGate {
    coordinator: Arc<EpochCoordinator>,
    shard: usize,
}

impl ShardGate {
    /// Creates the gate for `shard`.
    pub fn new(coordinator: Arc<EpochCoordinator>, shard: usize) -> Self {
        ShardGate { coordinator, shard }
    }
}

impl EpochGate for ShardGate {
    fn permit_commits(&self, _epoch: EpochId, candidates: CandidateSource) -> Vec<TxnId> {
        self.coordinator.arrive(self.shard, candidates)
    }

    fn proxy_crashed(&self) {
        // A shard can crash on its own (storage-fault fate sharing), not
        // just via ShardedDb::crash_shard; either way the rendezvous must
        // stop waiting for it or the whole deployment stalls.
        self.coordinator.set_live(self.shard, false);
    }

    fn proxy_recovered(&self) {
        self.coordinator.set_live(self.shard, true);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;
    use std::time::Duration;

    fn source(candidates: Vec<TxnId>) -> CandidateSource {
        Arc::new(move || candidates.clone())
    }

    #[test]
    fn single_shard_round_passes_candidates_through() {
        let coordinator = EpochCoordinator::new(1);
        coordinator.register_participant(5, 0);
        assert_eq!(coordinator.arrive(0, source(vec![5, 6])), vec![5, 6]);
        assert_eq!(coordinator.global_epoch(), 1);
    }

    #[test]
    fn cross_shard_txn_commits_only_when_both_shards_list_it() {
        let coordinator = Arc::new(EpochCoordinator::new(2));
        // Txn 10 touched both shards but only shard 0 is ready to commit it;
        // txn 11 is local to shard 1.
        coordinator.register_participant(10, 0);
        coordinator.register_participant(10, 1);
        coordinator.register_participant(11, 1);

        let c = coordinator.clone();
        let other = thread::spawn(move || c.arrive(1, source(vec![11])));
        let permits0 = coordinator.arrive(0, source(vec![10]));
        let permits1 = other.join().unwrap();
        assert!(
            permits0.is_empty(),
            "txn 10 lacked shard 1's vote: {permits0:?}"
        );
        assert_eq!(permits1, vec![11]);
    }

    #[test]
    fn unanimous_cross_shard_txn_is_permitted_on_both_shards() {
        let coordinator = Arc::new(EpochCoordinator::new(2));
        coordinator.register_participant(7, 0);
        coordinator.register_participant(7, 1);

        let c = coordinator.clone();
        let other = thread::spawn(move || c.arrive(1, source(vec![7])));
        let permits0 = coordinator.arrive(0, source(vec![7]));
        let permits1 = other.join().unwrap();
        assert_eq!(permits0, vec![7]);
        assert_eq!(permits1, vec![7]);
        assert_eq!(coordinator.global_epoch(), 1);
    }

    #[test]
    fn candidates_are_sampled_at_decision_time() {
        // Shard 0 arrives first with an empty candidate list; the commit
        // request lands on shard 0 while it is parked at the barrier.  The
        // decision-time sample must still see it.
        let coordinator = Arc::new(EpochCoordinator::new(2));
        coordinator.register_participant(42, 0);
        coordinator.register_participant(42, 1);

        let requested = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let flag = requested.clone();
        let live_source: CandidateSource = Arc::new(move || {
            if flag.load(std::sync::atomic::Ordering::SeqCst) {
                vec![42]
            } else {
                vec![]
            }
        });

        let c = coordinator.clone();
        let early = thread::spawn(move || c.arrive(0, live_source));
        thread::sleep(Duration::from_millis(20));
        // The burst: request on both shards inside an intake window.
        {
            let _intake = coordinator.begin_commit_intake();
            requested.store(true, std::sync::atomic::Ordering::SeqCst);
        }
        let permits1 = coordinator.arrive(1, source(vec![42]));
        let permits0 = early.join().unwrap();
        assert_eq!(permits0, vec![42], "decision must use a fresh sample");
        assert_eq!(permits1, vec![42]);
    }

    #[test]
    fn dead_shard_is_excluded_and_its_transactions_abort() {
        let coordinator = Arc::new(EpochCoordinator::new(2));
        coordinator.register_participant(9, 0);
        coordinator.register_participant(9, 1);
        coordinator.set_live(1, false);
        // Shard 1 never arrives, yet the round completes; txn 9 touched the
        // dead shard and must not be permitted.
        let permits = coordinator.arrive(0, source(vec![9]));
        assert!(permits.is_empty());
        assert_eq!(coordinator.global_epoch(), 1);
    }

    #[test]
    fn marking_a_shard_dead_releases_a_blocked_round() {
        let coordinator = Arc::new(EpochCoordinator::new(2));
        let c = coordinator.clone();
        let waiter = thread::spawn(move || c.arrive(0, source(vec![1])));
        // Let the waiter block, then kill the missing shard.
        thread::sleep(Duration::from_millis(20));
        coordinator.set_live(1, false);
        let permits = waiter.join().unwrap();
        assert_eq!(permits, vec![1], "local txn commits once shard 1 is out");
    }

    #[test]
    fn shutdown_releases_waiters_with_passthrough() {
        let coordinator = Arc::new(EpochCoordinator::new(2));
        let c = coordinator.clone();
        let waiter = thread::spawn(move || c.arrive(0, source(vec![3])));
        thread::sleep(Duration::from_millis(20));
        coordinator.shutdown();
        assert_eq!(waiter.join().unwrap(), vec![3]);
    }

    #[test]
    fn forget_txn_clears_registration() {
        let coordinator = EpochCoordinator::new(2);
        coordinator.register_participant(4, 0);
        coordinator.register_participant(4, 1);
        assert_eq!(coordinator.participants(4), vec![0, 1]);
        coordinator.forget_txn(4);
        assert!(coordinator.participants(4).is_empty());
    }

    #[test]
    fn rounds_advance_across_consecutive_epochs() {
        let coordinator = Arc::new(EpochCoordinator::new(2));
        for round in 1..=3u64 {
            let c = coordinator.clone();
            let other = thread::spawn(move || c.arrive(1, source(vec![])));
            coordinator.arrive(0, source(vec![]));
            other.join().unwrap();
            assert_eq!(coordinator.global_epoch(), round);
        }
    }
}
