//! The epoch barrier coordinator: lockstep epochs and cross-shard commit
//! votes.
//!
//! Obladi's correctness rests on *delayed visibility*: a transaction's
//! writes become visible only when its epoch ends, and either every effect
//! of the epoch becomes durable or none does.  With several independent
//! shards that guarantee has to be lifted to the deployment level — a
//! transaction that wrote on shards A and B must become visible on A and B
//! in the *same* global epoch, or on neither.
//!
//! The coordinator achieves this with one rendezvous per global epoch.
//! Every shard's epoch driver, just before finalising its local epoch, calls
//! [`EpochCoordinator::arrive`] through its [`ShardGate`], handing over a
//! *candidate source* — a closure the coordinator can sample for the shard's
//! current commit-requested transactions.  The call blocks until every live
//! shard has arrived; the coordinator then samples every shard's candidates
//! **at decision time** and decides, atomically for the whole deployment:
//!
//! * a transaction commits iff **every shard it touched** is live and lists
//!   it as a candidate (unanimous vote);
//! * everything else aborts with a retryable reason on every shard.
//!
//! Sampling at decision time (rather than at each shard's arrival) matters:
//! shards arrive at the barrier at different moments, and a multi-shard
//! commit whose per-shard requests land while some shard is already parked
//! would otherwise be counted on some shards but not others — aborting a
//! perfectly good transaction.  For the same reason the front door brackets
//! its burst of per-shard commit requests in a [`CommitIntake`] guard: the
//! decision waits for in-flight bursts, and new bursts wait for a pending
//! decision, so no burst ever straddles a decision.
//!
//! Crashed shards are excluded from the rendezvous (a barrier over a dead
//! shard would halt the world); transactions touching a crashed shard abort
//! until it recovers and re-joins.
//!
//! # Durable cross-shard prepare (2PC-in-WAL, presumed abort)
//!
//! A unanimous vote alone leaves a window: a shard that crashes *between*
//! its commit vote and its epoch commit loses its half of a cross-shard
//! transaction the peers made durable.  The coordinator therefore runs the
//! decision as classic two-phase commit with presumed abort, using each
//! shard's write-ahead log as the prepare log:
//!
//! * **Prepare.**  Before a cross-shard transaction's votes count, every
//!   participating shard durably appends a `Prepare{txn, epoch, write set}`
//!   record through its [`TxnPreparer`].  A shard whose prepare fails
//!   withholds its vote and the transaction aborts retryably everywhere.
//! * **Decide.**  Once all participants hold durable prepares, the
//!   coordinator records the commit decision in its decision log and
//!   permits the transaction.  Anything not in the log is *presumed
//!   aborted* — no abort records are ever written.
//! * **Forget.**  Each shard acknowledges the decision when its epoch
//!   commits durably ([`EpochCoordinator::ack_durable`], wired through
//!   `EpochGate::epoch_durable`); once every participant has acknowledged,
//!   the decision is retired.  Stale prepare records (their epoch is at or
//!   below the shard's durable frontier) are retired by WAL compaction.
//!
//! Recovery of a crashed shard asks [`EpochCoordinator::decision`] about
//! every in-doubt prepare it finds and replays the committed ones from
//! their prepare records, then acknowledges them — so a voted cross-shard
//! transaction is finished (or rolled back) instead of silently torn.
//!
//! The vote is also kept *closed under cascading aborts*: a candidate whose
//! same-epoch dependency (an uncommitted write it observed) is denied would
//! be cascade-aborted locally after the vote, so the coordinator denies it
//! on every shard up front.

use obladi_common::error::{ObladiError, Result};
use obladi_common::types::{EpochId, TxnId};
use obladi_core::{CandidateSource, CommitCandidate, EpochGate, TxnPreparer};
use parking_lot::{Condvar, Mutex, MutexGuard};
use std::collections::{HashMap, HashSet};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// What the coordinator knows about a transaction's fate (presumed abort:
/// only commit decisions are recorded).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TxnDecision {
    /// Every participant durably prepared and the coordinator permitted the
    /// commit; a recovering participant must replay its half.
    Committed,
    /// No commit decision is on record: the transaction never achieved a
    /// fully prepared unanimous vote, so no shard can have committed it.
    PresumedAborted,
}

/// One shard's rendezvous arrival: its live candidate view and its durable
/// prepare hook.
struct ShardArrival {
    candidates: CandidateSource,
    preparer: TxnPreparer,
}

struct CoordState {
    /// Which shards currently participate in the rendezvous.
    live: Vec<bool>,
    /// Arrivals of shards for the current round.
    arrivals: HashMap<usize, ShardArrival>,
    /// Decided-but-uncollected permit lists, one entry per arrived shard.
    permits: HashMap<usize, Vec<TxnId>>,
    /// Completed rounds — the deployment's global epoch counter.
    round: u64,
    /// Which shards each in-flight transaction has touched.
    participants: HashMap<TxnId, HashSet<usize>>,
    /// The 2PC decision log: committed cross-shard transactions mapped to
    /// the participants that have not yet acknowledged the commit durable.
    decisions: HashMap<TxnId, HashSet<usize>>,
    /// Commit verdicts for the *front door*, kept until the transaction is
    /// forgotten.  Unlike `decisions`, participant acknowledgements do not
    /// erase these — otherwise a transaction whose every leg crashed could
    /// have its decision replayed and fully retired by recovery before the
    /// front door samples the verdict, and the client would be told
    /// "aborted" about durably committed writes.
    committed_verdicts: HashSet<TxnId>,
    /// Commit-request bursts currently in flight (see [`CommitIntake`]).
    intake_in_flight: usize,
    /// A decision is draining in-flight bursts and sampling candidates;
    /// intake blocks only for this (short, in-memory) window.
    decision_pending: bool,
    /// The in-flight decision slot: the round whose decision has started
    /// (candidates sampled) but not yet completed.  Unlike
    /// `decision_pending`, this stays occupied across the decision's
    /// prepare I/O, which runs *outside* the coordinator lock — so every
    /// other entry point stays responsive while a latency-bound store
    /// absorbs the parallel prepare appends.
    deciding_round: Option<u64>,
    /// When the previous round completed (feeds the epoch-period
    /// histogram).
    last_round_at: Option<Instant>,
    shutdown: bool,
}

/// A decision sampled under the coordinator lock, carried across the
/// unlocked parallel-prepare phase and applied by
/// [`EpochCoordinator::complete_decision`].
struct DecisionPlan {
    /// Decision-time candidate sample per arrived shard.
    sampled: HashMap<usize, Vec<CommitCandidate>>,
    /// Transactions the vote permits so far (unanimous + cascade-closed).
    permitted: HashSet<TxnId>,
    /// Union of same-epoch dependencies per transaction.
    deps: HashMap<TxnId, HashSet<TxnId>>,
    /// Durable-prepare work: one disjoint WAL append batch per participant.
    prepares: Vec<(usize, Vec<TxnId>, TxnPreparer)>,
    /// Transactions already failed (a participant never arrived).
    prepare_failed: HashSet<TxnId>,
}

impl CoordState {
    fn all_live_arrived(&self) -> bool {
        let live: Vec<usize> = (0..self.live.len()).filter(|&s| self.live[s]).collect();
        !live.is_empty() && live.iter().all(|s| self.arrivals.contains_key(s))
    }
}

/// Barrier + commit-vote coordinator shared by all shards of a deployment.
pub struct EpochCoordinator {
    state: Mutex<CoordState>,
    changed: Condvar,
    /// Bounded-wait watchdog for the rendezvous: a shard parked in
    /// [`EpochCoordinator::arrive`] past this deadline dumps barrier
    /// diagnostics to stderr and returns a typed, retryable
    /// [`ObladiError::BarrierStalled`] instead of hanging forever.
    watchdog: Duration,
}

impl EpochCoordinator {
    /// Default rendezvous watchdog: far beyond any healthy epoch (epochs
    /// run in milliseconds), so it only ever fires on a genuine liveness
    /// bug — a shard that died without being marked dead, a deadlocked
    /// prepare.
    pub const DEFAULT_WATCHDOG: Duration = Duration::from_secs(30);

    /// Creates a coordinator for `shards` shards, all initially live.
    pub fn new(shards: usize) -> Self {
        EpochCoordinator {
            state: Mutex::new(CoordState {
                live: vec![true; shards],
                arrivals: HashMap::new(),
                permits: HashMap::new(),
                round: 0,
                participants: HashMap::new(),
                decisions: HashMap::new(),
                committed_verdicts: HashSet::new(),
                intake_in_flight: 0,
                decision_pending: false,
                deciding_round: None,
                last_round_at: None,
                shutdown: false,
            }),
            changed: Condvar::new(),
            watchdog: Self::DEFAULT_WATCHDOG,
        }
    }

    /// Overrides the rendezvous watchdog deadline (tests use short ones to
    /// reproduce the stalled-barrier shape deterministically; deployments
    /// plumb `ShardConfig::barrier_watchdog` through here).
    pub fn with_watchdog(mut self, deadline: Duration) -> Self {
        self.watchdog = deadline;
        self
    }

    /// Number of completed global epochs.
    pub fn global_epoch(&self) -> u64 {
        self.state.lock().round
    }

    /// Records that `txn` has begun work on `shard`.
    pub fn register_participant(&self, txn: TxnId, shard: usize) {
        self.state
            .lock()
            .participants
            .entry(txn)
            .or_default()
            .insert(shard);
    }

    /// The shards `txn` has touched (diagnostics and tests).
    pub fn participants(&self, txn: TxnId) -> Vec<usize> {
        let state = self.state.lock();
        let mut shards: Vec<usize> = state
            .participants
            .get(&txn)
            .map(|set| set.iter().copied().collect())
            .unwrap_or_default();
        shards.sort_unstable();
        shards
    }

    /// Drops the participant registration (and the front-door commit
    /// verdict) of a finished transaction.  The 2PC decision log is *not*
    /// touched here: a decision outlives the front door's bookkeeping,
    /// because a crashed participant may still need it at recovery time.
    pub fn forget_txn(&self, txn: TxnId) {
        let mut state = self.state.lock();
        state.participants.remove(&txn);
        state.committed_verdicts.remove(&txn);
    }

    /// Whether the coordinator decided to commit `txn` — the front door's
    /// verdict source.  Unlike [`EpochCoordinator::decision`], this stays
    /// true even after every participant has acknowledged (recovery may
    /// retire the decision before the front door samples the outcome); it
    /// is cleared by [`EpochCoordinator::forget_txn`].
    pub fn was_committed(&self, txn: TxnId) -> bool {
        let state = self.state.lock();
        state.committed_verdicts.contains(&txn) || state.decisions.contains_key(&txn)
    }

    /// The coordinator's verdict on a transaction, queried by a recovering
    /// shard for every in-doubt prepare record it finds (presumed abort:
    /// absence from the decision log means no shard can have committed).
    pub fn decision(&self, txn: TxnId) -> TxnDecision {
        if self.state.lock().decisions.contains_key(&txn) {
            TxnDecision::Committed
        } else {
            TxnDecision::PresumedAborted
        }
    }

    /// Acknowledges that `shard` has made the listed transactions' commits
    /// durable (either through its normal epoch commit or by replaying them
    /// during recovery).  A decision is retired once every participant has
    /// acknowledged it; ids without a pending decision are ignored.
    pub fn ack_durable(&self, shard: usize, txns: &[TxnId]) {
        let mut state = self.state.lock();
        for txn in txns {
            if let Some(pending) = state.decisions.get_mut(txn) {
                pending.remove(&shard);
                if pending.is_empty() {
                    state.decisions.remove(txn);
                }
            }
        }
    }

    /// Number of commit decisions awaiting participant acknowledgements
    /// (diagnostics and tests; a healthy deployment trends to zero).
    pub fn pending_decisions(&self) -> usize {
        self.state.lock().decisions.len()
    }

    /// The round whose decision is currently in flight (candidates sampled,
    /// prepare I/O possibly still running), if any.
    pub fn deciding_round(&self) -> Option<u64> {
        self.state.lock().deciding_round
    }

    /// Opens a commit-intake window: while the guard lives, no rendezvous
    /// decision is taken, so a burst of per-shard commit requests is atomic
    /// with respect to the vote.  Blocks while a decision is pending.
    pub fn begin_commit_intake(&self) -> CommitIntake<'_> {
        let mut state = self.state.lock();
        while state.decision_pending && !state.shutdown {
            self.changed.wait(&mut state);
        }
        state.intake_in_flight += 1;
        CommitIntake { coordinator: self }
    }

    /// Marks a shard live (recovered) or dead (crashed).  Dead shards are
    /// dropped from the rendezvous, which may complete the current round.
    pub fn set_live(&self, shard: usize, alive: bool) {
        let mut state = self.state.lock();
        if state.live[shard] == alive {
            return;
        }
        state.live[shard] = alive;
        if !alive {
            // A stale arrival from a now-dead shard must not vote.
            state.arrivals.remove(&shard);
        }
        drop(state);
        // The change may have completed the round (one fewer shard to wait
        // for) — wake everyone so the last arriver re-evaluates.
        self.changed.notify_all();
    }

    /// Releases every blocked shard and disables future rendezvous (used on
    /// deployment shutdown).  Blocked and future arrivals get their own
    /// candidates back unchanged, matching single-proxy shutdown semantics.
    pub fn shutdown(&self) {
        self.state.lock().shutdown = true;
        self.changed.notify_all();
    }

    /// The rendezvous: blocks until all live shards have arrived for this
    /// round, samples every shard's candidates, and returns those the
    /// coordinator permits `shard` to commit.  Cross-shard transactions are
    /// durably prepared on every participant (through the shards'
    /// `preparer` hooks) before their votes count.
    ///
    /// On shutdown the shard's own candidates pass through unchanged
    /// (matching single-proxy shutdown semantics).  A shard that has been
    /// marked dead gets an *empty* permit set: its crash is imminent, and
    /// committing locally after the deployment has already excluded its
    /// votes could make half of a cross-shard transaction durable.
    ///
    /// A shard parked here past the watchdog deadline withdraws its
    /// arrival, dumps the barrier state and `obs::report()` to stderr and
    /// returns [`ObladiError::BarrierStalled`] — a typed, retryable
    /// liveness error.  Withdrawing the arrival matters: a rendezvous that
    /// completes later must not sample the departed shard's stale
    /// candidate closure.  The shard's epoch finalises with an empty
    /// permit set (its candidates abort retryably) and it re-arrives for
    /// the same round at its next epoch, so a transient stall heals on its
    /// own.
    pub fn arrive(
        &self,
        shard: usize,
        candidates: CandidateSource,
        preparer: TxnPreparer,
    ) -> Result<Vec<TxnId>> {
        let mut state = self.state.lock();
        if state.shutdown {
            drop(state);
            return Ok(candidates().into_iter().map(|c| c.txn).collect());
        }
        if !state.live[shard] {
            return Ok(Vec::new());
        }
        state.arrivals.insert(
            shard,
            ShardArrival {
                candidates: candidates.clone(),
                preparer,
            },
        );
        let target = state.round + 1;
        let arrived_at = Instant::now();
        let deadline = arrived_at + self.watchdog;

        // Wait until this round is decided; the last arriver (or a waiter
        // woken by a liveness change that completed the barrier) performs
        // the decision itself.
        loop {
            if state.round >= target || state.shutdown || !state.live[shard] {
                break;
            }
            if state.all_live_arrived() && state.deciding_round.is_none() {
                // This thread decides.  First drain in-flight commit bursts
                // so no burst straddles the candidate sample.
                state.deciding_round = Some(target);
                obladi_obs::global()
                    .gauge("shard.pipeline.decision_in_flight")
                    .set(1);
                state.decision_pending = true;
                self.changed.notify_all();
                while state.intake_in_flight > 0 && !state.shutdown {
                    self.changed.wait(&mut state);
                }
                if state.shutdown {
                    state.decision_pending = false;
                    state.deciding_round = None;
                    obladi_obs::global()
                        .gauge("shard.pipeline.decision_in_flight")
                        .set(0);
                    break;
                }
                // Liveness may have changed while draining; re-check that
                // the barrier still holds before deciding.
                if state.all_live_arrived() {
                    let plan = Self::plan_decision(&mut state);
                    // The sample is frozen: intake may resume while the
                    // prepare I/O runs.
                    state.decision_pending = false;
                    self.changed.notify_all();
                    // The parallel prepare appends target disjoint stores
                    // and run with the coordinator unlocked, so no entry
                    // point stalls behind a latency-bound store.
                    drop(state);
                    let prepare_failed = Self::run_prepares(&plan);
                    state = self.state.lock();
                    self.complete_decision(&mut state, plan, prepare_failed);
                } else {
                    state.decision_pending = false;
                }
                state.deciding_round = None;
                obladi_obs::global()
                    .gauge("shard.pipeline.decision_in_flight")
                    .set(0);
                self.changed.notify_all();
                continue;
            }
            let now = Instant::now();
            if now >= deadline {
                return self.watchdog_fire(state, shard, target, arrived_at);
            }
            self.changed.wait_for(&mut state, deadline - now);
        }

        if state.round < target {
            // Released early: pass through on shutdown, abort-all when the
            // shard itself was marked dead mid-wait.
            if state.shutdown {
                drop(state);
                return Ok(candidates().into_iter().map(|c| c.txn).collect());
            }
            return Ok(Vec::new());
        }
        Ok(state.permits.remove(&shard).unwrap_or_default())
    }

    /// The watchdog path of [`EpochCoordinator::arrive`]: withdraw the
    /// shard's arrival, dump barrier diagnostics to stderr and surface the
    /// park as a typed, retryable error.
    fn watchdog_fire(
        &self,
        mut state: MutexGuard<'_, CoordState>,
        shard: usize,
        target: u64,
        arrived_at: Instant,
    ) -> Result<Vec<TxnId>> {
        state.arrivals.remove(&shard);
        let waited = arrived_at.elapsed();
        let round = state.round;
        let deciding_round = state.deciding_round;
        let live: Vec<usize> = (0..state.live.len()).filter(|&s| state.live[s]).collect();
        let mut arrived: Vec<usize> = state.arrivals.keys().copied().collect();
        arrived.sort_unstable();
        let missing: Vec<usize> = live
            .iter()
            .copied()
            .filter(|s| *s != shard && !state.arrivals.contains_key(s))
            .collect();
        drop(state);
        // A withdrawn arrival can change what the barrier is waiting for;
        // make sure everyone re-evaluates.
        self.changed.notify_all();
        obladi_obs::global()
            .counter("shard.coordinator.watchdog_fired")
            .inc();
        eprintln!(
            "obladi: epoch-barrier watchdog fired: shard {shard} waited {waited:?} for round \
             {target} (completed rounds {round}, deciding round {deciding_round:?}, live shards \
             {live:?}, arrived {arrived:?}, missing {missing:?})"
        );
        eprintln!("{}", obladi_obs::report());
        // The metrics report samples totals; the span-trace tail shows the
        // *sequence* of epoch phases leading into the stall, which is what
        // post-hoc diagnosis actually needs.
        eprintln!("--- span trace tail (json) ---");
        eprintln!(
            "{}",
            obladi_obs::report::render_trace_json(&obladi_obs::trace::global().events(), 0)
        );
        Err(ObladiError::BarrierStalled {
            shard,
            round: target,
            waited_ms: waited.as_millis() as u64,
        })
    }

    /// Samples every arrived shard's candidates and computes the tentative
    /// permit set — everything that can be decided in memory.  Runs with
    /// the coordinator lock held; candidate sources take their shard's
    /// state lock, which no caller of the coordinator holds.  The durable
    /// prepare I/O is *not* performed here: [`EpochCoordinator::run_prepares`]
    /// executes it in parallel with the coordinator unlocked.
    fn plan_decision(state: &mut CoordState) -> DecisionPlan {
        let arrivals = std::mem::take(&mut state.arrivals);
        let sampled: HashMap<usize, Vec<CommitCandidate>> = arrivals
            .iter()
            .map(|(&shard, arrival)| (shard, (arrival.candidates)()))
            .collect();

        // Which shards are ready to commit each transaction, and the union
        // of its same-epoch dependencies across shards.
        let mut ready: HashMap<TxnId, HashSet<usize>> = HashMap::new();
        let mut deps: HashMap<TxnId, HashSet<TxnId>> = HashMap::new();
        for (&shard, candidates) in &sampled {
            for candidate in candidates {
                ready.entry(candidate.txn).or_default().insert(shard);
                deps.entry(candidate.txn)
                    .or_default()
                    .extend(candidate.deps.iter().copied());
            }
        }

        // Unanimity: every shard the transaction touched must be live and
        // ready to commit it.  Transactions with no registration are local
        // to the listing shard by construction.
        let mut permitted: HashSet<TxnId> = HashSet::new();
        for (&txn, ready_on) in &ready {
            let unanimous = match state.participants.get(&txn) {
                Some(touched) => touched
                    .iter()
                    .all(|shard| state.live[*shard] && ready_on.contains(shard)),
                None => true,
            };
            if unanimous {
                permitted.insert(txn);
            }
        }
        Self::close_under_deps(&mut permitted, &deps);

        // Plan the durable prepares: one batch of WAL appends per
        // participant of each permitted cross-shard transaction.
        let mut by_shard: HashMap<usize, Vec<TxnId>> = HashMap::new();
        for &txn in &permitted {
            if let Some(touched) = state.participants.get(&txn) {
                if touched.len() > 1 {
                    for &shard in touched {
                        by_shard.entry(shard).or_default().push(txn);
                    }
                }
            }
        }
        let mut prepare_failed: HashSet<TxnId> = HashSet::new();
        let mut prepares: Vec<(usize, Vec<TxnId>, TxnPreparer)> = Vec::new();
        for (shard, mut txns) in by_shard {
            txns.sort_unstable();
            match arrivals.get(&shard) {
                Some(arrival) => prepares.push((shard, txns, arrival.preparer.clone())),
                // Unanimity requires every participant to have arrived;
                // defensively withhold the vote if one has not.
                None => prepare_failed.extend(txns),
            }
        }
        DecisionPlan {
            sampled,
            permitted,
            deps,
            prepares,
            prepare_failed,
        }
    }

    /// Durable prepare: a cross-shard transaction's votes only count once
    /// every participant has a prepare record in its WAL.  The per-shard
    /// append batches target disjoint stores, so they run in parallel —
    /// and the caller holds no coordinator lock, so with a latency-bound
    /// store every other coordinator entry point stays responsive for the
    /// duration.  Returns the transactions whose prepare failed.
    fn run_prepares(plan: &DecisionPlan) -> HashSet<TxnId> {
        let mut prepare_failed = plan.prepare_failed.clone();
        if plan.prepares.len() <= 1 {
            // Zero or one participant: nothing to parallelise.
            for (_, txns, preparer) in &plan.prepares {
                if preparer(txns).is_err() {
                    prepare_failed.extend(txns.iter().copied());
                }
            }
            return prepare_failed;
        }
        let failures: Vec<Vec<TxnId>> = std::thread::scope(|scope| {
            let handles: Vec<_> = plan
                .prepares
                .iter()
                .map(|(_, txns, preparer)| {
                    let handle = scope.spawn(move || {
                        if preparer(txns).is_err() {
                            txns.clone()
                        } else {
                            Vec::new()
                        }
                    });
                    (txns, handle)
                })
                .collect();
            handles
                .into_iter()
                // A panicked preparer never produced a durable record: its
                // shard's whole batch must withhold its votes, exactly like
                // an ordinary prepare failure.
                .map(|(txns, handle)| handle.join().unwrap_or_else(|_| txns.clone()))
                .collect()
        });
        for failed in failures {
            prepare_failed.extend(failed);
        }
        prepare_failed
    }

    /// Applies the prepare results and completes the round: failed prepares
    /// withhold votes (re-closing the dependency set — dropping a
    /// transaction may orphan dependents), shards that died during the
    /// prepare I/O lose their transactions' votes, surviving cross-shard
    /// commits enter the decision log, and every arrived shard gets its
    /// permit list.
    fn complete_decision(
        &self,
        state: &mut CoordState,
        plan: DecisionPlan,
        prepare_failed: HashSet<TxnId>,
    ) {
        let DecisionPlan {
            sampled,
            mut permitted,
            deps,
            ..
        } = plan;
        if !prepare_failed.is_empty() {
            permitted.retain(|txn| !prepare_failed.contains(txn));
            Self::close_under_deps(&mut permitted, &deps);
        }
        // Liveness may have changed while the coordinator was unlocked for
        // the prepare I/O: a transaction touching a now-dead shard must not
        // commit (its prepared half would resolve at recovery, but the live
        // halves would commit an epoch the dead shard never voted into).
        let dead_touched: Vec<TxnId> = permitted
            .iter()
            .filter(|txn| {
                state
                    .participants
                    .get(txn)
                    .is_some_and(|touched| touched.iter().any(|shard| !state.live[*shard]))
            })
            .copied()
            .collect();
        if !dead_touched.is_empty() {
            for txn in dead_touched {
                permitted.remove(&txn);
            }
            Self::close_under_deps(&mut permitted, &deps);
        }

        // Record the commit decisions for the surviving cross-shard
        // transactions; they are retired as participants acknowledge
        // durability (or after a crashed participant replays at recovery).
        // The front-door verdict is recorded separately and lives until the
        // transaction is forgotten.
        let cross_committed: Vec<(TxnId, HashSet<usize>)> = permitted
            .iter()
            .filter_map(|&txn| {
                state
                    .participants
                    .get(&txn)
                    .filter(|touched| touched.len() > 1)
                    .map(|touched| (txn, touched.clone()))
            })
            .collect();
        for (txn, touched) in cross_committed {
            state.decisions.insert(txn, touched);
            state.committed_verdicts.insert(txn);
        }

        for (shard, candidates) in sampled {
            let permits = candidates
                .into_iter()
                .map(|c| c.txn)
                .filter(|txn| state.live[shard] && permitted.contains(txn))
                .collect();
            state.permits.insert(shard, permits);
        }
        state.round += 1;
        let obs = obladi_obs::global();
        let now = Instant::now();
        if let Some(previous) = state.last_round_at.replace(now) {
            obs.histogram("shard.epoch.period_us")
                .record_duration(now.duration_since(previous));
        }
        obs.gauge("shard.epoch.global").set(state.round as i64);
        obladi_obs::trace::global().record("shard.round_decided", state.round, 0);
    }

    /// Shrinks `permitted` to its largest subset closed under `deps`: a
    /// transaction whose dependency is denied would be cascade-aborted on
    /// the shard that recorded the dependency, so permitting it elsewhere
    /// would tear the commit.
    fn close_under_deps(permitted: &mut HashSet<TxnId>, deps: &HashMap<TxnId, HashSet<TxnId>>) {
        loop {
            let dropped: Vec<TxnId> = permitted
                .iter()
                .filter(|txn| {
                    deps.get(txn)
                        .is_some_and(|d| d.iter().any(|dep| !permitted.contains(dep)))
                })
                .copied()
                .collect();
            if dropped.is_empty() {
                return;
            }
            for txn in dropped {
                permitted.remove(&txn);
            }
        }
    }
}

/// RAII window during which no rendezvous decision is taken (see
/// [`EpochCoordinator::begin_commit_intake`]).
pub struct CommitIntake<'a> {
    coordinator: &'a EpochCoordinator,
}

impl Drop for CommitIntake<'_> {
    fn drop(&mut self) {
        let mut state = self.coordinator.state.lock();
        state.intake_in_flight -= 1;
        drop(state);
        self.coordinator.changed.notify_all();
    }
}

/// The per-shard [`EpochGate`] wired into each [`obladi_core::ObladiDb`]:
/// forwards the proxy's commit candidates to the deployment coordinator.
pub struct ShardGate {
    coordinator: Arc<EpochCoordinator>,
    shard: usize,
}

impl ShardGate {
    /// Creates the gate for `shard`.
    pub fn new(coordinator: Arc<EpochCoordinator>, shard: usize) -> Self {
        ShardGate { coordinator, shard }
    }
}

impl EpochGate for ShardGate {
    fn permit_commits(
        &self,
        _epoch: EpochId,
        candidates: CandidateSource,
        preparer: TxnPreparer,
    ) -> Result<Vec<TxnId>> {
        self.coordinator.arrive(self.shard, candidates, preparer)
    }

    fn epoch_durable(&self, _epoch: EpochId, committed: &[TxnId]) {
        // The shard's epoch commit is durable: retire this shard's share of
        // the 2PC decisions, so fully acknowledged ones can be forgotten.
        self.coordinator.ack_durable(self.shard, committed);
    }

    fn proxy_crashed(&self) {
        // A shard can crash on its own (storage-fault fate sharing), not
        // just via ShardedDb::crash_shard; either way the rendezvous must
        // stop waiting for it or the whole deployment stalls.
        self.coordinator.set_live(self.shard, false);
    }

    fn proxy_recovered(&self) {
        self.coordinator.set_live(self.shard, true);
    }

    fn proxy_stopping(&self) {
        // A stopping shard must release (and stop blocking) the rendezvous
        // exactly like a crashed one, or its parked decider could never be
        // joined.
        self.coordinator.set_live(self.shard, false);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::thread;
    use std::time::Duration;

    fn source(candidates: Vec<TxnId>) -> CandidateSource {
        Arc::new(move || {
            candidates
                .iter()
                .map(|&txn| CommitCandidate::local(txn))
                .collect()
        })
    }

    /// Candidates with explicit dependency lists.
    fn dep_source(candidates: Vec<(TxnId, Vec<TxnId>)>) -> CandidateSource {
        Arc::new(move || {
            candidates
                .iter()
                .map(|(txn, deps)| CommitCandidate {
                    txn: *txn,
                    deps: deps.clone(),
                })
                .collect()
        })
    }

    fn prepare_ok() -> TxnPreparer {
        Arc::new(|_| Ok(()))
    }

    fn prepare_fail() -> TxnPreparer {
        Arc::new(|_| {
            Err(obladi_common::error::ObladiError::Storage(
                "injected prepare failure".into(),
            ))
        })
    }

    /// A preparer that counts how many transactions it was asked to prepare.
    fn prepare_counting(counter: Arc<AtomicU64>) -> TxnPreparer {
        Arc::new(move |txns| {
            counter.fetch_add(txns.len() as u64, Ordering::SeqCst);
            Ok(())
        })
    }

    #[test]
    fn single_shard_round_passes_candidates_through() {
        let coordinator = EpochCoordinator::new(1);
        coordinator.register_participant(5, 0);
        assert_eq!(
            coordinator
                .arrive(0, source(vec![5, 6]), prepare_ok())
                .unwrap(),
            vec![5, 6]
        );
        assert_eq!(coordinator.global_epoch(), 1);
    }

    #[test]
    fn cross_shard_txn_commits_only_when_both_shards_list_it() {
        let coordinator = Arc::new(EpochCoordinator::new(2));
        // Txn 10 touched both shards but only shard 0 is ready to commit it;
        // txn 11 is local to shard 1.
        coordinator.register_participant(10, 0);
        coordinator.register_participant(10, 1);
        coordinator.register_participant(11, 1);

        let c = coordinator.clone();
        let other = thread::spawn(move || c.arrive(1, source(vec![11]), prepare_ok()).unwrap());
        let permits0 = coordinator
            .arrive(0, source(vec![10]), prepare_ok())
            .unwrap();
        let permits1 = other.join().unwrap();
        assert!(
            permits0.is_empty(),
            "txn 10 lacked shard 1's vote: {permits0:?}"
        );
        assert_eq!(permits1, vec![11]);
        assert_eq!(
            coordinator.decision(10),
            TxnDecision::PresumedAborted,
            "a denied transaction must never enter the decision log"
        );
    }

    #[test]
    fn unanimous_cross_shard_txn_is_permitted_on_both_shards() {
        let coordinator = Arc::new(EpochCoordinator::new(2));
        coordinator.register_participant(7, 0);
        coordinator.register_participant(7, 1);

        let prepared = Arc::new(AtomicU64::new(0));
        let c = coordinator.clone();
        let counter = prepared.clone();
        let other = thread::spawn(move || {
            c.arrive(1, source(vec![7]), prepare_counting(counter))
                .unwrap()
        });
        let permits0 = coordinator
            .arrive(0, source(vec![7]), prepare_counting(prepared.clone()))
            .unwrap();
        let permits1 = other.join().unwrap();
        assert_eq!(permits0, vec![7]);
        assert_eq!(permits1, vec![7]);
        assert_eq!(coordinator.global_epoch(), 1);
        assert_eq!(
            prepared.load(Ordering::SeqCst),
            2,
            "both participants must durably prepare before the vote counts"
        );
        assert_eq!(coordinator.decision(7), TxnDecision::Committed);

        // Both shards report the commit durable: the decision retires, but
        // the front-door verdict survives until the txn is forgotten —
        // otherwise a fully-crashed-and-recovered transaction could be
        // reported aborted after recovery already committed it everywhere.
        coordinator.ack_durable(0, &[7]);
        assert_eq!(coordinator.decision(7), TxnDecision::Committed);
        coordinator.ack_durable(1, &[7]);
        assert_eq!(coordinator.decision(7), TxnDecision::PresumedAborted);
        assert_eq!(coordinator.pending_decisions(), 0);
        assert!(
            coordinator.was_committed(7),
            "verdict must outlive the acks"
        );
        coordinator.forget_txn(7);
        assert!(!coordinator.was_committed(7));
    }

    #[test]
    fn failed_prepare_withholds_the_vote_everywhere() {
        let coordinator = Arc::new(EpochCoordinator::new(2));
        coordinator.register_participant(21, 0);
        coordinator.register_participant(21, 1);

        // Shard 1's WAL refuses the prepare append: the transaction must be
        // denied on both shards and no decision recorded.
        let c = coordinator.clone();
        let other = thread::spawn(move || c.arrive(1, source(vec![21]), prepare_fail()).unwrap());
        let permits0 = coordinator
            .arrive(0, source(vec![21]), prepare_ok())
            .unwrap();
        let permits1 = other.join().unwrap();
        assert!(permits0.is_empty(), "{permits0:?}");
        assert!(permits1.is_empty(), "{permits1:?}");
        assert_eq!(coordinator.decision(21), TxnDecision::PresumedAborted);
    }

    #[test]
    fn vote_is_closed_under_cascading_dependencies() {
        // Txn 31 (cross-shard, not unanimous) is denied; txn 32 observed 31's
        // uncommitted write on shard 0, so committing 32 anywhere would tear
        // once shard 0 cascades the abort.  Txn 33 is independent.
        let coordinator = Arc::new(EpochCoordinator::new(2));
        coordinator.register_participant(31, 0);
        coordinator.register_participant(31, 1);
        coordinator.register_participant(32, 0);
        coordinator.register_participant(32, 1);
        coordinator.register_participant(33, 1);

        let c = coordinator.clone();
        // Shard 1 never lists 31 (not ready), so 31 fails unanimity.
        let other = thread::spawn(move || {
            c.arrive(
                1,
                dep_source(vec![(32, vec![]), (33, vec![])]),
                prepare_ok(),
            )
            .unwrap()
        });
        let permits0 = coordinator
            .arrive(
                0,
                dep_source(vec![(31, vec![]), (32, vec![31])]),
                prepare_ok(),
            )
            .unwrap();
        let permits1 = other.join().unwrap();
        assert!(
            !permits0.contains(&31) && !permits1.contains(&31),
            "31 lacked a vote"
        );
        assert!(
            !permits0.contains(&32) && !permits1.contains(&32),
            "32 depends on the denied 31 and must be denied everywhere: {permits0:?} {permits1:?}"
        );
        assert!(permits1.contains(&33), "independent txn must still commit");
    }

    #[test]
    fn candidates_are_sampled_at_decision_time() {
        // Shard 0 arrives first with an empty candidate list; the commit
        // request lands on shard 0 while it is parked at the barrier.  The
        // decision-time sample must still see it.
        let coordinator = Arc::new(EpochCoordinator::new(2));
        coordinator.register_participant(42, 0);
        coordinator.register_participant(42, 1);

        let requested = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let flag = requested.clone();
        let live_source: CandidateSource = Arc::new(move || {
            if flag.load(std::sync::atomic::Ordering::SeqCst) {
                vec![CommitCandidate::local(42)]
            } else {
                vec![]
            }
        });

        let c = coordinator.clone();
        let early = thread::spawn(move || c.arrive(0, live_source, prepare_ok()).unwrap());
        thread::sleep(Duration::from_millis(20));
        // The burst: request on both shards inside an intake window.
        {
            let _intake = coordinator.begin_commit_intake();
            requested.store(true, std::sync::atomic::Ordering::SeqCst);
        }
        let permits1 = coordinator
            .arrive(1, source(vec![42]), prepare_ok())
            .unwrap();
        let permits0 = early.join().unwrap();
        assert_eq!(permits0, vec![42], "decision must use a fresh sample");
        assert_eq!(permits1, vec![42]);
    }

    /// A preparer that sleeps like a latency-bound store's WAL append.
    fn prepare_slow(delay: Duration) -> TxnPreparer {
        Arc::new(move |_| {
            thread::sleep(delay);
            Ok(())
        })
    }

    #[test]
    fn entry_points_stay_responsive_during_prepare_io() {
        // The parallel-prepare hoist: the per-shard 2PC prepare appends run
        // with the coordinator unlocked, so a latency-bound store must not
        // stall the other entry points for the prepare duration — and the
        // two shards' appends run in parallel, not back to back.
        let prepare_delay = Duration::from_millis(400);
        let coordinator = Arc::new(EpochCoordinator::new(2));
        coordinator.register_participant(5, 0);
        coordinator.register_participant(5, 1);

        let decision_started = std::time::Instant::now();
        let c = coordinator.clone();
        let other = thread::spawn(move || {
            c.arrive(1, source(vec![5]), prepare_slow(prepare_delay))
                .unwrap()
        });
        let c = coordinator.clone();
        let decider = thread::spawn(move || {
            c.arrive(0, source(vec![5]), prepare_slow(prepare_delay))
                .unwrap()
        });

        // Wait for the decision slot to be taken (sampling is in-memory and
        // quick; the rest of the slot's lifetime is the prepare I/O).
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while coordinator.deciding_round().is_none() {
            assert!(
                std::time::Instant::now() < deadline,
                "decision never started"
            );
            std::thread::yield_now();
        }

        // Every entry point — including commit intake — must answer in a
        // fraction of the prepare duration.
        let probe_start = std::time::Instant::now();
        let _ = coordinator.pending_decisions();
        let _ = coordinator.was_committed(5);
        let _ = coordinator.decision(5);
        coordinator.register_participant(6, 0);
        drop(coordinator.begin_commit_intake());
        let probed = probe_start.elapsed();
        assert!(
            probed < prepare_delay / 2,
            "coordinator entry points stalled for {probed:?} during prepare I/O"
        );

        let permits0 = decider.join().unwrap();
        let permits1 = other.join().unwrap();
        let total = decision_started.elapsed();
        assert_eq!(permits0, vec![5]);
        assert_eq!(permits1, vec![5]);
        // Two 400 ms prepares in parallel finish well under the 800 ms a
        // sequential decide would need.
        assert!(
            total < prepare_delay * 2,
            "prepares ran sequentially: {total:?}"
        );
        assert_eq!(coordinator.deciding_round(), None);
    }

    #[test]
    fn dead_shard_is_excluded_and_its_transactions_abort() {
        let coordinator = Arc::new(EpochCoordinator::new(2));
        coordinator.register_participant(9, 0);
        coordinator.register_participant(9, 1);
        coordinator.set_live(1, false);
        // Shard 1 never arrives, yet the round completes; txn 9 touched the
        // dead shard and must not be permitted.
        let permits = coordinator
            .arrive(0, source(vec![9]), prepare_ok())
            .unwrap();
        assert!(permits.is_empty());
        assert_eq!(coordinator.global_epoch(), 1);
    }

    #[test]
    fn marking_a_shard_dead_releases_a_blocked_round() {
        let coordinator = Arc::new(EpochCoordinator::new(2));
        let c = coordinator.clone();
        let waiter = thread::spawn(move || c.arrive(0, source(vec![1]), prepare_ok()).unwrap());
        // Let the waiter block, then kill the missing shard.
        thread::sleep(Duration::from_millis(20));
        coordinator.set_live(1, false);
        let permits = waiter.join().unwrap();
        assert_eq!(permits, vec![1], "local txn commits once shard 1 is out");
    }

    #[test]
    fn shutdown_releases_waiters_with_passthrough() {
        let coordinator = Arc::new(EpochCoordinator::new(2));
        let c = coordinator.clone();
        let waiter = thread::spawn(move || c.arrive(0, source(vec![3]), prepare_ok()).unwrap());
        thread::sleep(Duration::from_millis(20));
        coordinator.shutdown();
        assert_eq!(waiter.join().unwrap(), vec![3]);
    }

    #[test]
    fn forget_txn_clears_registration() {
        let coordinator = EpochCoordinator::new(2);
        coordinator.register_participant(4, 0);
        coordinator.register_participant(4, 1);
        assert_eq!(coordinator.participants(4), vec![0, 1]);
        coordinator.forget_txn(4);
        assert!(coordinator.participants(4).is_empty());
    }

    #[test]
    fn rounds_advance_across_consecutive_epochs() {
        let coordinator = Arc::new(EpochCoordinator::new(2));
        for round in 1..=3u64 {
            let c = coordinator.clone();
            let other = thread::spawn(move || c.arrive(1, source(vec![]), prepare_ok()).unwrap());
            coordinator.arrive(0, source(vec![]), prepare_ok()).unwrap();
            other.join().unwrap();
            assert_eq!(coordinator.global_epoch(), round);
        }
    }

    #[test]
    fn watchdog_converts_indefinite_park_into_typed_retryable_error() {
        let coordinator =
            Arc::new(EpochCoordinator::new(2).with_watchdog(Duration::from_millis(100)));
        // Shard 1 never arrives: the park must end with a typed liveness
        // error instead of hanging the caller forever.
        let err = coordinator
            .arrive(0, source(vec![5]), prepare_ok())
            .expect_err("watchdog should fire while shard 1 is missing");
        match &err {
            ObladiError::BarrierStalled {
                shard,
                round,
                waited_ms,
            } => {
                assert_eq!(*shard, 0);
                assert_eq!(*round, 1, "the stalled shard was waiting on round 1");
                assert!(*waited_ms >= 100, "waited {waited_ms} ms");
            }
            other => panic!("expected BarrierStalled, got {other:?}"),
        }
        assert!(err.is_retryable());
        assert!(err.is_liveness_retry());
        // The round never completed: the global epoch counter is untouched.
        assert_eq!(coordinator.global_epoch(), 0);
    }

    #[test]
    fn watchdog_withdraws_the_arrival_so_a_later_round_can_complete() {
        let coordinator =
            Arc::new(EpochCoordinator::new(2).with_watchdog(Duration::from_millis(80)));
        coordinator
            .arrive(0, source(vec![8]), prepare_ok())
            .expect_err("first attempt must stall");
        // Had the stale arrival (and its captured candidate source) been left
        // behind, the re-arrival below would either deadlock on the occupied
        // slot or decide round 1 against a closure from the abandoned call.
        let c = coordinator.clone();
        let other = thread::spawn(move || c.arrive(1, source(vec![]), prepare_ok()).unwrap());
        let permits = coordinator
            .arrive(0, source(vec![8]), prepare_ok())
            .unwrap();
        other.join().unwrap();
        assert_eq!(
            permits,
            vec![8],
            "re-arrival decides the same round cleanly"
        );
        assert_eq!(coordinator.global_epoch(), 1);
    }
}
