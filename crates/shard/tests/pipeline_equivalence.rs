//! Differential property test for the pipelined epoch barrier: the same
//! seeded workload, run through a depth-1 (stop-the-world barrier) and a
//! depth-2 (pipelined) deployment, must yield serializable histories with
//! identical committed read-write semantics.
//!
//! The workload is a deterministic sequence of read/write transaction
//! specs, driven by one client with commit retries, so each committed
//! transaction's observations are a pure function of the committed state
//! before it.  Equality is checked at the *semantic* level: every read is
//! mapped to the (spec index, write sequence) that produced the value it
//! observed — raw bytes cannot be compared because the MVTSO timestamps
//! embedded in the tags differ between runs.  Both recorded histories also
//! go through the same serializability oracle `tests/sharded.rs` uses.

use obladi_common::config::ShardConfig;
use obladi_common::error::ObladiError;
use obladi_common::rng::DetRng;
use obladi_common::types::Key;
use obladi_shard::ShardedDb;
use obladi_testkit::history::{check_serializable, parse_tag, tag_value, History, TxnRecord};
use proptest::prelude::*;
use std::collections::HashMap;
use std::time::Duration;

/// One operation of a transaction spec.
#[derive(Debug, Clone, Copy)]
enum Op {
    Read(Key),
    Write(Key),
}

/// Generates a deterministic workload: `txns` specs of 3–5 operations over
/// a small hot key range that straddles the shards, so most transactions
/// are multi-leg cross-shard and the pipelined runs exercise dual-epoch
/// legs (adaptive round classes, late-read batches, and twin rebuilds on
/// rendezvous contradictions).
fn workload(seed: u64, txns: usize) -> Vec<Vec<Op>> {
    let mut rng = DetRng::new(seed ^ 0x9e3779b97f4a7c15);
    (0..txns)
        .map(|_| {
            let ops = 3 + rng.below_usize(3);
            (0..ops)
                .map(|_| {
                    let key = rng.below(10);
                    if rng.chance(0.5) {
                        Op::Read(key)
                    } else {
                        Op::Write(key)
                    }
                })
                .collect()
        })
        .collect()
}

/// A read observation, normalised across runs: which spec's which write
/// produced the observed value (`None` = the key's initial absence).
type Observation = Option<(usize, u32)>;

/// Runs the workload on a deployment of the given pipeline depth; returns
/// each committed spec's read observations plus the recorded history.
fn run_workload(depth: u32, seed: u64, specs: &[Vec<Op>]) -> (Vec<Vec<Observation>>, History, u64) {
    let mut config = ShardConfig::small_for_tests(3, 1_024);
    config.shard.epoch.batch_interval = Duration::from_millis(1);
    // Each sequentially-dependent read consumes one read batch (§6.4), so
    // R must cover a spec's worst case: pin read + 5 operation reads.
    config.shard.epoch.read_batches = 12;
    config.shard.epoch.pipeline_depth = depth;
    config.shard.seed = seed;
    let db = ShardedDb::open(config).expect("deployment must open");

    // Map from this run's MVTSO timestamps to spec indices, so observed
    // write tags can be normalised.
    let mut writer_spec: HashMap<u64, usize> = HashMap::new();
    let mut history = History::new();
    let mut all_observations = Vec::with_capacity(specs.len());

    let mut backoff = DetRng::new(seed ^ 0x05ee_d0ff);
    for (spec_index, spec) in specs.iter().enumerate() {
        let mut committed = None;
        for _attempt in 0..400 {
            // Jittered backoff: a fixed retry cadence can phase-lock onto
            // the shards' epoch rhythm (a cross-shard read needs both
            // shards outside their deciding window at once).
            std::thread::sleep(Duration::from_millis(1 + backoff.below(6)));
            let Ok(mut txn) = db.begin() else {
                continue;
            };
            // A virgin transaction may be transparently re-stamped by any
            // operation, which would invalidate the ids baked into the
            // write tags — so pin the id first with a read of a reserved,
            // never-written key (identical in both runs).
            let pin_key = 1_000 + spec_index as Key;
            let Ok(pin_value) = txn.read(pin_key) else {
                std::thread::sleep(Duration::from_millis(2));
                continue;
            };
            let id = txn.id();
            let mut record = TxnRecord::new(id);
            record.read(pin_key, pin_value);
            let mut observations = Vec::new();
            let mut failed = false;
            let mut seq = 0u32;
            for op in spec {
                match *op {
                    Op::Read(key) => match txn.read(key) {
                        Ok(value) => {
                            record.read(key, value.clone());
                            observations.push(value.as_deref().and_then(parse_tag).map(|tag| {
                                (*writer_spec.get(&tag.txn).unwrap_or(&usize::MAX), tag.seq)
                            }));
                        }
                        Err(_) => {
                            failed = true;
                            break;
                        }
                    },
                    Op::Write(key) => {
                        let value = tag_value(id, seq, b"eq");
                        match txn.write(key, value.clone()) {
                            Ok(()) => {
                                record.write(key, value);
                                seq += 1;
                            }
                            Err(_) => {
                                failed = true;
                                break;
                            }
                        }
                    }
                }
            }
            if failed {
                record.abort();
                history.push(record);
                std::thread::sleep(Duration::from_millis(2));
                continue;
            }
            match txn.commit_reported() {
                // Version order must use the id the transaction finally
                // serialized under (a twin rebuild re-stamps it); the value
                // tags keep the pinned id, which is what `writer_spec` maps.
                Ok((final_id, outcome)) if outcome.is_committed() => {
                    record.commit(final_id);
                    history.push(record);
                    writer_spec.insert(id, spec_index);
                    committed = Some(observations);
                    break;
                }
                _ => {
                    record.abort();
                    history.push(record);
                    std::thread::sleep(Duration::from_millis(2));
                }
            }
        }
        let observations = committed.unwrap_or_else(|| panic!("spec {spec_index} never committed"));
        all_observations.push(observations);
    }

    let epochs = db.global_epoch();
    db.shutdown();
    (all_observations, history, epochs)
}

fn run_case(seed: u64, txns: usize) -> Result<(), String> {
    let specs = workload(seed, txns);
    let (obs1, history1, _) = run_workload(1, seed, &specs);
    let (obs2, history2, _) = run_workload(2, seed, &specs);

    if obs1 != obs2 {
        let diff = obs1
            .iter()
            .zip(&obs2)
            .position(|(a, b)| a != b)
            .unwrap_or(usize::MAX);
        return Err(format!(
            "committed read-write semantics diverge at spec {diff}: depth-1 {:?} vs depth-2 {:?}",
            obs1.get(diff),
            obs2.get(diff)
        ));
    }
    check_serializable(&history1)
        .map_err(|v| format!("depth-1 history not serializable: {v:?}"))?;
    check_serializable(&history2)
        .map_err(|v| format!("depth-2 history not serializable: {v:?}"))?;
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(3))]

    /// Depth 1 and depth 2 execute the same seeded workload to identical
    /// committed read-write semantics, both serializable.
    #[test]
    fn pipeline_depths_are_semantically_equivalent(seed in 1u64..500) {
        if let Err(problem) = run_case(seed, 14) {
            return Err(TestCaseError::fail(problem));
        }
    }

    /// `select_leg_target` over every round-class × generation combination:
    /// class 0 composes with every shard (deciding epoch when sealed,
    /// executing epoch otherwise), class 1 joins only a sealed shard's
    /// executing epoch, and the single contradiction — class 1 over an
    /// unsealed shard — surfaces as a typed `PipelineIncompatible` liveness
    /// retry carrying the sampled generations.
    #[test]
    fn select_leg_target_covers_all_class_generation_combos(
        shard in 0usize..8,
        class in 0u8..=1,
        exec in any::<u64>(),
        sealed in any::<bool>(),
        deciding_gen in any::<u64>(),
    ) {
        let deciding = if sealed { Some(deciding_gen) } else { None };
        match obladi_shard::select_leg_target(shard, class, exec, deciding) {
            Ok(target) => match (class, deciding) {
                (0, Some(d)) => prop_assert_eq!(target, d),
                (0, None) | (1, Some(_)) => prop_assert_eq!(target, exec),
                _ => return Err(TestCaseError::fail(format!(
                    "class {class} with deciding {deciding:?} must not pick a target"
                ))),
            },
            Err(err) => {
                prop_assert!(
                    class == 1 && deciding.is_none(),
                    "only class 1 over an unsealed shard may fail, got {err} for \
                     class {} deciding {:?}",
                    class,
                    deciding
                );
                match &err {
                    ObladiError::PipelineIncompatible {
                        shard: s,
                        round_class,
                        exec_generation,
                        deciding_generation,
                    } => {
                        prop_assert_eq!(*s, shard);
                        prop_assert_eq!(*round_class, class);
                        prop_assert_eq!(*exec_generation, exec);
                        prop_assert_eq!(*deciding_generation, None);
                    }
                    other => return Err(TestCaseError::fail(format!(
                        "expected PipelineIncompatible, got {other:?}"
                    ))),
                }
                prop_assert!(err.is_retryable());
                prop_assert!(err.is_liveness_retry());
            }
        }
    }
}

/// A pinned deterministic case so the equivalence always runs even when
/// proptest's sampling is unlucky.
#[test]
fn pinned_seed_is_equivalent_across_depths() {
    run_case(42, 14).unwrap_or_else(|problem| panic!("{problem}"));
}
