//! Property tests for the shard router: determinism, stability across
//! re-open, and statistical uniformity of placement.
//!
//! Uniformity matters for more than load balance — the obliviousness
//! argument for sharded Obladi (see `crates/shard/README.md`) reduces what
//! the adversary learns from shard placement to what a uniform random
//! assignment would reveal, so the placement must actually *be*
//! indistinguishable from uniform.

use obladi_crypto::KeyMaterial;
use obladi_shard::ShardRouter;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Routing the same key twice on the same router gives the same shard,
    /// and the shard is always in range.
    #[test]
    fn routing_is_deterministic(
        seed in any::<u64>(),
        shards in 1usize..16,
        keys in prop::collection::vec(any::<u64>(), 1..64),
    ) {
        let router = ShardRouter::new(&KeyMaterial::for_tests(seed), shards);
        for &key in &keys {
            let shard = router.route(key);
            prop_assert!(shard < shards);
            prop_assert_eq!(shard, router.route(key));
        }
    }

    /// A router rebuilt from the same key material — as recovery does after
    /// a front-door restart — places every key identically, so no data is
    /// orphaned on the wrong shard.
    #[test]
    fn routing_is_stable_under_reopen(
        seed in any::<u64>(),
        shards in 1usize..16,
        keys in prop::collection::vec(any::<u64>(), 1..64),
    ) {
        let first = ShardRouter::new(&KeyMaterial::for_tests(seed), shards);
        let reopened = ShardRouter::new(&KeyMaterial::for_tests(seed), shards);
        for &key in &keys {
            prop_assert_eq!(first.route(key), reopened.route(key));
        }
    }

    /// Placement of a dense key range is statistically uniform: a Pearson
    /// chi-squared test over the shard histogram stays below the p = 0.001
    /// critical value for `shards - 1` degrees of freedom.
    #[test]
    fn routing_is_statistically_uniform(seed in any::<u64>(), base in any::<u64>()) {
        const SHARDS: usize = 8;
        const SAMPLES: u64 = 4096;
        // Critical value of the chi-squared distribution, 7 degrees of
        // freedom, p = 0.0001: strict enough to catch a systematically
        // skewed hash, loose enough that 32 honest draws all clear it.
        const CHI2_CRITICAL: f64 = 29.878;

        let router = ShardRouter::new(&KeyMaterial::for_tests(seed), SHARDS);
        let mut histogram = [0u64; SHARDS];
        for offset in 0..SAMPLES {
            // Dense (sequential) keys are the adversarially *worst* input
            // for a weak hash; the keyed MAC must spread them anyway.
            histogram[router.route(base.wrapping_add(offset))] += 1;
        }
        let expected = SAMPLES as f64 / SHARDS as f64;
        let chi2: f64 = histogram
            .iter()
            .map(|&observed| {
                let diff = observed as f64 - expected;
                diff * diff / expected
            })
            .sum();
        prop_assert!(
            chi2 < CHI2_CRITICAL,
            "chi-squared {chi2:.2} exceeds the p=0.001 bound {CHI2_CRITICAL} (histogram {histogram:?})"
        );
    }
}

/// Placement must not depend on access order or frequency: routing the same
/// key set in different orders, interleaved with repeats, yields the same
/// assignment (the router is a pure function of key and secret).
#[test]
fn placement_ignores_access_pattern() {
    let router = ShardRouter::new(&KeyMaterial::for_tests(99), 6);
    let forward: Vec<usize> = (0..256u64).map(|k| router.route(k)).collect();
    // Re-route in reverse with heavy repetition of a hot key in between.
    for key in (0..256u64).rev() {
        assert_eq!(router.route(key), forward[key as usize]);
        assert_eq!(router.route(17), forward[17]);
    }
}
