//! The pipelined epoch barrier's acceptance test: with three shards over
//! latency-bound storage, a shard's epoch `N+1` read batches demonstrably
//! start *before* epoch `N`'s cross-shard decision completes — the overlap
//! the stop-the-world rendezvous could never offer — and the coordinator's
//! entry points stay responsive while a decision's prepare I/O is in
//! flight on a latency-bound store (the parallel prepare hoist).
//!
//! The deployment is assembled by hand (like `self_crash.rs`) so an
//! instrumented gate can wrap each shard's [`ShardGate`] and timestamp the
//! decision window (`permit_commits` enter/exit) against the read-batch
//! starts the pipelined executor fires meanwhile.

use obladi_common::config::ObladiConfig;
use obladi_common::types::{EpochId, TxnId};
use obladi_core::proxy::{CandidateSource, EpochGate, ObladiDb, TxnPreparer};
use obladi_crypto::KeyMaterial;
use obladi_shard::{EpochCoordinator, ShardGate};
use obladi_storage::{InMemoryStore, LatencyStore, TrustedCounter, UntrustedStore};
use parking_lot::Mutex;
use std::sync::Arc;
use std::time::{Duration, Instant};

fn config(seed: u64) -> ObladiConfig {
    let mut config = ObladiConfig::small_for_tests(256);
    config.epoch.batch_interval = Duration::from_millis(1);
    config.seed = seed;
    config
}

/// Timestamped gate events of one shard.
#[derive(Default)]
struct GateTrace {
    /// `permit_commits` entry and exit per epoch.
    decisions: Vec<(EpochId, Instant, Instant)>,
    /// First-seen read-batch start per epoch.
    batch_starts: Vec<(EpochId, Instant)>,
}

/// Wraps a [`ShardGate`], recording when decisions and read batches run.
struct InstrumentedGate {
    inner: ShardGate,
    trace: Arc<Mutex<GateTrace>>,
}

impl EpochGate for InstrumentedGate {
    fn permit_commits(
        &self,
        epoch: EpochId,
        candidates: CandidateSource,
        preparer: TxnPreparer,
    ) -> obladi_common::error::Result<Vec<TxnId>> {
        let entered = Instant::now();
        let permits = self.inner.permit_commits(epoch, candidates, preparer);
        self.trace
            .lock()
            .decisions
            .push((epoch, entered, Instant::now()));
        permits
    }

    fn read_batch_starting(&self, epoch: EpochId) {
        let mut trace = self.trace.lock();
        if !trace.batch_starts.iter().any(|(e, _)| *e == epoch) {
            trace.batch_starts.push((epoch, Instant::now()));
        }
    }

    fn epoch_durable(&self, epoch: EpochId, committed: &[TxnId]) {
        self.inner.epoch_durable(epoch, committed);
    }

    fn epoch_finalized(&self, epoch: EpochId) {
        self.inner.epoch_finalized(epoch);
    }

    fn proxy_crashed(&self) {
        self.inner.proxy_crashed();
    }

    fn proxy_recovered(&self) {
        self.inner.proxy_recovered();
    }

    fn proxy_stopping(&self) {
        self.inner.proxy_stopping();
    }
}

/// A three-shard deployment where shard 2's storage is latency-bound, so
/// the fast shards' deciders park at the rendezvous for a measurable
/// stretch while their executors — at pipeline depth 2 — keep running the
/// next epoch's read batches.
#[test]
fn next_epoch_reads_start_before_the_previous_decision_completes() {
    let coordinator = Arc::new(EpochCoordinator::new(3));
    let mut shards = Vec::new();
    let mut traces = Vec::new();
    for index in 0..3usize {
        let base: Arc<dyn UntrustedStore> = Arc::new(InMemoryStore::new());
        let store: Arc<dyn UntrustedStore> = if index == 2 {
            // Latency-bound storage stretches shard 2's read phase, holding
            // the rendezvous open while the fast shards' executors run on.
            let mut profile = obladi_common::latency::LatencyProfile::for_backend(
                obladi_common::config::BackendKind::Dummy,
            );
            profile.read =
                obladi_common::latency::LatencyModel::with_mean(Duration::from_micros(600));
            Arc::new(LatencyStore::new(base, profile, 7))
        } else {
            base
        };
        let db = ObladiDb::open_with(
            config(index as u64 + 1),
            store,
            TrustedCounter::new(),
            KeyMaterial::for_tests(index as u64 + 1),
        )
        .unwrap();
        let trace = Arc::new(Mutex::new(GateTrace::default()));
        db.set_epoch_gate(Arc::new(InstrumentedGate {
            inner: ShardGate::new(coordinator.clone(), index),
            trace: trace.clone(),
        }));
        assert_eq!(db.config().epoch.pipeline_depth, 2);
        shards.push(db);
        traces.push(trace);
    }

    // Let the deployment tick through several global epochs; idle epochs
    // still run their (padded) read batches and rendezvous.
    let deadline = Instant::now() + Duration::from_secs(30);
    while coordinator.global_epoch() < 6 {
        assert!(
            Instant::now() < deadline,
            "deployment never completed 6 global epochs"
        );
        std::thread::sleep(Duration::from_millis(5));
    }
    for shard in &shards {
        shard.shutdown();
    }

    // The acceptance assertion: on a fast shard, some epoch N+1's first
    // read batch fired strictly before epoch N's decision completed.
    let mut overlaps = 0usize;
    for trace in traces.iter().take(2) {
        let trace = trace.lock();
        for &(epoch, entered, exited) in &trace.decisions {
            if let Some(&(_, started)) = trace
                .batch_starts
                .iter()
                .find(|(next, _)| *next == epoch + 1)
            {
                if started > entered && started < exited {
                    overlaps += 1;
                }
            }
        }
    }
    assert!(
        overlaps > 0,
        "no epoch N+1 read batch started inside epoch N's decision window; \
         the barrier is not pipelined"
    );
}

/// The depth-1 control: with the pipeline disabled, no next-epoch read
/// batch may start inside the previous epoch's decision window.
#[test]
fn depth_one_keeps_the_stop_the_world_barrier() {
    let coordinator = Arc::new(EpochCoordinator::new(2));
    let mut shards = Vec::new();
    let mut traces = Vec::new();
    for index in 0..2usize {
        let mut cfg = config(index as u64 + 10);
        cfg.epoch.pipeline_depth = 1;
        let db = ObladiDb::open_with(
            cfg,
            Arc::new(InMemoryStore::new()),
            TrustedCounter::new(),
            KeyMaterial::for_tests(index as u64 + 10),
        )
        .unwrap();
        let trace = Arc::new(Mutex::new(GateTrace::default()));
        db.set_epoch_gate(Arc::new(InstrumentedGate {
            inner: ShardGate::new(coordinator.clone(), index),
            trace: trace.clone(),
        }));
        shards.push(db);
        traces.push(trace);
    }
    let deadline = Instant::now() + Duration::from_secs(30);
    while coordinator.global_epoch() < 6 {
        assert!(Instant::now() < deadline, "no progress at depth 1");
        std::thread::sleep(Duration::from_millis(5));
    }
    for shard in &shards {
        shard.shutdown();
    }
    for trace in &traces {
        let trace = trace.lock();
        for &(epoch, entered, exited) in &trace.decisions {
            if let Some(&(_, started)) = trace
                .batch_starts
                .iter()
                .find(|(next, _)| *next == epoch + 1)
            {
                assert!(
                    !(started > entered && started < exited),
                    "depth 1 must not overlap: epoch {} batch started inside epoch {epoch}'s \
                     decision window",
                    epoch + 1
                );
            }
        }
    }
}
