//! Recovery idempotence for the durable cross-shard prepare protocol.
//!
//! Recovery itself can crash: the in-doubt replay writes buckets, appends a
//! checkpoint and an epoch-commit record, and any of those can fail.  The
//! protocol's answer is that the replay only becomes real atomically with
//! the epoch-commit record, so re-running recovery — after a failure at any
//! point of the replay — must converge to the same committed set as one
//! clean run.  This property test sweeps seeds, the victim side, and
//! whether a second crash is injected *during* the recovery replay, reusing
//! the testkit's `shard_chaos` drive helpers.

use obladi_storage::wal::WalRecordKind;
use obladi_storage::{CrashOp, CrashPoint, FaultPlan};
use obladi_testkit::history::History;
use obladi_testkit::shard_chaos::{
    cross_shard_pair, open_faulty_deployment, read_pair, wait_for, write_pair_tagged,
};
use proptest::prelude::*;
use std::time::Duration;

fn run_case(seed: u64, victim_second: bool, crash_during_replay: bool) -> Result<(), String> {
    let deployment = open_faulty_deployment(seed).map_err(|e| format!("open failed: {e}"))?;
    let db = &deployment.db;
    let pair = cross_shard_pair(db);
    let victim = if victim_second {
        db.router().route(pair.1)
    } else {
        db.router().route(pair.0)
    };
    let fault = deployment.faults[victim].clone();
    let mut history = History::new();

    // Seed, then drive a cross-shard transaction into the voted-but-not-
    // durable window on the victim (commit record lost).
    write_pair_tagged(db, pair, &mut history, 100, &|| false)
        .ok_or_else(|| "failed to seed the pair".to_string())?;

    fault.set_plan(FaultPlan::crash_at(CrashPoint::after_log_kind(
        WalRecordKind::Prepare.tag(),
        CrashOp::LogAppendKind(WalRecordKind::EpochCommit.tag()),
        1,
    )));
    let stop_fault = fault.clone();
    let voted = write_pair_tagged(db, pair, &mut history, 100, &move || {
        stop_fault.has_tripped()
    });
    let voted = voted.ok_or_else(|| "voted transaction was not acknowledged".to_string())?;
    // The commit is acknowledged at decision durability — *before* the
    // epoch-commit append the trigger arms on — so the acknowledgement can
    // win the race against the trip; wait for the crash to land instead of
    // sampling the trigger at the instant of the ack.
    wait_for(
        "the victim shard to self-crash",
        Duration::from_secs(20),
        &|| db.is_shard_crashed(victim),
    )
    .map_err(|e| e.to_string())?;
    if !fault.has_tripped() {
        return Err("crash trigger never fired".into());
    }

    // First recovery — optionally crashed *during* the in-doubt replay, at
    // the exact point where the replayed epoch would become durable.
    if crash_during_replay {
        fault.set_plan(FaultPlan::crash_at(CrashPoint::on_log_kind(
            WalRecordKind::EpochCommit.tag(),
            1,
        )));
        if db.recover_shard(victim).is_ok() {
            return Err("recovery should have crashed during the replay".into());
        }
    }
    fault.set_plan(FaultPlan::none());
    let report = db
        .recover_shard(victim)
        .map_err(|e| format!("recovery failed: {e}"))?;
    if report.replayed_commits < 1 {
        return Err(format!("expected an in-doubt replay, got {report:?}"));
    }

    // The committed set after (possibly interrupted, then re-run) recovery:
    // the voted transaction's writes on both shards.
    let first = read_pair(db, pair, &mut history).map_err(|e| e.to_string())?;
    if first != (Some(voted.0.clone()), Some(voted.1.clone())) {
        return Err(format!("voted transaction incomplete: {first:?}"));
    }

    // Idempotence: recover again (clean crash, no faults) — same set.
    db.crash_shard(victim);
    let again = db
        .recover_shard(victim)
        .map_err(|e| format!("second recovery failed: {e}"))?;
    if again.in_doubt != 0 {
        return Err(format!(
            "nothing may remain in doubt after a durable replay: {again:?}"
        ));
    }
    let second = read_pair(db, pair, &mut history).map_err(|e| e.to_string())?;
    if second != first {
        return Err(format!(
            "recovery not idempotent: {first:?} then {second:?}"
        ));
    }
    db.shutdown();
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Running recovery twice — including a crash in the middle of the
    /// in-doubt replay — yields the same committed set as running it once.
    #[test]
    fn recovery_is_idempotent_across_replay_crashes(
        seed in 1u64..1_000,
        victim_second in any::<bool>(),
        crash_during_replay in any::<bool>(),
    ) {
        if let Err(problem) = run_case(seed, victim_second, crash_during_replay) {
            return Err(TestCaseError::fail(problem));
        }
    }
}

/// The deterministic worst case, pinned outside proptest so it always runs:
/// crash during the replay on both victim sides.
#[test]
fn interrupted_replay_converges_on_both_victim_sides() {
    for victim_second in [false, true] {
        run_case(77, victim_second, true)
            .unwrap_or_else(|problem| panic!("victim_second={victim_second}: {problem}"));
    }
}
