//! Liveness regression test: a shard that crashes *on its own* (storage
//! faults fate-shared into a crash, not an explicit
//! `ShardedDb::crash_shard`) must be excluded from the epoch rendezvous, or
//! every healthy shard would park at the barrier forever.
//!
//! `ShardedDb` builds its own healthy stores, so the faulty shard is
//! assembled by hand from the same pieces: two gated proxies sharing one
//! coordinator, one of them over a `FaultyStore`.

use obladi_common::config::ObladiConfig;
use obladi_core::proxy::ObladiDb;
use obladi_crypto::KeyMaterial;
use obladi_shard::{EpochCoordinator, ShardGate};
use obladi_storage::{FaultPlan, FaultyStore, InMemoryStore, TrustedCounter};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn config(seed: u64) -> ObladiConfig {
    let mut config = ObladiConfig::small_for_tests(512);
    config.epoch.batch_interval = Duration::from_millis(1);
    config.seed = seed;
    config
}

#[test]
fn self_crashed_shard_does_not_stall_the_rendezvous() {
    let coordinator = Arc::new(EpochCoordinator::new(2));

    // Shard 0: healthy in-memory store.
    let healthy = ObladiDb::open(config(1)).unwrap();
    healthy.set_epoch_gate(Arc::new(ShardGate::new(coordinator.clone(), 0)));

    // Shard 1: a store that will start corrupting every read.
    let faulty_store = Arc::new(FaultyStore::new(
        Arc::new(InMemoryStore::new()),
        FaultPlan::none(),
        7,
    ));
    let faulty = ObladiDb::open_with(
        config(2),
        faulty_store.clone(),
        TrustedCounter::new(),
        KeyMaterial::for_tests(2),
    )
    .unwrap();
    faulty.set_epoch_gate(Arc::new(ShardGate::new(coordinator.clone(), 1)));

    // Both shards make rendezvous while healthy, and shard 1 commits real
    // data (so later reads fetch real, MAC-verified blocks).
    for key in 0..4u64 {
        let mut txn = faulty.begin().unwrap();
        txn.write(key, vec![key as u8; 8]).unwrap();
        assert!(txn.commit().unwrap().is_committed());
    }
    let deadline = Instant::now() + Duration::from_secs(10);
    while coordinator.global_epoch() < 3 {
        assert!(
            Instant::now() < deadline,
            "healthy rendezvous never started"
        );
        std::thread::sleep(Duration::from_millis(5));
    }

    // Poison shard 1's storage and force it to fetch committed blocks: the
    // read fault fate-shares into a self-crash (no crash_shard anywhere).
    faulty_store.set_plan(FaultPlan::corrupt(1.0));
    let deadline = Instant::now() + Duration::from_secs(10);
    while !faulty.is_crashed() {
        assert!(Instant::now() < deadline, "faulty shard never self-crashed");
        if let Ok(mut txn) = faulty.begin() {
            for key in 0..4u64 {
                if txn.read(key).is_err() {
                    break;
                }
            }
            let _ = txn.commit();
        }
        std::thread::sleep(Duration::from_millis(5));
    }

    // The healthy shard must keep completing global epochs alone — this is
    // the line that hangs if the self-crash never reaches the coordinator.
    let epoch_at_crash = coordinator.global_epoch();
    let deadline = Instant::now() + Duration::from_secs(10);
    while coordinator.global_epoch() < epoch_at_crash + 3 {
        assert!(
            Instant::now() < deadline,
            "rendezvous stalled behind the self-crashed shard"
        );
        std::thread::sleep(Duration::from_millis(5));
    }

    // And the healthy shard still commits.
    let mut txn = healthy.begin().unwrap();
    txn.write(1, vec![1]).unwrap();
    assert!(txn.commit().unwrap().is_committed());

    // Recovery re-admits the shard to the rendezvous via the gate hook.
    faulty_store.set_plan(FaultPlan::none());
    faulty.recover().unwrap();
    let rejoined_at = coordinator.global_epoch();
    let deadline = Instant::now() + Duration::from_secs(10);
    while coordinator.global_epoch() < rejoined_at + 3 {
        assert!(
            Instant::now() < deadline,
            "rendezvous stalled after the shard rejoined"
        );
        std::thread::sleep(Duration::from_millis(5));
    }
    let mut txn = faulty.begin().unwrap();
    txn.write(9, vec![9]).unwrap();
    assert!(txn.commit().unwrap().is_committed());

    healthy.shutdown();
    faulty.shutdown();
}
