//! The split ORAM client's acceptance test: with the read plane and the
//! write-back engine on separate threads, an epoch `N+1` read batch starts
//! *and completes* while epoch `N`'s write-back — the eviction round-trips,
//! the bucket flush and the checkpoint, stretched here by write-latency-bound
//! storage — is still in flight.  PR 3's pipelined barrier could only overlap
//! the rendezvous and decision I/O; the write-back stayed serialized behind
//! the one `&mut` ORAM client, which is exactly what the split removes.
//!
//! The depth-1 control shows the converse: with the pipeline disabled, no
//! next-epoch batch may even *start* inside the previous epoch's write-back
//! window.

use obladi_common::config::ObladiConfig;
use obladi_common::types::{EpochId, TxnId};
use obladi_core::proxy::{CandidateSource, EpochGate, ObladiDb, TxnPreparer};
use obladi_crypto::KeyMaterial;
use obladi_shard::{EpochCoordinator, ShardGate};
use obladi_storage::{InMemoryStore, LatencyStore, TrustedCounter, UntrustedStore};
use parking_lot::Mutex;
use std::sync::Arc;
use std::time::{Duration, Instant};

fn config(seed: u64, depth: u32) -> ObladiConfig {
    let mut config = ObladiConfig::small_for_tests(256);
    config.epoch.batch_interval = Duration::from_millis(1);
    config.epoch.pipeline_depth = depth;
    config.seed = seed;
    config
}

/// A store whose *writes* are slow: reads (the plane we want to keep hot)
/// cost nothing, while every bucket write-back pays a real round-trip.
fn write_latency_store(mean: Duration, seed: u64) -> Arc<dyn UntrustedStore> {
    let mut profile = obladi_common::latency::LatencyProfile::for_backend(
        obladi_common::config::BackendKind::Dummy,
    );
    profile.write = obladi_common::latency::LatencyModel::with_mean(mean);
    profile.read = obladi_common::latency::LatencyModel::with_mean(Duration::ZERO);
    Arc::new(LatencyStore::new(
        Arc::new(InMemoryStore::new()),
        profile,
        seed,
    ))
}

/// Timestamped gate events of one shard.
#[derive(Default)]
struct GateTrace {
    /// Write-back window per epoch: `write_back_starting` →
    /// `write_back_finished`.
    write_backs: Vec<(EpochId, Instant, Option<Instant>)>,
    /// Read-batch spans per epoch: `read_batch_starting` →
    /// `read_batch_finished` (batches run sequentially on the executor, so
    /// starts and finishes pair up in order).
    batch_starts: Vec<(EpochId, Instant)>,
    batch_finishes: Vec<(EpochId, Instant)>,
}

impl GateTrace {
    /// Pairs up starts and finishes into per-epoch batch spans.  The
    /// executor is a single thread, so within one epoch the i-th recorded
    /// finish belongs to the i-th recorded start.
    fn batch_spans(&self) -> Vec<(EpochId, Instant, Instant)> {
        let mut spans = Vec::new();
        let epochs: std::collections::BTreeSet<EpochId> =
            self.batch_starts.iter().map(|(e, _)| *e).collect();
        for epoch in epochs {
            let starts = self.batch_starts.iter().filter(|(e, _)| *e == epoch);
            let finishes = self.batch_finishes.iter().filter(|(e, _)| *e == epoch);
            for (&(_, start), &(_, finish)) in starts.zip(finishes) {
                if finish >= start {
                    spans.push((epoch, start, finish));
                }
            }
        }
        spans
    }
}

/// Wraps a [`ShardGate`], timestamping write-back windows and batch spans.
struct InstrumentedGate {
    inner: ShardGate,
    trace: Arc<Mutex<GateTrace>>,
}

impl EpochGate for InstrumentedGate {
    fn permit_commits(
        &self,
        epoch: EpochId,
        candidates: CandidateSource,
        preparer: TxnPreparer,
    ) -> obladi_common::error::Result<Vec<TxnId>> {
        self.inner.permit_commits(epoch, candidates, preparer)
    }

    fn read_batch_starting(&self, epoch: EpochId) {
        self.trace.lock().batch_starts.push((epoch, Instant::now()));
    }

    fn read_batch_finished(&self, epoch: EpochId) {
        self.trace
            .lock()
            .batch_finishes
            .push((epoch, Instant::now()));
    }

    fn write_back_starting(&self, epoch: EpochId) {
        self.trace
            .lock()
            .write_backs
            .push((epoch, Instant::now(), None));
    }

    fn write_back_finished(&self, epoch: EpochId) {
        let mut trace = self.trace.lock();
        if let Some(entry) = trace
            .write_backs
            .iter_mut()
            .rev()
            .find(|(e, _, end)| *e == epoch && end.is_none())
        {
            entry.2 = Some(Instant::now());
        }
    }

    fn epoch_durable(&self, epoch: EpochId, committed: &[TxnId]) {
        self.inner.epoch_durable(epoch, committed);
    }

    fn epoch_finalized(&self, epoch: EpochId) {
        self.inner.epoch_finalized(epoch);
    }

    fn proxy_crashed(&self) {
        self.inner.proxy_crashed();
    }

    fn proxy_recovered(&self) {
        self.inner.proxy_recovered();
    }

    fn proxy_stopping(&self) {
        self.inner.proxy_stopping();
    }
}

/// Builds a 2-shard deployment over write-latency-bound storage, runs it
/// for `epochs` global epochs, and returns each shard's trace.
fn run_deployment(depth: u32, write_latency: Duration, epochs: u64) -> Vec<Arc<Mutex<GateTrace>>> {
    let coordinator = Arc::new(EpochCoordinator::new(2));
    let mut shards = Vec::new();
    let mut traces = Vec::new();
    for index in 0..2usize {
        let store = write_latency_store(write_latency, index as u64 + 31);
        let db = ObladiDb::open_with(
            config(index as u64 + 21, depth),
            store,
            TrustedCounter::new(),
            KeyMaterial::for_tests(index as u64 + 21),
        )
        .unwrap();
        let trace = Arc::new(Mutex::new(GateTrace::default()));
        db.set_epoch_gate(Arc::new(InstrumentedGate {
            inner: ShardGate::new(coordinator.clone(), index),
            trace: trace.clone(),
        }));
        shards.push(db);
        traces.push(trace);
    }

    // Idle epochs still run padded read batches, advance the eviction
    // schedule and flush the resulting buffered buckets, so every epoch has
    // a real write-back window without any client traffic.
    let deadline = Instant::now() + Duration::from_secs(60);
    while coordinator.global_epoch() < epochs {
        assert!(
            Instant::now() < deadline,
            "deployment never completed {epochs} global epochs"
        );
        std::thread::sleep(Duration::from_millis(5));
    }
    for shard in &shards {
        shard.shutdown();
    }
    traces
}

/// The acceptance assertion: at depth 2 some epoch `N+1` read batch starts
/// *and finishes* strictly inside epoch `N`'s write-back window.
#[test]
fn next_epoch_read_batch_completes_inside_previous_write_back() {
    let traces = run_deployment(2, Duration::from_millis(3), 6);
    let mut contained = 0usize;
    for trace in &traces {
        let trace = trace.lock();
        let spans = trace.batch_spans();
        for &(epoch, wb_start, wb_end) in &trace.write_backs {
            let Some(wb_end) = wb_end else { continue };
            for &(batch_epoch, start, finish) in &spans {
                if batch_epoch == epoch + 1 && start > wb_start && finish < wb_end {
                    contained += 1;
                }
            }
        }
    }
    assert!(
        contained > 0,
        "no epoch N+1 read batch completed inside epoch N's write-back window; \
         the ORAM client's read plane is still serialized behind the write-back engine"
    );
}

/// The depth-1 control: with the pipeline disabled the executor cannot even
/// *start* a next-epoch batch until the previous epoch's write-back (and
/// publish) completed — zero overlap, by construction.
#[test]
fn depth_one_never_overlaps_the_write_back_window() {
    let traces = run_deployment(1, Duration::from_millis(1), 6);
    for trace in &traces {
        let trace = trace.lock();
        for &(epoch, wb_start, wb_end) in &trace.write_backs {
            let Some(wb_end) = wb_end else { continue };
            for &(batch_epoch, start) in &trace.batch_starts {
                assert!(
                    !(batch_epoch == epoch + 1 && start > wb_start && start < wb_end),
                    "depth 1 must not overlap: an epoch {} batch started inside epoch \
                     {epoch}'s write-back window",
                    epoch + 1
                );
            }
        }
    }
}
