//! Regression test for the all-proxies-parked hang at the cross-shard
//! epoch barrier.
//!
//! The observed failure shape: one shard's decider never returns from its
//! epoch rendezvous, so every other shard's decider parks at
//! `EpochCoordinator::arrive` waiting for it — forever.  With pipeline
//! depth 2 each executor then drains its held-back read batches and parks
//! too, and the whole deployment (clients included) hangs with no
//! diagnostics.
//!
//! The deployment is assembled by hand (like `pipeline_overlap.rs`) so an
//! instrumented gate can reproduce the shape deterministically: shard 1's
//! gate blocks in `permit_commits` without ever arriving at the
//! coordinator.  The barrier watchdog must convert shard 0's park into a
//! typed, diagnosed failure — its epochs finalise with empty permit sets
//! and its clients get retryable aborts — instead of hanging any test run
//! indefinitely.

use obladi_common::config::ObladiConfig;
use obladi_common::error::Result;
use obladi_common::types::{EpochId, TxnId};
use obladi_core::proxy::{CandidateSource, EpochGate, ObladiDb, TxnPreparer};
use obladi_crypto::KeyMaterial;
use obladi_shard::{EpochCoordinator, ShardGate};
use obladi_storage::{InMemoryStore, TrustedCounter};
use parking_lot::{Condvar, Mutex};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A gate that parks its shard's decider until released, without ever
/// arriving at the coordinator — the deterministic stand-in for a decider
/// lost to a stuck prepare or a wedged storage daemon.
struct ParkedGate {
    inner: ShardGate,
    released: Arc<(Mutex<bool>, Condvar)>,
}

impl EpochGate for ParkedGate {
    fn permit_commits(
        &self,
        epoch: EpochId,
        candidates: CandidateSource,
        preparer: TxnPreparer,
    ) -> Result<Vec<TxnId>> {
        let (lock, condvar) = &*self.released;
        let mut released = lock.lock();
        while !*released {
            condvar.wait(&mut released);
        }
        drop(released);
        self.inner.permit_commits(epoch, candidates, preparer)
    }

    fn epoch_durable(&self, epoch: EpochId, committed: &[TxnId]) {
        self.inner.epoch_durable(epoch, committed);
    }

    fn proxy_crashed(&self) {
        self.inner.proxy_crashed();
    }

    fn proxy_recovered(&self) {
        self.inner.proxy_recovered();
    }

    fn proxy_stopping(&self) {
        self.inner.proxy_stopping();
    }
}

#[test]
fn stalled_rendezvous_surfaces_as_typed_retryable_aborts_not_a_hang() {
    let coordinator = Arc::new(EpochCoordinator::new(2).with_watchdog(Duration::from_millis(250)));
    let released = Arc::new((Mutex::new(false), Condvar::new()));

    let mut config = ObladiConfig::small_for_tests(256);
    config.epoch.batch_interval = Duration::from_millis(1);

    let mut shards = Vec::new();
    for index in 0..2usize {
        let mut cfg = config.clone();
        cfg.seed = index as u64 + 1;
        let db = ObladiDb::open_with(
            cfg,
            Arc::new(InMemoryStore::new()),
            TrustedCounter::new(),
            KeyMaterial::for_tests(index as u64 + 1),
        )
        .unwrap();
        if index == 1 {
            db.set_epoch_gate(Arc::new(ParkedGate {
                inner: ShardGate::new(coordinator.clone(), index),
                released: released.clone(),
            }));
        } else {
            db.set_epoch_gate(Arc::new(ShardGate::new(coordinator.clone(), index)));
        }
        shards.push(db);
    }

    let stalled_before = obladi_obs::global().counter("proxy.gate.stalled").get();
    let fired_before = obladi_obs::global()
        .counter("shard.coordinator.watchdog_fired")
        .get();

    // A client transaction on the healthy shard: its commit decision needs
    // the rendezvous that shard 1 will never join.  Before the watchdog
    // this call parked forever; now it must come back within a couple of
    // watchdog periods as a plain retryable abort.
    let started = Instant::now();
    let mut txn = shards[0].begin().unwrap();
    txn.write(1, vec![1]).unwrap();
    txn.request_commit().unwrap();
    let outcome = txn.await_outcome().unwrap();
    let waited = started.elapsed();

    assert!(
        !outcome.is_committed(),
        "no unanimous rendezvous ever completed, the commit cannot have been permitted"
    );
    assert!(
        waited < Duration::from_secs(10),
        "the watchdog must bound the barrier wait, but the client waited {waited:?}"
    );
    assert_eq!(
        coordinator.global_epoch(),
        0,
        "no round can complete while shard 1 never arrives"
    );
    assert!(
        obladi_obs::global()
            .counter("shard.coordinator.watchdog_fired")
            .get()
            > fired_before,
        "the barrier watchdog must have fired"
    );
    assert!(
        obladi_obs::global().counter("proxy.gate.stalled").get() > stalled_before,
        "the proxy must record the stalled gate instead of crashing or hanging"
    );

    // Release shard 1's parked decider before tearing down, or the shutdown
    // join would inherit the very hang this test guards against.
    coordinator.shutdown();
    {
        let (lock, condvar) = &*released;
        *lock.lock() = true;
        condvar.notify_all();
    }
    for shard in &shards {
        shard.shutdown();
    }
}
