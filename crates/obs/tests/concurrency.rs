//! Writers-vs-reader torture: N threads hammer counters and histograms
//! while a reader snapshots mid-flight.  Counters must end exact, and
//! every mid-flight histogram snapshot must be internally consistent and
//! monotone in (count, sum) against the previous one.

use obladi_obs::MetricsRegistry;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

const THREADS: u64 = 8;
const OPS_PER_THREAD: u64 = 20_000;

#[test]
fn counters_exact_and_histograms_monotone_under_contention() {
    let registry = Arc::new(MetricsRegistry::new());
    let done = Arc::new(AtomicBool::new(false));

    std::thread::scope(|scope| {
        for t in 0..THREADS {
            let registry = registry.clone();
            scope.spawn(move || {
                let counter = registry.counter("torture.count");
                let histogram = registry.histogram("torture.lat_us");
                let gauge = registry.gauge("torture.level");
                for i in 0..OPS_PER_THREAD {
                    counter.inc();
                    histogram.record(t * OPS_PER_THREAD + i + 1);
                    gauge.set(i as i64);
                }
            });
        }

        // Reader: snapshot continuously while the writers run.  Histogram
        // count/sum must never move backwards, every snapshot must be
        // internally consistent, and counters must never exceed the final
        // total.
        let reader_registry = registry.clone();
        let reader_done = done.clone();
        let reader = scope.spawn(move || {
            let mut last_count = 0u64;
            let mut last_sum = 0u64;
            let mut snapshots = 0u64;
            while !reader_done.load(Ordering::Relaxed) {
                let snapshot = reader_registry.snapshot();
                if let Some(h) = snapshot.histogram("torture.lat_us") {
                    assert!(
                        h.count >= last_count,
                        "count went backwards: {} -> {}",
                        last_count,
                        h.count
                    );
                    assert!(
                        h.sum >= last_sum,
                        "sum went backwards: {} -> {}",
                        last_sum,
                        h.sum
                    );
                    assert_eq!(h.count, h.buckets.iter().sum::<u64>());
                    if h.count > 0 {
                        assert!(h.p50() <= h.p99());
                    }
                    last_count = h.count;
                    last_sum = h.sum;
                }
                let count = snapshot.counter("torture.count");
                assert!(count <= THREADS * OPS_PER_THREAD);
                snapshots += 1;
            }
            snapshots
        });

        // `scope` joins the writers when this closure returns, but the
        // reader must stop first — so join the writers implicitly by
        // waiting for the counter to hit its total, then release it.
        let counter = registry.counter("torture.count");
        while counter.get() < THREADS * OPS_PER_THREAD {
            std::thread::yield_now();
        }
        done.store(true, Ordering::Relaxed);
        let snapshots = reader.join().unwrap();
        assert!(snapshots > 0);
    });

    let snapshot = registry.snapshot();
    assert_eq!(snapshot.counter("torture.count"), THREADS * OPS_PER_THREAD);
    let h = snapshot.histogram("torture.lat_us").unwrap();
    assert_eq!(h.count, THREADS * OPS_PER_THREAD);
    // Sum of 1..=N over all threads' disjoint ranges.
    let n = THREADS * OPS_PER_THREAD;
    assert_eq!(h.sum, n * (n + 1) / 2);
    assert_eq!(h.max, n);
}
