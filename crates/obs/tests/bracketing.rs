//! Property: the log-bucketed histogram's percentiles bracket the exact
//! order statistics computed by `LatencyRecorder` over the same samples —
//! never below the true value, never more than one bucket width (a factor
//! of two) above it.

use obladi_common::stats::LatencyRecorder;
use obladi_obs::MetricsRegistry;
use proptest::prelude::*;
use std::time::Duration;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn histogram_percentiles_bracket_exact_ones(
        samples in prop::collection::vec(0u64..2_000_000, 1..300),
        p in 0u32..=100,
    ) {
        let registry = MetricsRegistry::new();
        let histogram = registry.histogram("bracket.us");
        let mut exact = LatencyRecorder::new();
        for &us in &samples {
            histogram.record(us);
            exact.record(Duration::from_micros(us));
        }

        let p = p as f64;
        let truth = exact.percentile(p).as_micros() as u64;
        let approx = histogram.snapshot().percentile(p);

        // Upper bound of the true value's bucket, clamped like the
        // histogram clamps to its observed max.
        prop_assert!(
            approx >= truth,
            "histogram p{p} = {approx} fell below the exact {truth}"
        );
        if truth == 0 {
            prop_assert_eq!(approx, 0);
        } else {
            prop_assert!(
                approx <= truth.saturating_mul(2),
                "histogram p{p} = {approx} more than one bucket above exact {truth}"
            );
        }
    }

    /// Mean and max are tracked exactly (not bucketed), so they must agree
    /// with the recorder to within integer-division rounding.
    #[test]
    fn histogram_mean_and_max_are_exact(
        samples in prop::collection::vec(0u64..2_000_000, 1..300),
    ) {
        let registry = MetricsRegistry::new();
        let histogram = registry.histogram("exact.us");
        let mut exact = LatencyRecorder::new();
        for &us in &samples {
            histogram.record(us);
            exact.record(Duration::from_micros(us));
        }
        let snapshot = histogram.snapshot();
        prop_assert_eq!(snapshot.max, exact.max().as_micros() as u64);
        let mean_diff = (snapshot.mean() - exact.mean().as_micros() as f64).abs();
        prop_assert!(mean_diff <= 1.0, "means diverged by {mean_diff}");
    }
}
