//! The process-wide kill switch, exercised in its own test binary: the
//! flag is global, so testing it alongside parallel exact-count tests
//! would race.

#[test]
fn disabled_recording_is_a_no_op_everywhere() {
    let registry = obladi_obs::MetricsRegistry::new();
    let c = registry.counter("d.c");
    let g = registry.gauge("d.g");
    let h = registry.histogram("d.h");

    obladi_obs::set_enabled(false);
    assert!(!obladi_obs::is_enabled());
    c.add(100);
    g.set(9);
    h.record(7);
    obladi_obs::trace::global().record("while.disabled", 1, 5);
    obladi_obs::set_enabled(true);
    assert!(obladi_obs::is_enabled());

    assert_eq!(c.get(), 0);
    assert_eq!(g.get(), 0);
    assert_eq!(h.snapshot().count, 0);
    assert!(obladi_obs::trace::global()
        .events()
        .iter()
        .all(|e| e.kind != "while.disabled"));

    c.add(1);
    assert_eq!(c.get(), 1);
}
