//! The adversary-view trace: what untrusted storage actually observes.
//!
//! Everything else in this crate instruments the *trusted* side — phase
//! timings, abort causes, pipeline occupancy.  This module records the
//! other vantage point: the sequence of storage operations an adversary
//! watching the cloud endpoint sees, reduced to exactly the information
//! the threat model grants it — operation kind, physical address, sealed
//! payload *length* (never plaintext), wire frame sizes, and timing.
//!
//! Two halves:
//!
//! * [`AuditRing`] — a bounded ring of [`AuditOp`]s.  The storage crate's
//!   `RecordingStore` wrapper and the `obladi-stored` server loop push
//!   into it; benches export it via [`render_audit_json`] (`--trace-out`).
//! * [`TraceShape`] / [`compare`] — the offline differential auditor: two
//!   traces from *contrasting* workloads are reduced to their
//!   adversary-visible shape (per-epoch op rates, length sets, cadence)
//!   and compared.  The security argument of the paper's §9 says the
//!   shapes must be indistinguishable; a workload-dependent difference is
//!   a leak, and [`AuditVerdict::failures`] names it.
//!
//! Recording honours the process-wide kill switch
//! ([`crate::set_enabled`]), so the overhead-budget bench A/Bs it along
//! with the rest of the instrumentation.

use crate::metrics::ENABLED;
use parking_lot::Mutex;
use std::collections::VecDeque;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

/// Default number of operations the ring retains.
pub const DEFAULT_CAPACITY: usize = 1 << 18;

/// The operation classes an adversary can distinguish by message tag.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum AuditKind {
    /// A single-slot read (the ORAM access phase).
    ReadSlot,
    /// A whole-bucket read (recovery).
    ReadBucket,
    /// A bucket replacement (the eviction write phase).
    WriteBucket,
    /// A bucket-version query.
    BucketVersion,
    /// A shadow-paging revert.
    RevertBucket,
    /// A metadata write (checkpoints).
    PutMeta,
    /// A metadata read.
    GetMeta,
    /// A WAL append.
    AppendLog,
    /// A WAL read (recovery).
    ReadLog,
    /// A WAL truncation (either end).
    TruncateLog,
    /// A stats scrape or other control operation.
    Control,
}

impl AuditKind {
    /// Every kind, in tag order.
    pub const ALL: [AuditKind; 11] = [
        AuditKind::ReadSlot,
        AuditKind::ReadBucket,
        AuditKind::WriteBucket,
        AuditKind::BucketVersion,
        AuditKind::RevertBucket,
        AuditKind::PutMeta,
        AuditKind::GetMeta,
        AuditKind::AppendLog,
        AuditKind::ReadLog,
        AuditKind::TruncateLog,
        AuditKind::Control,
    ];

    /// Stable label used in exports and failure messages.
    pub fn label(&self) -> &'static str {
        match self {
            AuditKind::ReadSlot => "read_slot",
            AuditKind::ReadBucket => "read_bucket",
            AuditKind::WriteBucket => "write_bucket",
            AuditKind::BucketVersion => "bucket_version",
            AuditKind::RevertBucket => "revert_bucket",
            AuditKind::PutMeta => "put_meta",
            AuditKind::GetMeta => "get_meta",
            AuditKind::AppendLog => "append_log",
            AuditKind::ReadLog => "read_log",
            AuditKind::TruncateLog => "truncate_log",
            AuditKind::Control => "control",
        }
    }

    /// Whether the sealed payloads of this kind come from a fixed set of
    /// lengths (slots and buckets are constant-size sealed objects, so the
    /// auditor checks their length sets *exactly*; checkpoint and WAL
    /// payloads are variable-length and judged by rate only).
    pub fn fixed_length(&self) -> bool {
        matches!(
            self,
            AuditKind::ReadSlot | AuditKind::ReadBucket | AuditKind::WriteBucket
        )
    }
}

/// One adversary-visible operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AuditOp {
    /// Microseconds since the ring was created (or last reset).
    pub at_us: u64,
    /// Which storage endpoint (shard) served the operation.
    pub store: u32,
    /// The operation class.
    pub kind: AuditKind,
    /// Physical address: bucket id for bucket/slot operations, a hash of
    /// the key for metadata operations, 0 where not applicable.
    pub addr: u64,
    /// Sealed payload bytes (response body for reads, request body for
    /// writes) — lengths only, never contents.
    pub payload_len: u32,
    /// Wire size of the request frame, as framed by `obladi-transport`.
    pub req_frame: u32,
    /// Wire size of the response frame.
    pub resp_frame: u32,
}

/// A bounded ring of adversary-visible operations (oldest dropped under
/// pressure, with an explicit drop counter).
pub struct AuditRing {
    started: Mutex<Instant>,
    capacity: usize,
    ops: Mutex<VecDeque<AuditOp>>,
    dropped: AtomicU64,
}

impl Default for AuditRing {
    fn default() -> Self {
        Self::new(DEFAULT_CAPACITY)
    }
}

impl AuditRing {
    /// Creates a ring retaining up to `capacity` operations.
    pub fn new(capacity: usize) -> Self {
        AuditRing {
            started: Mutex::new(Instant::now()),
            capacity: capacity.max(1),
            ops: Mutex::new(VecDeque::new()),
            dropped: AtomicU64::new(0),
        }
    }

    /// Records one operation, stamped with the ring-relative time.
    #[inline]
    pub fn record(
        &self,
        store: u32,
        kind: AuditKind,
        addr: u64,
        payload_len: u32,
        req_frame: u32,
        resp_frame: u32,
    ) {
        if !ENABLED.load(Ordering::Relaxed) {
            return;
        }
        let at_us = self.started.lock().elapsed().as_micros() as u64;
        let mut ops = self.ops.lock();
        if ops.len() >= self.capacity {
            ops.pop_front();
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
        ops.push_back(AuditOp {
            at_us,
            store,
            kind,
            addr,
            payload_len,
            req_frame,
            resp_frame,
        });
    }

    /// The retained operations, in record order.
    pub fn ops(&self) -> Vec<AuditOp> {
        self.ops.lock().iter().copied().collect()
    }

    /// Number of retained operations.
    pub fn len(&self) -> usize {
        self.ops.lock().len()
    }

    /// Whether the ring holds no operations.
    pub fn is_empty(&self) -> bool {
        self.ops.lock().is_empty()
    }

    /// Operations dropped (oldest-first) since the last reset.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Clears the ring and restarts its clock (bench cells).
    pub fn reset(&self) {
        let mut ops = self.ops.lock();
        ops.clear();
        self.dropped.store(0, Ordering::Relaxed);
        *self.started.lock() = Instant::now();
    }
}

/// The process-wide ring the `obladi-stored` server loop records into —
/// what *this process's* storage endpoint showed the network.
pub fn global() -> &'static AuditRing {
    static GLOBAL: OnceLock<AuditRing> = OnceLock::new();
    GLOBAL.get_or_init(AuditRing::default)
}

/// Renders a recorded trace as a JSON object (`--trace-out` files; the
/// vendored serde shim has no serializer, so the JSON is hand-assembled
/// like [`crate::report`]'s).
pub fn render_audit_json(ops: &[AuditOp], dropped: u64, indent: usize) -> String {
    let pad = " ".repeat(indent);
    let inner = " ".repeat(indent + 2);
    let field = " ".repeat(indent + 4);
    let mut out = String::new();
    let _ = writeln!(out, "{pad}{{");
    let _ = writeln!(out, "{inner}\"dropped\": {dropped},");
    let _ = writeln!(out, "{inner}\"ops\": [");
    for (i, op) in ops.iter().enumerate() {
        let comma = if i + 1 == ops.len() { "" } else { "," };
        let _ = writeln!(
            out,
            "{field}{{\"at_us\": {}, \"store\": {}, \"kind\": \"{}\", \"addr\": {}, \
             \"payload_len\": {}, \"req_frame\": {}, \"resp_frame\": {}}}{comma}",
            op.at_us,
            op.store,
            op.kind.label(),
            op.addr,
            op.payload_len,
            op.req_frame,
            op.resp_frame,
        );
    }
    let _ = writeln!(out, "{inner}]");
    let _ = write!(out, "{pad}}}");
    out
}

// ---------------------------------------------------------------------
// The differential auditor
// ---------------------------------------------------------------------

/// Per-kind reduction of a trace.
#[derive(Debug, Clone, Default)]
pub struct KindShape {
    /// Operations of this kind.
    pub count: u64,
    /// Distinct sealed payload lengths, sorted.
    pub payload_lengths: Vec<u32>,
    /// Distinct wire frame lengths (request and response), sorted.
    pub frame_lengths: Vec<u32>,
    /// Mean sealed payload length.
    pub mean_payload: f64,
}

/// The adversary-visible shape of one recorded trace: everything the
/// differential auditor compares, nothing it does not.
#[derive(Debug, Clone)]
pub struct TraceShape {
    /// Human label for failure messages (e.g. `"read/d2"`).
    pub label: String,
    /// Wall-clock span of the recording, microseconds.
    pub wall_us: u64,
    /// Global epochs the run completed (the fixed rhythm's beat count).
    pub epochs: u64,
    /// Total operations.
    pub total_ops: u64,
    /// Per-kind shapes, in [`AuditKind::ALL`] order (zero-count kinds
    /// included so indexing is stable).
    pub kinds: Vec<(AuditKind, KindShape)>,
}

impl TraceShape {
    /// Reduces a recorded trace to its shape.  `epochs` comes from the
    /// proxy's own accounting (the adversary could count checkpoint
    /// writes; the proxy's number is the same and already at hand).
    pub fn from_ops(label: &str, ops: &[AuditOp], wall_us: u64, epochs: u64) -> TraceShape {
        let mut kinds: Vec<(AuditKind, KindShape)> = AuditKind::ALL
            .iter()
            .map(|&k| (k, KindShape::default()))
            .collect();
        for op in ops {
            let slot = kinds
                .iter_mut()
                .find(|(k, _)| *k == op.kind)
                .expect("ALL covers every kind");
            let shape = &mut slot.1;
            shape.count += 1;
            shape.mean_payload += op.payload_len as f64;
            if let Err(at) = shape.payload_lengths.binary_search(&op.payload_len) {
                shape.payload_lengths.insert(at, op.payload_len);
            }
            for frame in [op.req_frame, op.resp_frame] {
                if let Err(at) = shape.frame_lengths.binary_search(&frame) {
                    shape.frame_lengths.insert(at, frame);
                }
            }
        }
        for (_, shape) in &mut kinds {
            if shape.count > 0 {
                shape.mean_payload /= shape.count as f64;
            }
        }
        TraceShape {
            label: label.to_string(),
            wall_us,
            epochs,
            total_ops: ops.len() as u64,
            kinds,
        }
    }

    /// The shape of one kind.
    pub fn kind(&self, kind: AuditKind) -> &KindShape {
        &self
            .kinds
            .iter()
            .find(|(k, _)| *k == kind)
            .expect("ALL covers every kind")
            .1
    }

    /// Operations of `kind` per completed epoch.
    pub fn per_epoch(&self, kind: AuditKind) -> f64 {
        if self.epochs == 0 {
            0.0
        } else {
            self.kind(kind).count as f64 / self.epochs as f64
        }
    }

    /// Completed epochs per second — the rhythm's cadence.
    pub fn epochs_per_sec(&self) -> f64 {
        if self.wall_us == 0 {
            0.0
        } else {
            self.epochs as f64 / (self.wall_us as f64 / 1_000_000.0)
        }
    }
}

/// Tolerances the differential comparison applies.
#[derive(Debug, Clone, Copy)]
pub struct AuditTolerances {
    /// Maximum relative difference in per-epoch op rates.  Physical read
    /// counts are not *exactly* workload-independent here (a read of a
    /// bucket sitting in the engine's write buffer is served locally), so
    /// the bound mirrors the repo's long-standing obliviousness tests.
    pub rate_tol: f64,
    /// Maximum relative difference in epochs/second (the fixed rhythm).
    pub cadence_tol: f64,
    /// A kind participates in checks only if either trace saw at least
    /// this many of its operations (filters one-off control traffic).
    pub material_floor: u64,
}

impl Default for AuditTolerances {
    fn default() -> Self {
        AuditTolerances {
            rate_tol: 0.35,
            cadence_tol: 0.35,
            material_floor: 24,
        }
    }
}

/// The auditor's verdict: which checks ran, and every leak found.
#[derive(Debug, Clone)]
pub struct AuditVerdict {
    /// Number of individual checks performed.
    pub checks: usize,
    /// Human-readable description of every failed check.
    pub failures: Vec<String>,
}

impl AuditVerdict {
    /// Whether the traces are indistinguishable under the tolerances.
    pub fn pass(&self) -> bool {
        self.failures.is_empty()
    }

    /// One-line summary.
    pub fn summary(&self) -> String {
        if self.pass() {
            format!("PASS ({} checks)", self.checks)
        } else {
            format!(
                "FAIL ({} of {} checks): {}",
                self.failures.len(),
                self.checks,
                self.failures.join("; ")
            )
        }
    }
}

fn rel_diff(a: f64, b: f64) -> f64 {
    let scale = a.abs().max(b.abs());
    if scale == 0.0 {
        0.0
    } else {
        (a - b).abs() / scale
    }
}

/// Differentially compares two trace shapes.  Both traces must come from
/// runs the adversary could not tell apart; every failure names a
/// workload-dependent difference in what storage observed.
pub fn compare(a: &TraceShape, b: &TraceShape, tol: &AuditTolerances) -> AuditVerdict {
    let mut checks = 0usize;
    let mut failures: Vec<String> = Vec::new();

    // The rhythm must beat in both runs at all.
    checks += 1;
    if a.epochs == 0 || b.epochs == 0 {
        failures.push(format!(
            "no epoch rhythm: {} completed {} epochs, {} completed {}",
            a.label, a.epochs, b.label, b.epochs
        ));
        return AuditVerdict { checks, failures };
    }

    // Cadence: epochs per second is the batching clock, which must be
    // workload-independent.
    checks += 1;
    let cadence = rel_diff(a.epochs_per_sec(), b.epochs_per_sec());
    if cadence > tol.cadence_tol {
        failures.push(format!(
            "epoch cadence diverges {:.0}%: {} at {:.1}/s vs {} at {:.1}/s",
            cadence * 100.0,
            a.label,
            a.epochs_per_sec(),
            b.label,
            b.epochs_per_sec()
        ));
    }

    for &kind in &AuditKind::ALL {
        let ka = a.kind(kind);
        let kb = b.kind(kind);
        if ka.count.max(kb.count) < tol.material_floor {
            continue;
        }

        // A kind material in one trace must be material in the other.
        checks += 1;
        if ka.count.min(kb.count) == 0 {
            failures.push(format!(
                "{} ops appear only in one trace: {}={} vs {}={}",
                kind.label(),
                a.label,
                ka.count,
                b.label,
                kb.count
            ));
            continue;
        }

        // Per-epoch op rate: fixed-size padded batches mean the count of
        // physical operations per epoch cannot follow the workload.
        checks += 1;
        let rate = rel_diff(a.per_epoch(kind), b.per_epoch(kind));
        if rate > tol.rate_tol {
            failures.push(format!(
                "{} per-epoch rate leaks the workload ({:.0}% apart): {} at {:.1}/epoch vs {} \
                 at {:.1}/epoch",
                kind.label(),
                rate * 100.0,
                a.label,
                a.per_epoch(kind),
                b.label,
                b.per_epoch(kind)
            ));
        }

        // Sealed slots and buckets are constant-size objects: their
        // payload and wire-frame lengths must be drawn from the same
        // fixed set, exactly.  (Checkpoint/WAL payloads are variable by
        // design and judged by rate above; their residual length leakage
        // is a documented open item.)
        if kind.fixed_length() {
            checks += 1;
            if ka.payload_lengths != kb.payload_lengths {
                failures.push(format!(
                    "{} payload lengths differ: {} saw {:?} vs {} saw {:?}",
                    kind.label(),
                    a.label,
                    ka.payload_lengths,
                    b.label,
                    kb.payload_lengths
                ));
            }
            checks += 1;
            if ka.frame_lengths != kb.frame_lengths {
                failures.push(format!(
                    "{} wire frame lengths differ: {} saw {:?} vs {} saw {:?}",
                    kind.label(),
                    a.label,
                    ka.frame_lengths,
                    b.label,
                    kb.frame_lengths
                ));
            }
        }
    }

    AuditVerdict { checks, failures }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn op(at_us: u64, kind: AuditKind, payload_len: u32) -> AuditOp {
        AuditOp {
            at_us,
            store: 0,
            kind,
            addr: 7,
            payload_len,
            req_frame: 26,
            resp_frame: 18 + payload_len,
        }
    }

    fn uniform_trace(label: &str, reads: u64, payload: u32, epochs: u64) -> TraceShape {
        let ops: Vec<AuditOp> = (0..reads)
            .map(|i| op(i * 10, AuditKind::ReadSlot, payload))
            .collect();
        TraceShape::from_ops(label, &ops, 1_000_000, epochs)
    }

    #[test]
    fn ring_bounds_and_resets() {
        let ring = AuditRing::new(4);
        for i in 0..6 {
            ring.record(0, AuditKind::ReadSlot, i, 64, 26, 82);
        }
        assert_eq!(ring.len(), 4);
        assert_eq!(ring.dropped(), 2);
        let ops = ring.ops();
        assert_eq!(ops.first().unwrap().addr, 2, "oldest dropped first");
        ring.reset();
        assert!(ring.is_empty());
        assert_eq!(ring.dropped(), 0);
    }

    #[test]
    fn disabled_switch_silences_recording() {
        let ring = AuditRing::new(8);
        crate::set_enabled(false);
        ring.record(0, AuditKind::ReadSlot, 1, 64, 26, 82);
        crate::set_enabled(true);
        assert!(ring.is_empty());
    }

    #[test]
    fn identical_shapes_pass() {
        let a = uniform_trace("a", 480, 64, 10);
        let b = uniform_trace("b", 500, 64, 10);
        let verdict = compare(&a, &b, &AuditTolerances::default());
        assert!(verdict.pass(), "{}", verdict.summary());
        assert!(verdict.checks >= 4);
    }

    #[test]
    fn rate_leak_is_caught() {
        // Half the per-epoch read rate: the fixed-size batch was violated.
        let a = uniform_trace("clean", 500, 64, 10);
        let b = uniform_trace("leaky", 250, 64, 10);
        let verdict = compare(&a, &b, &AuditTolerances::default());
        assert!(!verdict.pass());
        assert!(
            verdict
                .failures
                .iter()
                .any(|f| f.contains("per-epoch rate")),
            "{}",
            verdict.summary()
        );
    }

    #[test]
    fn length_leak_is_caught() {
        let a = uniform_trace("fixed", 500, 64, 10);
        let mut ops: Vec<AuditOp> = (0..500)
            .map(|i| op(i * 10, AuditKind::ReadSlot, 64))
            .collect();
        ops[3].payload_len = 96; // one unsealed-length slot leaks
        let b = TraceShape::from_ops("variable", &ops, 1_000_000, 10);
        let verdict = compare(&a, &b, &AuditTolerances::default());
        assert!(!verdict.pass());
        assert!(
            verdict
                .failures
                .iter()
                .any(|f| f.contains("payload lengths differ")),
            "{}",
            verdict.summary()
        );
    }

    #[test]
    fn cadence_leak_is_caught() {
        let a = uniform_trace("steady", 500, 64, 10);
        let b = uniform_trace("stalled", 500, 64, 3);
        let verdict = compare(&a, &b, &AuditTolerances::default());
        assert!(!verdict.pass());
        assert!(
            verdict.failures.iter().any(|f| f.contains("cadence")),
            "{}",
            verdict.summary()
        );
    }

    #[test]
    fn dead_rhythm_fails_immediately() {
        let a = uniform_trace("live", 100, 64, 10);
        let b = uniform_trace("dead", 100, 64, 0);
        let verdict = compare(&a, &b, &AuditTolerances::default());
        assert!(!verdict.pass());
    }

    #[test]
    fn immaterial_kinds_are_ignored() {
        let mut ops: Vec<AuditOp> = (0..500)
            .map(|i| op(i * 10, AuditKind::ReadSlot, 64))
            .collect();
        // A couple of control scrapes in one trace only must not fail the
        // comparison.
        ops.push(op(9_999, AuditKind::Control, 0));
        let a = TraceShape::from_ops("with-control", &ops, 1_000_000, 10);
        let b = uniform_trace("without", 500, 64, 10);
        let verdict = compare(&a, &b, &AuditTolerances::default());
        assert!(verdict.pass(), "{}", verdict.summary());
    }

    #[test]
    fn audit_json_is_well_formed() {
        let ops = vec![op(1, AuditKind::ReadSlot, 64), op(2, AuditKind::PutMeta, 9)];
        let json = render_audit_json(&ops, 3, 0);
        assert!(json.contains("\"dropped\": 3"));
        assert!(json.contains("\"kind\": \"read_slot\""));
        assert!(json.contains("\"kind\": \"put_meta\""));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert!(!json.contains(",\n  ]"));
    }
}
