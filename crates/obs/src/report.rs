//! Renderers: a human-readable text report (chaos-failure dumps) and a
//! hand-built JSON snapshot (the benches' `--metrics-out` files — the
//! vendored serde shim has no serializer, so the JSON is assembled by
//! hand, like the `BENCH_*.json` writers).

use crate::metrics::{HistogramSnapshot, RegistrySnapshot};
use crate::trace::{SpanTracer, TraceEvent};
use std::fmt::Write as _;

/// How many trailing trace events the text report shows.
const REPORT_TRACE_TAIL: usize = 48;

/// Renders a registry snapshot (and optionally a tracer's tail) as a
/// human-readable report.
pub fn render_text(snapshot: &RegistrySnapshot, tracer: Option<&SpanTracer>) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "=== obs report ===");
    if !snapshot.counters.is_empty() {
        let _ = writeln!(out, "-- counters --");
        for (name, value) in &snapshot.counters {
            let _ = writeln!(out, "{name:<48} {value:>12}");
        }
    }
    if !snapshot.gauges.is_empty() {
        let _ = writeln!(out, "-- gauges --");
        for (name, value) in &snapshot.gauges {
            let _ = writeln!(out, "{name:<48} {value:>12}");
        }
    }
    if !snapshot.histograms.is_empty() {
        let _ = writeln!(out, "-- histograms (us) --");
        let _ = writeln!(
            out,
            "{:<48} {:>9} {:>11} {:>9} {:>9} {:>9}",
            "name", "count", "mean", "p50", "p99", "max"
        );
        for (name, h) in &snapshot.histograms {
            let _ = writeln!(
                out,
                "{:<48} {:>9} {:>11.1} {:>9} {:>9} {:>9}",
                name,
                h.count,
                h.mean(),
                h.p50(),
                h.p99(),
                h.max
            );
        }
    }
    if let Some(tracer) = tracer {
        let events = tracer.events();
        let dropped = tracer.dropped();
        let tail_start = events.len().saturating_sub(REPORT_TRACE_TAIL);
        let _ = writeln!(
            out,
            "-- trace tail ({} of {} events, {} dropped) --",
            events.len() - tail_start,
            events.len(),
            dropped
        );
        for event in &events[tail_start..] {
            let _ = writeln!(
                out,
                "  t+{:>10}us epoch {:>6} {:<32} {:>9}us",
                event.at_us, event.epoch, event.kind, event.dur_us
            );
        }
    }
    out
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

fn histogram_json(h: &HistogramSnapshot) -> String {
    format!(
        "{{\"count\": {}, \"sum_us\": {}, \"mean_us\": {:.1}, \"p50_us\": {}, \"p99_us\": {}, \
         \"max_us\": {}}}",
        h.count,
        h.sum,
        h.mean(),
        h.p50(),
        h.p99(),
        h.max,
    )
}

/// Renders a registry snapshot as a JSON object:
/// `{"counters": {...}, "gauges": {...}, "histograms": {name: {count, sum_us,
/// mean_us, p50_us, p99_us, max_us}}}`.
pub fn render_json(snapshot: &RegistrySnapshot, indent: usize) -> String {
    let pad = " ".repeat(indent);
    let inner = " ".repeat(indent + 2);
    let field = " ".repeat(indent + 4);
    let mut out = String::new();
    let _ = writeln!(out, "{pad}{{");

    let _ = writeln!(out, "{inner}\"counters\": {{");
    for (i, (name, value)) in snapshot.counters.iter().enumerate() {
        let comma = if i + 1 == snapshot.counters.len() {
            ""
        } else {
            ","
        };
        let _ = writeln!(out, "{field}\"{}\": {value}{comma}", json_escape(name));
    }
    let _ = writeln!(out, "{inner}}},");

    let _ = writeln!(out, "{inner}\"gauges\": {{");
    for (i, (name, value)) in snapshot.gauges.iter().enumerate() {
        let comma = if i + 1 == snapshot.gauges.len() {
            ""
        } else {
            ","
        };
        let _ = writeln!(out, "{field}\"{}\": {value}{comma}", json_escape(name));
    }
    let _ = writeln!(out, "{inner}}},");

    let _ = writeln!(out, "{inner}\"histograms\": {{");
    for (i, (name, h)) in snapshot.histograms.iter().enumerate() {
        let comma = if i + 1 == snapshot.histograms.len() {
            ""
        } else {
            ","
        };
        let _ = writeln!(
            out,
            "{field}\"{}\": {}{comma}",
            json_escape(name),
            histogram_json(h)
        );
    }
    let _ = writeln!(out, "{inner}}}");
    let _ = write!(out, "{pad}}}");
    out
}

/// Renders a tracer's merged events as a JSON array (newest last).
pub fn render_trace_json(events: &[TraceEvent], indent: usize) -> String {
    let pad = " ".repeat(indent);
    let inner = " ".repeat(indent + 2);
    let mut out = String::new();
    let _ = writeln!(out, "{pad}[");
    for (i, event) in events.iter().enumerate() {
        let comma = if i + 1 == events.len() { "" } else { "," };
        let _ = writeln!(
            out,
            "{inner}{{\"at_us\": {}, \"epoch\": {}, \"kind\": \"{}\", \"dur_us\": {}}}{comma}",
            event.at_us,
            event.epoch,
            json_escape(event.kind),
            event.dur_us
        );
    }
    let _ = write!(out, "{pad}]");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::MetricsRegistry;

    fn sample_registry() -> MetricsRegistry {
        let registry = MetricsRegistry::new();
        registry.counter("shard.abort.batch_full").add(3);
        registry.gauge("proxy.pipeline.deciding").set(1);
        registry.histogram("proxy.phase.gate_wait_us").record(1500);
        registry.histogram("proxy.phase.gate_wait_us").record(300);
        registry
    }

    #[test]
    fn text_report_contains_all_sections() {
        let registry = sample_registry();
        let tracer = SpanTracer::new(8);
        tracer.record("proxy.write_back", 4, 250);
        let text = render_text(&registry.snapshot(), Some(&tracer));
        assert!(text.contains("shard.abort.batch_full"));
        assert!(text.contains("proxy.pipeline.deciding"));
        assert!(text.contains("proxy.phase.gate_wait_us"));
        assert!(text.contains("proxy.write_back"));
        assert!(text.contains("epoch      4"));
    }

    #[test]
    fn json_is_well_formed() {
        let registry = sample_registry();
        let json = render_json(&registry.snapshot(), 0);
        // Structural sanity without a JSON parser: balanced braces, the
        // three sections, no trailing commas before closers.
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "{json}"
        );
        assert!(json.contains("\"counters\""));
        assert!(json.contains("\"gauges\""));
        assert!(json.contains("\"histograms\""));
        assert!(json.contains("\"shard.abort.batch_full\": 3"));
        assert!(json.contains("\"count\": 2"));
        assert!(!json.contains(",\n}"));
        assert!(!json.contains(",\n  }"));
    }

    #[test]
    fn trace_json_lists_events() {
        let tracer = SpanTracer::new(8);
        tracer.record("a", 1, 10);
        tracer.record("b", 2, 0);
        let json = render_trace_json(&tracer.events(), 0);
        assert!(json.contains("\"kind\": \"a\""));
        assert!(json.contains("\"epoch\": 2"));
        assert_eq!(json.matches('{').count(), 2);
        assert!(!json.contains(",\n]"));
    }

    #[test]
    fn escaping_handles_quotes() {
        assert_eq!(json_escape("a\"b\\c"), "a\\\"b\\\\c");
    }
}
