//! The epoch/txn span tracer: a bounded, per-thread ring of typed events.
//!
//! Every instrumented phase of the pipeline (a read batch, a gate
//! rendezvous, a write-back, a wedge) can drop a [`TraceEvent`] here:
//! *what* happened (`kind`), *which epoch* it belonged to, *when* it ended
//! and *how long* it took.  Events are written to a per-thread ring buffer
//! — the writer takes an uncontended `parking_lot` mutex on its own ring,
//! never a shared one — and the oldest events are dropped under pressure
//! (with an explicit drop counter), so tracing a minutes-long soak run
//! costs bounded memory and the tail of the trace always covers the
//! moments before a failure.
//!
//! [`SpanTracer::events`] merges all threads' rings into one time-ordered
//! view; [`crate::report`] renders the tail next to the metric tables, so
//! a chaos-sweep failure dump shows *what the pipeline was doing* when the
//! oracle tripped, not just the totals.

use crate::metrics::ENABLED;
use parking_lot::Mutex;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::Instant;

/// Default events retained per writer thread.
pub const DEFAULT_THREAD_CAPACITY: usize = 2048;

/// One recorded span: a typed event with its epoch and duration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Microseconds since the tracer was created, measured at record time
    /// (the span's *end*).
    pub at_us: u64,
    /// Static label of the span kind, e.g. `"proxy.gate_wait"`.
    pub kind: &'static str,
    /// The epoch (or other sequence number) the span belonged to.
    pub epoch: u64,
    /// Span duration in microseconds (0 for point events).
    pub dur_us: u64,
}

struct ThreadRing {
    events: Mutex<VecDeque<TraceEvent>>,
    dropped: AtomicU64,
}

/// The tracer: per-thread ring writers behind one registration list.
pub struct SpanTracer {
    /// Process-unique identity; keys the thread-local ring cache (a
    /// pointer address would collide once a dropped tracer's allocation is
    /// reused).
    id: u64,
    started: Instant,
    capacity: usize,
    rings: Mutex<Vec<Arc<ThreadRing>>>,
}

thread_local! {
    /// This thread's ring per tracer identity.  A thread touching several
    /// tracers (tests) keeps one ring per tracer.
    static THREAD_RINGS: std::cell::RefCell<Vec<(u64, Arc<ThreadRing>)>> =
        const { std::cell::RefCell::new(Vec::new()) };
}

impl Default for SpanTracer {
    fn default() -> Self {
        Self::new(DEFAULT_THREAD_CAPACITY)
    }
}

impl SpanTracer {
    /// Creates a tracer retaining up to `capacity` events per writer
    /// thread.
    pub fn new(capacity: usize) -> Self {
        static NEXT_ID: AtomicU64 = AtomicU64::new(0);
        SpanTracer {
            id: NEXT_ID.fetch_add(1, Ordering::Relaxed),
            started: Instant::now(),
            capacity: capacity.max(1),
            rings: Mutex::new(Vec::new()),
        }
    }

    fn thread_ring(&self) -> Arc<ThreadRing> {
        let id = self.id;
        THREAD_RINGS.with(|rings| {
            let mut rings = rings.borrow_mut();
            if let Some((_, ring)) = rings.iter().find(|(tracer, _)| *tracer == id) {
                return ring.clone();
            }
            let ring = Arc::new(ThreadRing {
                events: Mutex::new(VecDeque::with_capacity(self.capacity.min(64))),
                dropped: AtomicU64::new(0),
            });
            self.rings.lock().push(ring.clone());
            rings.push((id, ring.clone()));
            ring
        })
    }

    /// Records a completed span of `dur_us` microseconds ending now.
    #[inline]
    pub fn record(&self, kind: &'static str, epoch: u64, dur_us: u64) {
        if !ENABLED.load(Ordering::Relaxed) {
            return;
        }
        let at_us = self.started.elapsed().as_micros() as u64;
        let ring = self.thread_ring();
        let mut events = ring.events.lock();
        if events.len() >= self.capacity {
            events.pop_front();
            ring.dropped.fetch_add(1, Ordering::Relaxed);
        }
        events.push_back(TraceEvent {
            at_us,
            kind,
            epoch,
            dur_us,
        });
    }

    /// Starts a span; the guard records it (with its measured duration)
    /// when dropped.
    #[inline]
    pub fn span(&self, kind: &'static str, epoch: u64) -> SpanGuard<'_> {
        SpanGuard {
            tracer: self,
            kind,
            epoch,
            started: Instant::now(),
        }
    }

    /// All retained events across threads, merged in time order.
    pub fn events(&self) -> Vec<TraceEvent> {
        let rings = self.rings.lock();
        let mut all: Vec<TraceEvent> = Vec::new();
        for ring in rings.iter() {
            all.extend(ring.events.lock().iter().cloned());
        }
        all.sort_by_key(|e| e.at_us);
        all
    }

    /// Total events dropped (oldest-first) across all writer threads.
    pub fn dropped(&self) -> u64 {
        self.rings
            .lock()
            .iter()
            .map(|r| r.dropped.load(Ordering::Relaxed))
            .sum()
    }

    /// Clears every ring and the drop counters (bench cells).
    pub fn reset(&self) {
        let rings = self.rings.lock();
        for ring in rings.iter() {
            ring.events.lock().clear();
            ring.dropped.store(0, Ordering::Relaxed);
        }
    }
}

/// Records its span on drop (see [`SpanTracer::span`]).
pub struct SpanGuard<'a> {
    tracer: &'a SpanTracer,
    kind: &'static str,
    epoch: u64,
    started: Instant,
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        self.tracer.record(
            self.kind,
            self.epoch,
            self.started.elapsed().as_micros() as u64,
        );
    }
}

/// The process-wide tracer used by the pipeline's instrumentation points.
pub fn global() -> &'static SpanTracer {
    static GLOBAL: OnceLock<SpanTracer> = OnceLock::new();
    GLOBAL.get_or_init(SpanTracer::default)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_merge_in_time_order() {
        let tracer = SpanTracer::new(16);
        tracer.record("a", 1, 10);
        tracer.record("b", 1, 20);
        tracer.record("c", 2, 0);
        let events = tracer.events();
        assert_eq!(events.len(), 3);
        assert!(events.windows(2).all(|w| w[0].at_us <= w[1].at_us));
        assert_eq!(events[0].kind, "a");
        assert_eq!(events[2].epoch, 2);
        assert_eq!(tracer.dropped(), 0);
    }

    #[test]
    fn ring_drops_oldest_under_pressure() {
        let tracer = SpanTracer::new(4);
        for i in 0..10u64 {
            tracer.record("e", i, 0);
        }
        let events = tracer.events();
        assert_eq!(events.len(), 4);
        assert_eq!(tracer.dropped(), 6);
        // The tail survives, the head was dropped.
        assert_eq!(events.last().unwrap().epoch, 9);
        assert_eq!(events.first().unwrap().epoch, 6);
    }

    #[test]
    fn span_guard_records_duration() {
        let tracer = SpanTracer::new(16);
        {
            let _span = tracer.span("work", 7);
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        let events = tracer.events();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].kind, "work");
        assert_eq!(events[0].epoch, 7);
        assert!(events[0].dur_us >= 1000, "dur = {}", events[0].dur_us);
    }

    #[test]
    fn many_threads_write_concurrently() {
        let tracer = Arc::new(SpanTracer::new(64));
        std::thread::scope(|scope| {
            for t in 0..8u64 {
                let tracer = tracer.clone();
                scope.spawn(move || {
                    for i in 0..100u64 {
                        tracer.record("t", t * 1000 + i, i);
                    }
                });
            }
        });
        // 8 threads × 100 events, capped at 64 per thread.
        let events = tracer.events();
        assert_eq!(events.len(), 8 * 64);
        assert_eq!(tracer.dropped(), 8 * 36);
    }

    #[test]
    fn reset_clears_rings() {
        let tracer = SpanTracer::new(2);
        for i in 0..5 {
            tracer.record("x", i, 0);
        }
        tracer.reset();
        assert!(tracer.events().is_empty());
        assert_eq!(tracer.dropped(), 0);
        tracer.record("y", 1, 1);
        assert_eq!(tracer.events().len(), 1);
    }
}
