//! In-house observability for the Obladi reproduction — no external
//! dependencies beyond the vendored `parking_lot` shim.
//!
//! Two halves:
//!
//! * [`metrics`] — a sharded, lock-free [`MetricsRegistry`] of monotonic
//!   counters, gauges, and log-bucketed histograms.  Writers touch one
//!   cache-line-padded atomic stripe each; readers build consistent-enough
//!   [`RegistrySnapshot`]s without stalling the pipeline.  Cheap enough to
//!   stay on in release sweeps (a bench cell asserts the overhead).
//! * [`trace`] — a span tracer: bounded per-thread rings of typed
//!   [`trace::TraceEvent`]s (what, which epoch, how long), merged on
//!   demand.  The tail of the trace is dumped by [`report`] next to the
//!   metric tables when a chaos sweep fails.
//! * [`audit`] — the adversary-view trace: a bounded ring of what
//!   untrusted storage observes (op kind, address, sealed lengths, frame
//!   sizes, timing) plus the differential auditor that asserts two
//!   workloads produced indistinguishable trace shapes.
//!
//! Naming convention: flat dotted strings, `layer.scope.metric` —
//! `proxy.phase.gate_wait_us`, `shard.abort.pipeline_incompatible`,
//! `remote.bytes_tx`.  Durations are always microseconds and suffixed
//! `_us`.
//!
//! The whole layer sits behind one process-wide kill switch
//! ([`set_enabled`]) so the overhead bench can A/B the instrumented
//! binary against itself.

pub mod audit;
pub mod metrics;
pub mod report;
pub mod trace;

pub use audit::{AuditKind, AuditOp, AuditRing, AuditTolerances, AuditVerdict, TraceShape};
pub use metrics::{
    Counter, Gauge, Histogram, HistogramSnapshot, MetricsRegistry, RegistrySnapshot,
};
pub use trace::{SpanGuard, SpanTracer, TraceEvent};

use std::sync::atomic::Ordering;
use std::sync::OnceLock;

/// The process-wide registry used by the pipeline's instrumentation
/// points.  Benches call [`MetricsRegistry::reset`] between cells.
pub fn global() -> &'static MetricsRegistry {
    static GLOBAL: OnceLock<MetricsRegistry> = OnceLock::new();
    GLOBAL.get_or_init(MetricsRegistry::new)
}

/// Turns every recording site (metrics and traces, global or local) on or
/// off.  Reads of existing values still work while disabled.
pub fn set_enabled(enabled: bool) {
    metrics::ENABLED.store(enabled, Ordering::SeqCst);
}

/// Whether recording is currently enabled.
pub fn is_enabled() -> bool {
    metrics::ENABLED.load(Ordering::SeqCst)
}

/// Renders the global registry and the global tracer's tail as a
/// human-readable report.  Testkit dumps this on chaos-sweep failure.
pub fn report() -> String {
    report::render_text(&global().snapshot(), Some(trace::global()))
}
