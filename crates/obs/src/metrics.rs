//! The metrics registry: monotonic counters, gauges and log-bucketed
//! histograms, all updatable from any thread with nothing but atomics on
//! the hot path.
//!
//! # Design
//!
//! * **Counters** are striped across cache-line-padded atomic cells; each
//!   thread hashes to one stripe, so concurrent increments from the epoch
//!   executor, the decider and a pool of client threads do not bounce one
//!   cache line between cores.  Reads sum the stripes — exact once the
//!   writers' increments have landed (each increment is a single atomic
//!   `fetch_add`, so a snapshot taken mid-hammer sees a value between 0 and
//!   the true total, never garbage, and the final total is exact).
//! * **Gauges** are a single atomic `i64` (`set`/`add`); they track levels
//!   (pipeline occupancy, epoch period) rather than rates.
//! * **Histograms** bucket values by their binary magnitude (one bucket per
//!   power of two), which makes recording a single `fetch_add` and keeps
//!   percentile queries O(64).  A reported percentile is the *upper bound*
//!   of the bucket holding the true order statistic, so it brackets the
//!   exact value within one bucket width — good enough to attribute an
//!   epoch's milliseconds to phases, at a fraction of the cost of keeping
//!   raw samples.
//!
//! Handle types (`Counter`, `Gauge`, `Histogram`) are cheap `Arc`s handed
//! out by [`MetricsRegistry::counter`] & co.  Instrumented hot paths
//! resolve their handles once at construction time and touch only atomics
//! afterwards; cold paths (abort accounting) may look handles up by name
//! per event.  A process-wide kill switch ([`crate::set_enabled`]) turns
//! every record into a single relaxed load + branch, which is what the
//! overhead-budget bench cell compares against.

use parking_lot::RwLock;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Number of counter stripes.  Power of two; enough that a handful of
/// pipeline threads rarely share a stripe.
const STRIPES: usize = 16;

/// Process-wide recording switch (see [`crate::set_enabled`]).
pub(crate) static ENABLED: AtomicBool = AtomicBool::new(true);

#[inline]
fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// One cache line worth of counter cell, so stripes never false-share.
#[repr(align(64))]
#[derive(Default)]
struct PaddedCell(AtomicU64);

thread_local! {
    /// Each thread's stripe index, assigned round-robin at first use.
    static THREAD_STRIPE: usize = {
        static NEXT: AtomicU64 = AtomicU64::new(0);
        (NEXT.fetch_add(1, Ordering::Relaxed) as usize) % STRIPES
    };
}

#[inline]
fn stripe() -> usize {
    THREAD_STRIPE.with(|s| *s)
}

/// A monotonic counter striped over padded atomic cells.
#[derive(Default)]
pub struct CounterInner {
    cells: [PaddedCell; STRIPES],
}

/// Shared handle to a registered counter.
pub type Counter = Arc<CounterInner>;

impl CounterInner {
    /// Adds `n` to the counter.
    #[inline]
    pub fn add(&self, n: u64) {
        if enabled() {
            self.cells[stripe()].0.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Increments the counter by one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current total across all stripes.
    pub fn get(&self) -> u64 {
        self.cells.iter().map(|c| c.0.load(Ordering::Relaxed)).sum()
    }

    fn reset(&self) {
        for cell in &self.cells {
            cell.0.store(0, Ordering::Relaxed);
        }
    }
}

/// A gauge: an instantaneous level set or adjusted by its owner.
#[derive(Default)]
pub struct GaugeInner {
    value: AtomicI64,
}

/// Shared handle to a registered gauge.
pub type Gauge = Arc<GaugeInner>;

impl GaugeInner {
    /// Sets the gauge to `v`.
    #[inline]
    pub fn set(&self, v: i64) {
        if enabled() {
            self.value.store(v, Ordering::Relaxed);
        }
    }

    /// Adjusts the gauge by `delta` (may be negative).
    #[inline]
    pub fn add(&self, delta: i64) {
        if enabled() {
            self.value.fetch_add(delta, Ordering::Relaxed);
        }
    }

    /// Current level.
    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }

    fn reset(&self) {
        self.value.store(0, Ordering::Relaxed);
    }
}

/// Number of histogram buckets: bucket `b` holds values whose binary
/// magnitude is `b` (bucket 0 holds only zero, bucket 1 holds 1, bucket 2
/// holds 2–3, bucket `b` holds `2^(b-1)..2^b - 1`), covering all of `u64`.
const BUCKETS: usize = 65;

#[inline]
fn bucket_of(value: u64) -> usize {
    (u64::BITS - value.leading_zeros()) as usize
}

/// Inclusive upper bound of bucket `b` — what percentile queries report.
#[inline]
fn bucket_upper(b: usize) -> u64 {
    if b == 0 {
        0
    } else if b >= 64 {
        u64::MAX
    } else {
        (1u64 << b) - 1
    }
}

/// A log-bucketed histogram of `u64` values (conventionally microseconds).
pub struct HistogramInner {
    buckets: [AtomicU64; BUCKETS],
    sum: AtomicU64,
    max: AtomicU64,
}

/// Shared handle to a registered histogram.
pub type Histogram = Arc<HistogramInner>;

impl Default for HistogramInner {
    fn default() -> Self {
        HistogramInner {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }
}

impl HistogramInner {
    /// Records one value.
    #[inline]
    pub fn record(&self, value: u64) {
        if !enabled() {
            return;
        }
        self.buckets[bucket_of(value)].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Records a duration in microseconds.
    #[inline]
    pub fn record_duration(&self, d: Duration) {
        self.record(d.as_micros() as u64);
    }

    /// Times `body` and records its wall-clock duration in microseconds.
    #[inline]
    pub fn time<T>(&self, body: impl FnOnce() -> T) -> T {
        let start = std::time::Instant::now();
        let result = body();
        self.record_duration(start.elapsed());
        result
    }

    /// A consistent-enough snapshot for reporting: bucket counts are read
    /// once each; a concurrent recorder may straddle the reads, so the
    /// snapshot's count is monotone but not atomic with `sum`/`max`.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let buckets: Vec<u64> = self
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        let count: u64 = buckets.iter().sum();
        HistogramSnapshot {
            count,
            sum: self.sum.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
            buckets,
        }
    }

    fn reset(&self) {
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
        self.sum.store(0, Ordering::Relaxed);
        self.max.store(0, Ordering::Relaxed);
    }
}

/// Point-in-time view of one histogram.
#[derive(Debug, Clone)]
pub struct HistogramSnapshot {
    /// Number of recorded values.
    pub count: u64,
    /// Sum of recorded values.
    pub sum: u64,
    /// Largest recorded value.
    pub max: u64,
    /// Per-bucket counts (see [`HistogramInner`] for the bucket layout).
    pub buckets: Vec<u64>,
}

impl HistogramSnapshot {
    /// Mean of the recorded values (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The `p`-th percentile (`0.0..=100.0`), reported as the upper bound
    /// of the bucket containing that order statistic — the true value lies
    /// within one bucket width below the returned value.  Zero when empty.
    pub fn percentile(&self, p: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((p / 100.0) * (self.count - 1) as f64).round() as u64;
        let mut seen = 0u64;
        for (b, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen > rank {
                // Never report past the observed maximum: the top bucket's
                // upper bound can be far above it.
                return bucket_upper(b).min(self.max);
            }
        }
        self.max
    }

    /// Median (p50).
    pub fn p50(&self) -> u64 {
        self.percentile(50.0)
    }

    /// 99th percentile.
    pub fn p99(&self) -> u64 {
        self.percentile(99.0)
    }
}

enum Metric {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

/// The process-wide (or per-test) registry mapping names to metrics.
///
/// Registration takes a short write lock; handle lookup by name takes a
/// read lock; everything after that is atomics.  Names are flat strings —
/// the convention across the workspace is `layer.scope.metric`, e.g.
/// `proxy.phase.gate_wait_us` or `shard.abort.pipeline_incompatible`.
#[derive(Default)]
pub struct MetricsRegistry {
    metrics: RwLock<HashMap<String, Metric>>,
}

impl MetricsRegistry {
    /// Creates an empty registry (tests; production code uses
    /// [`crate::global`]).
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the counter registered under `name`, creating it if absent.
    ///
    /// # Panics
    /// If `name` is already registered as a different metric kind.
    pub fn counter(&self, name: &str) -> Counter {
        if let Some(Metric::Counter(c)) = self.lookup(name) {
            return c;
        }
        let mut metrics = self.metrics.write();
        match metrics
            .entry(name.to_string())
            .or_insert_with(|| Metric::Counter(Arc::new(CounterInner::default())))
        {
            Metric::Counter(c) => c.clone(),
            _ => panic!("metric {name:?} is not a counter"),
        }
    }

    /// Returns the gauge registered under `name`, creating it if absent.
    pub fn gauge(&self, name: &str) -> Gauge {
        if let Some(Metric::Gauge(g)) = self.lookup(name) {
            return g;
        }
        let mut metrics = self.metrics.write();
        match metrics
            .entry(name.to_string())
            .or_insert_with(|| Metric::Gauge(Arc::new(GaugeInner::default())))
        {
            Metric::Gauge(g) => g.clone(),
            _ => panic!("metric {name:?} is not a gauge"),
        }
    }

    /// Returns the histogram registered under `name`, creating it if
    /// absent.
    pub fn histogram(&self, name: &str) -> Histogram {
        if let Some(Metric::Histogram(h)) = self.lookup(name) {
            return h;
        }
        let mut metrics = self.metrics.write();
        match metrics
            .entry(name.to_string())
            .or_insert_with(|| Metric::Histogram(Arc::new(HistogramInner::default())))
        {
            Metric::Histogram(h) => h.clone(),
            _ => panic!("metric {name:?} is not a histogram"),
        }
    }

    fn lookup(&self, name: &str) -> Option<Metric> {
        self.metrics.read().get(name).map(|m| match m {
            Metric::Counter(c) => Metric::Counter(c.clone()),
            Metric::Gauge(g) => Metric::Gauge(g.clone()),
            Metric::Histogram(h) => Metric::Histogram(h.clone()),
        })
    }

    /// Zeroes every registered metric, keeping registrations (and
    /// outstanding handles) intact.  Benchmark sweeps call this between
    /// cells so each cell's snapshot attributes only its own time.
    pub fn reset(&self) {
        let metrics = self.metrics.read();
        for metric in metrics.values() {
            match metric {
                Metric::Counter(c) => c.reset(),
                Metric::Gauge(g) => g.reset(),
                Metric::Histogram(h) => h.reset(),
            }
        }
    }

    /// A point-in-time snapshot of every registered metric, sorted by
    /// name.
    pub fn snapshot(&self) -> RegistrySnapshot {
        let metrics = self.metrics.read();
        let mut counters = Vec::new();
        let mut gauges = Vec::new();
        let mut histograms = Vec::new();
        for (name, metric) in metrics.iter() {
            match metric {
                Metric::Counter(c) => counters.push((name.clone(), c.get())),
                Metric::Gauge(g) => gauges.push((name.clone(), g.get())),
                Metric::Histogram(h) => histograms.push((name.clone(), h.snapshot())),
            }
        }
        counters.sort_by(|a, b| a.0.cmp(&b.0));
        gauges.sort_by(|a, b| a.0.cmp(&b.0));
        histograms.sort_by(|a, b| a.0.cmp(&b.0));
        RegistrySnapshot {
            counters,
            gauges,
            histograms,
        }
    }
}

/// Point-in-time view of a whole registry.
#[derive(Debug, Clone, Default)]
pub struct RegistrySnapshot {
    /// `(name, total)` pairs, sorted by name.
    pub counters: Vec<(String, u64)>,
    /// `(name, level)` pairs, sorted by name.
    pub gauges: Vec<(String, i64)>,
    /// `(name, snapshot)` pairs, sorted by name.
    pub histograms: Vec<(String, HistogramSnapshot)>,
}

impl RegistrySnapshot {
    /// Counter total by exact name (0 when absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
            .unwrap_or(0)
    }

    /// Gauge level by exact name (0 when absent).
    pub fn gauge(&self, name: &str) -> i64 {
        self.gauges
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
            .unwrap_or(0)
    }

    /// Histogram snapshot by exact name.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, h)| h)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_counts_exactly() {
        let registry = MetricsRegistry::new();
        let c = registry.counter("test.count");
        for _ in 0..1000 {
            c.inc();
        }
        c.add(500);
        assert_eq!(c.get(), 1500);
        assert_eq!(registry.snapshot().counter("test.count"), 1500);
    }

    #[test]
    fn same_name_returns_same_metric() {
        let registry = MetricsRegistry::new();
        registry.counter("a").add(3);
        registry.counter("a").add(4);
        assert_eq!(registry.counter("a").get(), 7);
    }

    #[test]
    #[should_panic(expected = "is not a counter")]
    fn kind_mismatch_panics() {
        let registry = MetricsRegistry::new();
        registry.gauge("x");
        registry.counter("x");
    }

    #[test]
    fn gauge_tracks_level() {
        let registry = MetricsRegistry::new();
        let g = registry.gauge("test.level");
        g.set(5);
        g.add(-2);
        assert_eq!(g.get(), 3);
    }

    #[test]
    fn histogram_buckets_by_magnitude() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(1023), 10);
        assert_eq!(bucket_of(1024), 11);
        assert_eq!(bucket_of(u64::MAX), 64);
        assert_eq!(bucket_upper(0), 0);
        assert_eq!(bucket_upper(10), 1023);
        assert_eq!(bucket_upper(64), u64::MAX);
    }

    #[test]
    fn histogram_percentiles_bracket_within_one_bucket() {
        let registry = MetricsRegistry::new();
        let h = registry.histogram("test.lat_us");
        for v in 1..=1000u64 {
            h.record(v);
        }
        let snap = h.snapshot();
        assert_eq!(snap.count, 1000);
        assert_eq!(snap.max, 1000);
        // p50's true value is ~500; the bucket holding it spans 256..=511.
        let p50 = snap.p50();
        assert!((500..=1023).contains(&p50), "p50 = {p50}");
        assert!(p50 >= 500, "upper bound must bracket from above");
        // p100 is clamped to the observed max, not the bucket bound.
        assert_eq!(snap.percentile(100.0), 1000);
        assert!((snap.mean() - 500.5).abs() < 1e-9);
    }

    #[test]
    fn empty_histogram_is_zeroed() {
        let snap = HistogramInner::default().snapshot();
        assert_eq!(snap.count, 0);
        assert_eq!(snap.p50(), 0);
        assert_eq!(snap.p99(), 0);
        assert_eq!(snap.mean(), 0.0);
    }

    #[test]
    fn reset_zeroes_but_keeps_handles_live() {
        let registry = MetricsRegistry::new();
        let c = registry.counter("r.c");
        let h = registry.histogram("r.h");
        c.add(10);
        h.record(10);
        registry.reset();
        assert_eq!(c.get(), 0);
        assert_eq!(h.snapshot().count, 0);
        c.add(2);
        assert_eq!(registry.snapshot().counter("r.c"), 2);
    }

    #[test]
    fn timing_helper_records_a_sample() {
        let registry = MetricsRegistry::new();
        let h = registry.histogram("t.h");
        let out = h.time(|| 42);
        assert_eq!(out, 42);
        assert_eq!(h.snapshot().count, 1);
    }
}
