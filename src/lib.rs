//! # Obladi — oblivious serializable transactions in the cloud
//!
//! This is the facade crate of a from-scratch Rust reproduction of
//! *Obladi: Oblivious Serializable Transactions in the Cloud* (Crooks et
//! al., OSDI 2018).  Obladi is a transactional key-value store that hides
//! **access patterns** from the storage provider: the provider learns
//! neither which objects are accessed, nor how often, nor whether
//! transactions commit — only a fixed, workload-independent rhythm of
//! padded read and write batches.
//!
//! The building blocks live in dedicated crates, all re-exported here:
//!
//! | Module | Contents |
//! |---|---|
//! | [`common`] | configuration (Table 1 parameters), errors, statistics |
//! | [`crypto`] | ChaCha20 / SHA-256 / HMAC and the sealed-block envelope |
//! | [`storage`] | untrusted storage backends, WAL, trusted counter |
//! | [`oram`] | Ring ORAM and the batched/parallel executor |
//! | [`core`] | the Obladi proxy: MVTSO, epochs, durability, baselines |
//! | [`shard`] | sharded scale-out: N proxy+ORAM pipelines behind one front door |
//! | [`transport`] | framed RPC to out-of-process storage + the `obladi-stored` daemon |
//! | [`workloads`] | TPC-C, SmallBank, FreeHealth, YCSB and the load driver |
//! | [`obs`] | zero-dependency metrics registry + epoch/txn span tracer |
//!
//! ## Quick start
//!
//! ```
//! use obladi::prelude::*;
//!
//! // A small in-memory deployment (see ObladiConfig for the real knobs).
//! let db = ObladiDb::open(ObladiConfig::small_for_tests(4_096)).unwrap();
//!
//! // Transactions execute concurrently; commits become visible at the end
//! // of the epoch (delayed visibility).
//! let mut txn = db.begin().unwrap();
//! txn.write(1, b"patient record".to_vec()).unwrap();
//! assert!(txn.commit().unwrap().is_committed());
//!
//! let mut txn = db.begin().unwrap();
//! assert_eq!(txn.read(1).unwrap(), Some(b"patient record".to_vec()));
//! txn.commit().unwrap();
//! db.shutdown();
//! ```
//!
//! See the `examples/` directory for runnable end-to-end scenarios and
//! `crates/bench` for the harness that regenerates every figure and table of
//! the paper's evaluation.

#![warn(missing_docs)]

pub use obladi_common as common;
pub use obladi_core as core;
pub use obladi_crypto as crypto;
pub use obladi_obs as obs;
pub use obladi_oram as oram;
pub use obladi_shard as shard;
pub use obladi_storage as storage;
pub use obladi_transport as transport;
pub use obladi_workloads as workloads;

/// Commonly used types, re-exported for convenience.
pub mod prelude {
    pub use obladi_common::config::{BackendKind, EpochConfig, ObladiConfig, OramConfig};
    pub use obladi_common::config::{ShardConfig, StorageBackend};
    pub use obladi_common::error::{ObladiError, Result};
    pub use obladi_common::types::{Key, TxnOutcome, Value};
    pub use obladi_core::{
        KvDatabase, KvTransaction, NoPrivDb, ObladiDb, ObladiTxn, TwoPhaseLockingDb,
    };
    pub use obladi_shard::{ShardedDb, ShardedTxn};
    pub use obladi_storage::TrustedCounter;
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn facade_reexports_work_together() {
        let db = ObladiDb::open(ObladiConfig::small_for_tests(256)).unwrap();
        let mut txn = db.begin().unwrap();
        txn.write(9, vec![1, 2, 3]).unwrap();
        assert!(txn.commit().unwrap().is_committed());
        db.shutdown();
    }
}
